//! A workspace-local stand-in for the subset of the crates.io `proptest`
//! API that the `eqp` workspace uses.
//!
//! The build environment for this repository is fully offline, so this
//! shim re-implements the pieces the property-test suites rely on:
//!
//! * the `Strategy` trait with `prop_map`, `prop_recursive`, `boxed`;
//! * range, tuple, `Just`, and `any` strategies;
//! * `collection::vec` and `collection::btree_set`;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, and
//!   `prop_assert_eq!` macros;
//! * `ProptestConfig` (case count only).
//!
//! There is **no shrinking**: a failing case panics with the generated
//! inputs in the panic message (every generated value is `Debug` at the
//! call sites in this workspace, but the shim does not require it — the
//! case index and deterministic seed identify the input instead).
//! Generation is deterministic per test so failures are reproducible.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of values from `element`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet<T>` with *up to* the drawn number of elements
    /// (duplicates collapse, as in upstream proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// A union of strategies with uniform choice, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests, mirroring `proptest! { ... }`.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a plain
/// test function running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) =
                        ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed (deterministic seed; \
                         re-run reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        0u8..10
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in small(), y in -3i64..4) {
            prop_assert!(x < 10);
            prop_assert!((-3..4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn mapped_and_oneof(v in prop_oneof![
            Just(0u8),
            (1u8..5).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (2..10).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_respected(_x in any::<bool>()) {
            // runs 7 times; nothing to check beyond not panicking
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(n) => usize::from(*n < 4),
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..4)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
                    .boxed()
            });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
