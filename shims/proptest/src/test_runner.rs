//! Deterministic test RNG and run configuration.

/// Configuration for a `proptest!` block (case count only in this shim).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Modest default so the full suite stays fast; override per block
        // with `#![proptest_config(ProptestConfig::with_cases(n))]` or the
        // PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving strategies (SplitMix64, seeded from
/// the test name so distinct properties explore distinct streams while
/// every run of the same property is reproducible).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
