//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of test values.
///
/// Unlike upstream proptest, there is no value tree / shrinking: a
/// strategy simply produces values deterministically from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `pred` accepts (bounded; panics if the
    /// predicate rejects too often).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Builds recursive values: `recurse` receives the strategy for the
    /// *smaller* structure and returns the strategy for the next layer;
    /// nesting is bounded by `depth` levels above the leaf.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy erasure.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range primitive generator backing [`Arbitrary`] for integers and
/// `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}
