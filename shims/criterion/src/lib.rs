//! A workspace-local stand-in for the subset of the crates.io `criterion`
//! API that the `eqp` benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment for this repository is fully offline, so this
//! shim provides a small but honest wall-clock harness instead of the real
//! statistical machinery: each benchmark is warmed up, then timed over
//! `sample_size` samples whose per-sample iteration count is calibrated so
//! a sample takes a measurable amount of time. Results (median and mean
//! ns/iter) are printed and collected; callers can drain them with
//! [`Criterion::take_results`] to emit machine-readable reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter` path.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Mirrors `Criterion::default().configure_from_args()` — the shim has
    /// no CLI arguments.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }

    /// Benches directly at the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.into();
        let r = run_bench(id.text.clone(), 10, Duration::from_millis(200), &mut f);
        self.results.push(r);
        self
    }

    /// Drains the results collected so far (used for report emission).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benches a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.text);
        let r = run_bench(full, self.sample_size, self.measurement_time, &mut f);
        self.parent.results.push(r);
        self
    }

    /// Benches a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; results were reported live).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// True iff `EQP_BENCH_SMOKE` is set: every benchmark body runs exactly
/// once, so bench binaries double as fast correctness gates (their result
/// assertions and non-timing gates still run; timing numbers are noise
/// and must not be asserted on or committed in this mode).
pub fn smoke_mode() -> bool {
    std::env::var_os("EQP_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) -> BenchResult {
    if smoke_mode() {
        let t = time_once(f, 1);
        let ns = t.as_nanos() as f64;
        println!("bench {id:<60} smoke  {ns:>12.1} ns/iter (1 iter)");
        return BenchResult {
            id,
            median_ns: ns,
            mean_ns: ns,
            iterations: 1,
        };
    }
    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least measurement_time / sample_size (or a floor of 1 ms).
    let target = (measurement_time / sample_size as u32).max(Duration::from_millis(1));
    let mut iters: u64 = 1;
    loop {
        let t = time_once(f, iters);
        if t >= target || iters >= 1 << 20 {
            break;
        }
        // Aim directly for the target with 2x headroom, at least doubling.
        let scale = (target.as_secs_f64() / t.as_secs_f64().max(1e-9)).ceil() as u64;
        iters = (iters * scale.clamp(2, 100)).min(1 << 20);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let t = time_once(f, iters);
        per_iter.push(t.as_nanos() as f64 / iters as f64);
        total_iters += iters;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!("bench {id:<60} median {median:>12.1} ns/iter (mean {mean:.1}, {total_iters} iters)");
    BenchResult {
        id,
        median_ns: median,
        mean_ns: mean,
        iterations: total_iters,
    }
}

/// Declares a group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box` (deprecated there
/// in favor of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.measurement_time(Duration::from_millis(6));
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("sum-n", 50), &50u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        let rs = c.take_results();
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.median_ns > 0.0 && r.iterations > 0));
        assert_eq!(rs[0].id, "shim/sum");
        assert_eq!(rs[1].id, "shim/sum-n/50");
    }
}
