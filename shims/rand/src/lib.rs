//! A workspace-local stand-in for the subset of the crates.io `rand` API
//! that the `eqp` workspace uses (`StdRng`, `SeedableRng`, `RngExt`,
//! `seq::SliceRandom`).
//!
//! The build environment for this repository is fully offline, so external
//! registries are unreachable; this shim keeps the workspace self-contained
//! while preserving the call sites unchanged. The generator is a
//! xoshiro256** seeded via SplitMix64 — deterministic for a given seed,
//! which is all the workspace requires (reproducible schedulers, oracles,
//! and workload generators; no cryptographic claims).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The convenience sampling methods the workspace calls
/// (`random_bool`, `random_range`) — mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore + Sized {
    /// A Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// A uniform draw from a half-open range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased draw from `0..n` (n > 0) by rejection on the top multiple.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — the deterministic default
    /// generator of this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words — the full mutable state of
        /// the generator, exposed so checkpoints can be serialized to
        /// disk ([`StdRng::from_state`] rebuilds the generator
        /// mid-stream). The crates.io `rand` keeps this private; the
        /// offline shim trades that encapsulation for durable,
        /// byte-exact resume.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously captured by
        /// [`StdRng::state`]; the rebuilt generator continues the exact
        /// word stream.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// In-place Fisher–Yates shuffling, mirroring
    /// `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn reproducible_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_word_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            let _ = a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.random_range(0..3usize);
            assert!(y < 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
