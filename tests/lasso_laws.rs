//! Algebraic laws of the lasso algebra — the equational backbone that the
//! exactness claims (DESIGN.md §2) rest on, checked with proptest at the
//! workspace level.

use eqp::trace::{Lasso, Value};
use proptest::prelude::*;

fn val() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..4).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bit),
    ]
}

fn lasso() -> impl Strategy<Value = Lasso<Value>> {
    (
        proptest::collection::vec(val(), 0..5),
        proptest::collection::vec(val(), 0..4),
    )
        .prop_map(|(p, c)| Lasso::lasso(p, c))
}

fn finite() -> impl Strategy<Value = Lasso<Value>> {
    proptest::collection::vec(val(), 0..6).prop_map(Lasso::finite)
}

const W: usize = 48;

proptest! {
    /// Concatenation is associative on finite sequences:
    /// (a · b) · c = a · (b · c).
    #[test]
    fn then_associative(a in finite(), b in finite(), c in lasso()) {
        let left = a.then(&b).unwrap().then(&c).unwrap();
        let right = a.then(&b.then(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// ε is a unit for concatenation.
    #[test]
    fn epsilon_unit(a in lasso()) {
        prop_assert_eq!(Lasso::empty().then(&a).unwrap(), a.clone());
        if a.is_finite() {
            prop_assert_eq!(a.then(&Lasso::empty()).unwrap(), a);
        }
    }

    /// Map fusion: map f ∘ map g = map (f ∘ g).
    #[test]
    fn map_fusion(a in lasso()) {
        let f = |v: &Value| match v { Value::Int(n) => Value::Int(n + 1), x => *x };
        let g = |v: &Value| match v { Value::Int(n) => Value::Int(2 * n), x => *x };
        prop_assert_eq!(a.map(g).map(f), a.map(|v| f(&g(v))));
    }

    /// Filter idempotence and commutation: filter p ∘ filter q =
    /// filter (p ∧ q) = filter q ∘ filter p.
    #[test]
    fn filter_commutes(a in lasso()) {
        let p = |v: &Value| v.is_even_int();
        let q = |v: &Value| matches!(v, Value::Int(n) if *n >= 0);
        prop_assert_eq!(a.filter(p).filter(q), a.filter(q).filter(p));
        prop_assert_eq!(a.filter(p).filter(p), a.filter(p));
        prop_assert_eq!(
            a.filter(p).filter(q),
            a.filter(|v| p(v) && q(v))
        );
    }

    /// Filter–map exchange for a predicate invariant under the map.
    #[test]
    fn filter_map_exchange(a in lasso()) {
        // doubling preserves evenness-of-int and bit-ness
        let f = |v: &Value| match v { Value::Int(n) => Value::Int(2 * n), x => *x };
        let is_bit = |v: &Value| matches!(v, Value::Bit(_));
        prop_assert_eq!(a.map(f).filter(is_bit), a.filter(is_bit).map(f));
    }

    /// take(n) ++ drop(n) reassembles the word (on a window).
    #[test]
    fn take_drop_reassemble(a in lasso(), n in 0usize..10) {
        let head = Lasso::finite(a.take(n));
        let tail = a.drop_front(n);
        let rebuilt = head.then(&tail).unwrap();
        prop_assert_eq!(rebuilt.take(W), a.take(W));
        prop_assert_eq!(rebuilt.is_infinite(), a.is_infinite());
    }

    /// drop is additive: drop(m) ∘ drop(n) = drop(n + m).
    #[test]
    fn drop_additive(a in lasso(), n in 0usize..6, m in 0usize..6) {
        prop_assert_eq!(a.drop_front(n).drop_front(m), a.drop_front(n + m));
    }

    /// concat_front agrees with then.
    #[test]
    fn concat_front_is_then(a in finite(), b in lasso()) {
        let via_then = a.then(&b).unwrap();
        let via_front = b.concat_front(a.prefix());
        prop_assert_eq!(via_then, via_front);
    }

    /// leq is a partial order: reflexive, antisymmetric, transitive (on
    /// sampled triples).
    #[test]
    fn leq_partial_order(a in lasso(), b in lasso(), c in lasso()) {
        prop_assert!(a.leq(&a));
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    /// zip_with projections: mapping fst over a zip recovers the shorter
    /// operand's prefix.
    #[test]
    fn zip_fst_projection(a in lasso(), b in lasso()) {
        let zipped = a.zip_with(&b, |x, y| (*x, *y));
        let fst = zipped.map(|(x, _)| *x);
        let n = fst.take(W).len();
        prop_assert_eq!(fst.take(W), a.take(n));
    }

    /// Normal form is a fixed point: rebuilding from parts is identity.
    #[test]
    fn normal_form_idempotent(a in lasso()) {
        let rebuilt = Lasso::lasso(a.prefix().to_vec(), a.cycle().to_vec());
        prop_assert_eq!(rebuilt, a);
    }
}
