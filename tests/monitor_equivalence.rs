//! Differential property suite: the online `SmoothnessMonitor` produces
//! *identical* conformance results to the post-hoc `check_report` path —
//! across the whole zoo, all three schedulers, engine fault schedules
//! (delay/drop/duplicate/reorder/crash), reliable (ARQ) wrapping
//! including graceful degradation, and mid-run checkpoint/resume of
//! monitor state.
//!
//! The comparison is the honest one: each monitored run's own
//! `RunReport` is fed to the post-hoc checker, so both paths judge the
//! *same* trace; and a monitored run's trace is compared against the
//! plain run's to pin that observation is pure. Equality is field-exact —
//! verdict, full `SmoothReport` (limits, first violation, depth),
//! quiescence flag, and checked trace.

use eqp::core::Description;
use eqp::kahn::chaos::{self, SchedulerChoice, Trial};
use eqp::kahn::conformance::{check_report, Conformance, ConformanceOptions, Verdict};
use eqp::kahn::report::RunStatus;
use eqp::kahn::{
    procs, Adversarial, ArqOptions, CrashPoint, Fault, FaultSchedule, LinkFaultSpec, MonitorPolicy,
    Network, RandomSched, RoundRobin, RunOptions, Scheduler, SupervisorOptions,
};
use eqp::processes::bag;
use eqp::processes::zoo::{conformance_zoo, ZooEntry};
use eqp::seqfn::paper::ch;
use eqp::seqfn::SeqExpr;
use eqp::trace::{Chan, Value};

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0xABCD)),
    ]
}

/// Field-exact equality of two conformance results (the struct keeps its
/// rendered equations private, so compare the observable surface).
fn assert_conformance_eq(context: &str, online: &Conformance, posthoc: &Conformance) {
    assert_eq!(online.verdict, posthoc.verdict, "{context}: verdict");
    assert_eq!(online.report, posthoc.report, "{context}: smooth report");
    assert_eq!(online.quiescent, posthoc.quiescent, "{context}: quiescence");
    assert_eq!(online.checked, posthoc.checked, "{context}: checked trace");
    if let Some(k) = online.failing_component() {
        assert_eq!(
            online.component_equation(k),
            posthoc.component_equation(k),
            "{context}: named equation"
        );
    }
}

/// Post-hoc check of the very run the monitor certified.
fn posthoc(entry: &ZooEntry, report: &eqp::kahn::RunReport) -> Conformance {
    check_report(&entry.description(), report, &ConformanceOptions::default())
}

#[test]
fn zoo_monitored_verdicts_equal_posthoc_under_all_schedulers() {
    for entry in conformance_zoo() {
        for seed in [0u64, 3, 11] {
            for sched in schedulers(seed).iter_mut() {
                let (report, online) =
                    entry.certify_monitored(&mut **sched, seed, MonitorPolicy::Observe);
                let ctx = format!("{} (seed {seed}, {})", entry.name, sched.name());
                assert_conformance_eq(&ctx, &online, &posthoc(&entry, &report));
            }
        }
        // observation is pure: the monitored trace is the plain run's
        let (plain, _) = entry.certify(&mut RoundRobin::new(), 3);
        let (monitored, _) =
            entry.certify_monitored(&mut RoundRobin::new(), 3, MonitorPolicy::Observe);
        assert_eq!(
            plain.trace, monitored.trace,
            "{}: the monitor must not perturb the run",
            entry.name
        );
    }
}

/// The faults of PR 2's conviction matrix, scheduled on every channel of
/// the entry's network (plus a supervised-style crash point where asked).
fn fault_schedules(entry: &ZooEntry, with_crash: bool) -> Vec<(String, FaultSchedule)> {
    let channels = entry.network(0).channels();
    let faults = [
        ("delay", Fault::Delay { slack: 2 }),
        ("drop", Fault::Drop { period: 2 }),
        ("duplicate", Fault::Duplicate { period: 2 }),
        (
            "reorder",
            Fault::Reorder {
                window: 3,
                seed: 0x5EED,
            },
        ),
    ];
    let mut schedules: Vec<(String, FaultSchedule)> = faults
        .iter()
        .map(|(name, fault)| {
            (
                (*name).to_owned(),
                FaultSchedule {
                    crashes: vec![],
                    links: channels
                        .iter()
                        .map(|&chan| LinkFaultSpec {
                            chan,
                            fault: fault.clone(),
                        })
                        .collect(),
                },
            )
        })
        .collect();
    if with_crash {
        schedules.push((
            "crash".to_owned(),
            FaultSchedule {
                crashes: vec![CrashPoint {
                    process: 0,
                    at_step: 2,
                }],
                links: vec![],
            },
        ));
    }
    schedules
}

#[test]
fn zoo_monitored_verdicts_equal_posthoc_under_fault_schedules() {
    for entry in conformance_zoo() {
        for (fault_name, schedule) in fault_schedules(&entry, true) {
            for sched in schedulers(7).iter_mut() {
                let (report, online) = entry.certify_monitored_faulted(
                    &mut **sched,
                    7,
                    MonitorPolicy::Observe,
                    &schedule,
                );
                let ctx = format!("{} × {fault_name} ({})", entry.name, sched.name());
                assert_conformance_eq(&ctx, &online, &posthoc(&entry, &report));
            }
        }
    }
}

#[test]
fn zoo_monitored_verdicts_equal_posthoc_under_reliable_wrapping() {
    for entry in conformance_zoo() {
        for (fault_name, schedule) in fault_schedules(&entry, false) {
            if schedule.links.is_empty() {
                continue;
            }
            let mut sched = RoundRobin::new();
            let (report, online) =
                entry.certify_monitored_reliable(&mut sched, 13, MonitorPolicy::Observe, &schedule);
            let ctx = format!("{} × arq({fault_name})", entry.name);
            assert_conformance_eq(&ctx, &online, &posthoc(&entry, &report));
        }
    }
}

#[test]
fn degraded_runs_certify_identically_online() {
    // Pinned graceful degradation (same setup as chaos_zoo): a total drop
    // on the bag's ARQ-protected input under an impatient retry budget
    // exhausts the link. The monitor must map `ReliabilityExhausted` to
    // `Degraded` exactly as the post-hoc path does.
    let entry = conformance_zoo()
        .into_iter()
        .find(|e| e.name == "bag")
        .expect("bag is registered");
    let scenario = entry
        .scenario()
        .expect("bag has no completion hook")
        .with_reliable([bag::C], ArqOptions::impatient());
    let trial = Trial {
        net_seed: 0,
        scheduler: SchedulerChoice::RoundRobin,
        schedule: FaultSchedule {
            crashes: vec![],
            links: vec![LinkFaultSpec {
                chan: bag::C,
                fault: Fault::Drop { period: 1 },
            }],
        },
    };
    let sup = SupervisorOptions::one_for_one();
    let (report, online) =
        chaos::run_trial_monitored(&scenario, &trial, sup, MonitorPolicy::Observe);
    assert!(
        matches!(&report.status, RunStatus::ReliabilityExhausted { .. }),
        "setup must exhaust the retry budget, got: {}",
        report.status
    );
    assert!(
        matches!(&online.verdict, Verdict::Degraded { link } if link == "arq@ch120"),
        "online verdict must be Degraded naming the link: {:?}",
        online.verdict
    );
    let posthoc = check_report(
        &scenario.description(),
        &report,
        &ConformanceOptions::default(),
    );
    assert_conformance_eq("bag degraded", &online, &posthoc);
}

#[test]
fn checkpointed_monitor_state_resumes_byte_identically() {
    // For every resumable zoo entry: capture mid-run (monitor state
    // included), resume on a fresh network, and require the stitched
    // run's trace AND conformance to equal the uninterrupted monitored
    // run's. Entries whose processes lack snapshot hooks return an error
    // from resume and are skipped, same as the checkpoint_resume suite.
    let mut resumed_somewhere = 0usize;
    for entry in conformance_zoo() {
        let seed = 5u64;
        let opts = RunOptions {
            max_steps: entry.max_steps,
            seed,
            ..RunOptions::default()
        };
        let desc = entry.description();
        let (full_report, full_conf) = {
            let mut net = entry.network(seed);
            net.run_report_monitored(&desc, &mut RoundRobin::new(), opts)
        };
        let mid = full_report.steps / 2;
        let (_, _, ckpt) = {
            let mut net = entry.network(seed);
            net.run_report_checkpointed_monitored(&desc, &mut RoundRobin::new(), opts, mid)
        };
        let Some(ckpt) = ckpt else {
            continue; // run ended before the capture point
        };
        assert!(ckpt.has_monitor(), "{}: monitored checkpoint", entry.name);
        let mut net = entry.network(seed);
        match net.resume_report_monitored(&ckpt, &mut RoundRobin::new(), opts) {
            Ok((resumed_report, resumed_conf)) => {
                assert_eq!(
                    resumed_report.trace, full_report.trace,
                    "{}: resumed trace must be byte-identical",
                    entry.name
                );
                assert_conformance_eq(&format!("{} resume", entry.name), &resumed_conf, &full_conf);
                resumed_somewhere += 1;
            }
            Err(_) => continue, // hookless process or scheduler: not resumable
        }
    }
    assert!(
        resumed_somewhere > 2,
        "the resume matrix must actually exercise several entries"
    );
}

#[test]
fn abort_policy_halts_before_the_step_bound_and_names_the_posthoc_component() {
    // The acceptance pin: under a drop-fault schedule,
    // `AbortOnViolation` must stop the run at the convicting event —
    // strictly before both the step bound and the faulted run's natural
    // end — and name the same component equation the post-hoc check
    // convicts on the completed run.
    const C: Chan = Chan::new(0);
    const D: Chan = Chan::new(1);
    let values: Vec<i64> = (1..=64).collect();
    let build = || {
        let mut net = Network::new();
        net.add(procs::Source::new(
            "env",
            C,
            values.iter().map(|&n| Value::Int(n)).collect::<Vec<_>>(),
        ));
        net.add(procs::Apply::int_affine("double", C, D, 2, 0));
        net
    };
    let desc = Description::new("double-pipeline")
        .equation(ch(C), SeqExpr::const_ints(values.clone()))
        .equation(ch(D), SeqExpr::affine(2, 0, ch(C)));
    let schedule = FaultSchedule {
        crashes: vec![],
        links: vec![LinkFaultSpec {
            chan: C,
            fault: Fault::Drop { period: 2 },
        }],
    };
    let opts = RunOptions {
        max_steps: 10_000,
        seed: 0,
        ..RunOptions::default()
    };

    // post-hoc reference: run to the end, then re-walk the whole trace
    let full = build().run_report_faulted(&mut RoundRobin::new(), opts, &schedule);
    let posthoc = check_report(&desc, &full, &ConformanceOptions::default());
    let convicted = posthoc
        .failing_component()
        .expect("the periodic drop must convict");

    // online, aborting: halts at the convicting event
    let (aborted, online) = build().run_report_monitored_faulted(
        &desc,
        &mut RoundRobin::new(),
        opts.with_monitor(MonitorPolicy::AbortOnViolation),
        &schedule,
    );
    match &aborted.status {
        RunStatus::MonitorAborted { component } => assert_eq!(
            *component, convicted,
            "the abort must name the post-hoc failing equation"
        ),
        other => panic!("expected a monitor abort, got: {other}"),
    }
    assert!(
        aborted.steps < full.steps,
        "abort at step {} must beat the faulted run's natural end ({})",
        aborted.steps,
        full.steps
    );
    assert!(aborted.steps < opts.max_steps, "…and the step bound");
    assert_eq!(
        online.failing_component(),
        Some(convicted),
        "the online conformance names the same equation: {online}"
    );
    assert!(!online.is_conformant());
}

#[test]
fn unmonitored_checkpoints_refuse_monitored_resume() {
    let entry = conformance_zoo()
        .into_iter()
        .find(|e| e.name == "bag")
        .expect("bag is registered");
    let opts = RunOptions {
        max_steps: entry.max_steps,
        seed: 0,
        ..RunOptions::default()
    };
    let (_, ckpt) = entry
        .network(0)
        .run_report_checkpointed(&mut RoundRobin::new(), opts, 2);
    let ckpt = ckpt.expect("capture at step 2");
    assert!(!ckpt.has_monitor());
    let err = entry
        .network(0)
        .resume_report_monitored(&ckpt, &mut RoundRobin::new(), opts)
        .expect_err("monitored resume from an unmonitored checkpoint");
    assert_eq!(err, eqp::kahn::SnapshotError::NoMonitor);
}
