//! The recovery invariant at zoo scale (the tentpole acceptance
//! criterion): a zoo network with a process crashed mid-run by a
//! [`CrashAt`](eqp::kahn::CrashAt) fuse and recovered by the supervisor
//! still certifies through the conformance bridge — quiescent runs as
//! smooth **solutions** of the original description, budget-cut runs as
//! smooth prefixes — under all three schedulers. Recovery must be
//! invisible to Theorem 2.

use eqp::kahn::conformance::{check_report, ConformanceOptions};
use eqp::kahn::{
    Adversarial, RandomSched, RoundRobin, RunOptions, RunStatus, Scheduler, SupervisorOptions,
    Verdict,
};
use eqp::processes::zoo::conformance_zoo;

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0xABCD)),
    ]
}

#[test]
fn crashed_and_recovered_zoo_runs_still_certify() {
    let mut recoveries_seen = 0usize;
    for entry in conformance_zoo() {
        // the fork needs a trace-completion hook before checking; its
        // conformance under recovery is implied by the byte-identical
        // checkpoint/resume property instead.
        if entry.scenario().is_none() {
            continue;
        }
        let n_procs = entry.network(0).len();
        for seed in [0u64, 5] {
            for victim in 0..n_procs {
                for sched in schedulers(seed).iter_mut() {
                    let mut net = entry.network(seed);
                    // fuse: crash the victim after 2 of its progress steps
                    net.wrap_crash_at(victim, 2);
                    let report = net.run_supervised(
                        sched,
                        RunOptions {
                            // headroom: recovery replays observations, which
                            // consumes extra scheduler steps
                            max_steps: entry.max_steps + 64,
                            seed,
                            ..RunOptions::default()
                        },
                        SupervisorOptions::one_for_one(),
                    );
                    let tag = format!(
                        "{} (seed {seed}, victim {victim}, {})",
                        entry.name,
                        sched.name()
                    );
                    recoveries_seen += report.recoveries.len();
                    assert!(
                        !matches!(report.status, RunStatus::Escalated { .. }),
                        "{tag}: one crash must never escalate:\n{report}"
                    );
                    let conf = check_report(
                        &entry.description(),
                        &report,
                        &ConformanceOptions::default(),
                    );
                    assert!(conf.is_conformant(), "{tag}: {conf}\n{report}");
                    if entry.quiesces {
                        assert!(report.quiescent, "{tag}: recovered run must quiesce");
                        assert_eq!(
                            conf.verdict,
                            Verdict::SmoothSolution,
                            "{tag}: recovered quiescent run must certify as a full solution"
                        );
                    }
                    // a fired fuse must be recorded as recovered, not dead
                    for p in &report.processes {
                        assert!(!p.crashed, "{tag}: {} left for dead:\n{report}", p.name);
                    }
                }
            }
        }
    }
    assert!(
        recoveries_seen > 50,
        "the crash matrix must actually exercise recovery (saw {recoveries_seen})"
    );
}
