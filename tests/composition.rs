//! E14 — the composition theorem (Theorem 2) across crates: networks
//! assembled from zoo components, checked on random traces with proptest.

use eqp::core::compose::{compose, is_network_trace, sublemma_agrees, Component};
use eqp::core::smooth::is_smooth_at_depth;
use eqp::processes::{brock_ackermann as ba, dfm};
use eqp::trace::{Chan, Event, Trace};
use proptest::prelude::*;

fn ba_components() -> Vec<Component> {
    vec![
        Component::from_description(ba::a_description()),
        Component::from_description(ba::b_description()),
    ]
}

fn sec23_components() -> Vec<Component> {
    vec![
        Component::from_description(dfm::p_description()),
        Component::from_description(dfm::q_description()),
        Component::from_description(dfm::dfm_description()),
    ]
}

fn arb_ba_trace() -> impl Strategy<Value = Trace> {
    let ev = prop_oneof![
        (-1i64..4).prop_map(|n| Event::int(ba::B, n)),
        (-1i64..4).prop_map(|n| Event::int(ba::C, n)),
    ];
    proptest::collection::vec(ev, 0..8).prop_map(Trace::finite)
}

fn arb_sec23_trace() -> impl Strategy<Value = Trace> {
    let ev = (0u32..3, -2i64..5).prop_map(|(c, n)| {
        let chan = [dfm::B, dfm::C, dfm::D][c as usize];
        Event::int(chan, n)
    });
    proptest::collection::vec(ev, 0..8).prop_map(Trace::finite)
}

proptest! {
    #[test]
    fn brock_ackermann_sublemma(t in arb_ba_trace()) {
        prop_assert!(sublemma_agrees(&ba_components(), &t, 24));
    }

    #[test]
    fn section23_sublemma(t in arb_sec23_trace()) {
        prop_assert!(sublemma_agrees(&sec23_components(), &t, 24));
    }

    /// The network-trace characterization (Section 3.1.2) coincides with
    /// composite smoothness when components cover all channels.
    #[test]
    fn network_trace_iff_composite_smooth(t in arb_sec23_trace()) {
        let comps = sec23_components();
        let net = compose(&comps.iter().map(|c| c.desc.clone()).collect::<Vec<_>>());
        prop_assert_eq!(
            is_network_trace(&comps, &t, 24),
            is_smooth_at_depth(&net, &t, 24)
        );
    }

    /// dc holds by construction for every component on every trace.
    #[test]
    fn dc_everywhere(t in arb_sec23_trace()) {
        for c in sec23_components() {
            prop_assert!(c.dc_holds_on(&t));
        }
    }
}

/// A known quiescent network trace of the Brock–Ackermann system is a
/// smooth solution of the composite, and each projection is smooth for its
/// component (the sublemma, instantiated concretely).
#[test]
fn concrete_ba_network_trace() {
    let comps = ba_components();
    let t = Trace::finite(vec![
        Event::int(ba::C, 0),
        Event::int(ba::C, 2),
        Event::int(ba::B, 1),
        Event::int(ba::C, 1),
    ]);
    let net = compose(&comps.iter().map(|c| c.desc.clone()).collect::<Vec<_>>());
    assert!(is_smooth_at_depth(&net, &t, 16));
    for c in &comps {
        assert!(is_smooth_at_depth(&c.desc, &t.project(&c.chans), 16));
    }
    assert!(is_network_trace(&comps, &t, 16));
}

/// Cross-module composition: the fork piped into a doubling worker — a
/// network never stated in the paper, exercising the theorem beyond its
/// own examples.
#[test]
fn fork_plus_worker_composition() {
    use eqp::processes::fork;
    use eqp::seqfn::paper::{ch, twice};
    let worker_out = Chan::new(120);
    let worker = eqp::core::Description::new("worker").defines(worker_out, twice(ch(fork::D)));
    let comps = vec![
        Component::from_description(fork::description()),
        Component::from_description(worker),
    ];
    // route 3 to d (oracle T), worker doubles it; e unused.
    let t = Trace::finite(vec![
        Event::int(fork::C, 3),
        Event::bit(fork::B, true),
        Event::int(fork::D, 3),
        Event::int(worker_out, 6),
    ]);
    let net = compose(&comps.iter().map(|c| c.desc.clone()).collect::<Vec<_>>());
    assert!(is_smooth_at_depth(&net, &t, 16));
    assert!(sublemma_agrees(&comps, &t, 16));
    // breaking the worker's output breaks the whole network
    let bad = Trace::finite(vec![
        Event::int(fork::C, 3),
        Event::bit(fork::B, true),
        Event::int(fork::D, 3),
        Event::int(worker_out, 7),
    ]);
    assert!(!is_smooth_at_depth(&net, &bad, 16));
    assert!(sublemma_agrees(&comps, &bad, 16));
}
