//! E18 — the paper's central adequacy claim, tested across the zoo:
//! (a) **soundness**: every quiescent operational trace, under every
//!     scheduler and seed, satisfies the description's smooth-solution
//!     conditions;
//! (b) **completeness** (bounded): every enumerated smooth solution of the
//!     Random Bit process is realized by some operational run.

use eqp::core::smooth::is_smooth;
use eqp::core::{enumerate, Alphabet, EnumOptions};
use eqp::kahn::{Adversarial, Network, Oracle, RandomSched, RoundRobin, RunOptions, Scheduler};
use eqp::processes::{brock_ackermann as ba, fair_merge as fm, implication, random_bit};
use eqp::trace::ChanSet;

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0xABCD)),
    ]
}

#[test]
fn random_bit_soundness_and_completeness() {
    let desc = random_bit::bit_description();
    // soundness across schedules
    let mut realized = std::collections::BTreeSet::new();
    for seed in 0..16u64 {
        for sched in schedulers(seed).iter_mut() {
            let mut net = Network::new();
            net.add(random_bit::RandomBitProc::new());
            let run = net.run(
                sched,
                RunOptions {
                    max_steps: 10,
                    seed,
                    ..RunOptions::default()
                },
            );
            assert!(run.quiescent);
            assert!(is_smooth(&desc, &run.trace));
            realized.insert(format!("{}", run.trace));
        }
    }
    // completeness: both enumerated solutions were realized
    let alpha = Alphabet::new().with_bits(random_bit::B);
    let e = enumerate(
        &desc,
        &alpha,
        EnumOptions {
            max_depth: 2,
            max_nodes: 1000,
        },
    );
    assert_eq!(e.solutions.len(), 2);
    for s in &e.solutions {
        assert!(
            realized.contains(&format!("{s}")),
            "smooth solution {s} never realized operationally"
        );
    }
}

#[test]
fn brock_ackermann_soundness_all_schedules() {
    let flat = ba::system().flatten();
    for seed in 0..12u64 {
        for sched in schedulers(seed).iter_mut() {
            let mut net = ba::network(Oracle::fair(seed, 2));
            let run = net.run(
                sched,
                RunOptions {
                    max_steps: 300,
                    seed,
                    ..RunOptions::default()
                },
            );
            assert!(run.quiescent);
            assert!(
                is_smooth(&flat, &run.trace),
                "seed {seed} sched {}: non-smooth quiescent trace {}",
                sched.name(),
                run.trace
            );
        }
    }
}

#[test]
fn fair_merge_soundness_all_schedules() {
    let desc = fm::eliminated_system().flatten();
    let keep = ChanSet::from_chans([fm::C, fm::D, fm::E, fm::B]);
    for seed in 0..8u64 {
        for sched in schedulers(seed).iter_mut() {
            let mut net = fm::network(&[2, 4, 6], &[1, 3], Oracle::fair(seed, 2));
            let run = net.run(
                sched,
                RunOptions {
                    max_steps: 400,
                    seed,
                    ..RunOptions::default()
                },
            );
            assert!(run.quiescent);
            let t = run.trace.project(&keep);
            assert!(
                is_smooth(&desc, &t),
                "seed {seed} sched {}: {t}",
                sched.name()
            );
        }
    }
}

#[test]
fn implication_soundness_and_answer_coverage() {
    // Soundness (projected onto visible channels against the enumerated
    // visible solution set) plus: with input T both answers eventually
    // occur across seeds (the nondeterminism is real).
    let e = enumerate(
        &implication::description(),
        &Alphabet::new()
            .with_bits(implication::B)
            .with_bits(implication::C)
            .with_bits(implication::D),
        EnumOptions {
            max_depth: 3,
            max_nodes: 200_000,
        },
    );
    let visible = e.solutions_projected(&implication::visible_channels());
    let mut answers = std::collections::BTreeSet::new();
    for seed in 0..16u64 {
        for sched in schedulers(seed).iter_mut() {
            let mut net = implication::network(true);
            let run = net.run(
                sched,
                RunOptions {
                    max_steps: 30,
                    seed,
                    ..RunOptions::default()
                },
            );
            assert!(run.quiescent);
            let vis = run.trace.project(&implication::visible_channels());
            assert!(visible.contains(&vis), "unexpected visible trace {vis}");
            answers.extend(run.trace.seq_on(implication::D).take(2));
        }
    }
    assert_eq!(answers.len(), 2, "both T and F answers must occur");
}

/// The paper's verbatim fairness clause on the running Section 2.3
/// network: every finite prefix of `b` (and of `c`) is a subsequence of
/// some finite prefix of `d`.
#[test]
fn section23_merge_is_prefix_fair() {
    use eqp::core::properties::prefix_fair;
    use eqp::processes::dfm;
    for seed in [1u64, 5, 9] {
        let mut net = dfm::section23_network(eqp::kahn::Oracle::fair(seed, 2));
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        let d = run.trace.seq_on(dfm::D);
        // Compare against the inputs dfm actually *consumed* — the last
        // few sends may still be queued when the step bound hits, so
        // check fairness of the consumed windows.
        let b = run.trace.seq_on(dfm::B);
        let c = run.trace.seq_on(dfm::C);
        let consumed = d.take(64).len();
        let window = consumed;
        // the prefixes of b and c up to roughly half the merged output
        // must have landed in d (b and c alternate under the fair oracle)
        let depth = (consumed / 2).saturating_sub(2);
        assert!(
            prefix_fair(&d, &b, depth, window),
            "seed {seed}: b starved in d"
        );
        assert!(
            prefix_fair(&d, &c, depth.saturating_sub(1), window),
            "seed {seed}: c starved in d"
        );
    }
}

#[test]
fn fork_soundness_with_reconstructed_oracle() {
    // The fork's description constrains output against the auxiliary
    // oracle; for each operational run, reconstruct the oracle bits from
    // the routing decisions and verify the completed trace is smooth.
    use eqp::processes::fork;
    use eqp::trace::{Event, Trace, Value};
    for seed in 0..10u64 {
        let mut net = fork::network(&[1, 2, 3, 4]);
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 60,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(run.quiescent);
        // reconstruct: walk the trace; every output event (D/E) reveals
        // one oracle bit; interleave a (B, bit) immediately before it.
        let mut events = Vec::new();
        for ev in run.trace.events().unwrap() {
            if ev.chan == fork::D {
                events.push(Event::bit(fork::B, true));
                events.push(*ev);
            } else if ev.chan == fork::E {
                events.push(Event::bit(fork::B, false));
                events.push(*ev);
            } else {
                events.push(*ev);
            }
        }
        let completed = Trace::finite(events);
        assert!(
            is_smooth(&fork::description(), &completed),
            "seed {seed}: completed fork trace not smooth: {completed}"
        );
        let _ = Value::Int(0);
    }
}
