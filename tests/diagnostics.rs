//! The inspection surfaces — failure diagnosis, the materialized tree, and
//! verified infinite-solution synthesis — exercised end to end across the
//! zoo.

use eqp::core::diagnose::diagnose;
use eqp::core::enumerate::lasso_candidates;
use eqp::core::tree::SmoothTree;
use eqp::core::{enumerate, Alphabet, EnumOptions};
use eqp::processes::{brock_ackermann as ba, dfm, ticks};
use eqp::trace::{Event, Trace, Value};

/// The anomaly's diagnosis names the odd-equation and the exact pair.
#[test]
fn brock_ackermann_diagnosis_is_precise() {
    let desc = ba::eliminated_description();
    let report = diagnose(&desc, &ba::anomalous_trace(), 8);
    assert!(!report.is_smooth());
    // the limit holds for both components (it IS a solution)…
    assert!(report.limits.iter().all(|l| l.holds));
    // …and the violation is in component 1 (odd ⟸ f) at u = ⟨0⟩.
    let v = report.violation.as_ref().expect("violation");
    assert_eq!(v.component, 1);
    assert_eq!(v.u, ba::c_trace(&[0]));
    let text = report.to_string();
    assert!(text.contains("limit[0]: ok"));
    assert!(text.contains("smoothness[1]: FAILS"));
}

/// The genuine solution's diagnosis is entirely clean.
#[test]
fn genuine_solution_diagnosis_clean() {
    let report = diagnose(&ba::eliminated_description(), &ba::genuine_trace(), 8);
    assert!(report.is_smooth());
    assert!(report.to_string().contains("smoothness: ok"));
}

/// The Brock–Ackermann smooth tree is a single path — the paper's claim
/// "exactly one computation shape" made visual.
#[test]
fn brock_ackermann_tree_is_a_path() {
    let alpha = Alphabet::new().with_ints(ba::C, 0, 2);
    let tree = SmoothTree::build(&ba::eliminated_description(), &alpha, 4, 10_000);
    assert_eq!(tree.profile(), vec![1, 1, 1, 1]); // ⊥ → 0 → 0 2 → 0 2 1
    assert_eq!(tree.solutions().count(), 1);
    let dot = tree.to_dot("ba");
    assert_eq!(dot.matches("doublecircle").count(), 1);
}

/// The dfm tree branches; its DOT output stays well-formed at scale.
#[test]
fn dfm_tree_dot_wellformed() {
    let alpha = Alphabet::new()
        .with_chan(dfm::B, [Value::Int(0), Value::Int(2)])
        .with_chan(dfm::C, [Value::Int(1)])
        .with_ints(dfm::D, 0, 2);
    let tree = SmoothTree::build(&dfm::dfm_description(), &alpha, 3, 100_000);
    assert!(!tree.truncated());
    let dot = tree.to_dot("dfm");
    // every non-root node contributes exactly one edge
    assert_eq!(dot.matches("->").count(), tree.len() - 1);
}

/// Synthesis across the zoo: ticks yields its unique ω-solution; dfm
/// yields several periodic merges, all verified smooth; the (terminating)
/// Brock–Ackermann network yields none.
#[test]
fn lasso_synthesis_across_zoo() {
    // ticks
    let alpha = Alphabet::new().with_chan(ticks::B, [Value::tt()]);
    let e = enumerate(
        &ticks::description(),
        &alpha,
        EnumOptions {
            max_depth: 5,
            max_nodes: 1000,
        },
    );
    let found = lasso_candidates(&ticks::description(), &e.frontier, 3);
    assert_eq!(found, vec![ticks::omega_trace()]);

    // dfm: multiple periodic merges exist
    let alpha = Alphabet::new()
        .with_chan(dfm::B, [Value::Int(0)])
        .with_chan(dfm::C, [Value::Int(1)])
        .with_ints(dfm::D, 0, 1);
    let e = enumerate(
        &dfm::dfm_description(),
        &alpha,
        EnumOptions {
            max_depth: 4,
            max_nodes: 100_000,
        },
    );
    let found = lasso_candidates(&dfm::dfm_description(), &e.frontier, 4);
    assert!(!found.is_empty());
    assert!(found.contains(&Trace::lasso(
        [],
        [Event::int(dfm::B, 0), Event::int(dfm::D, 0)]
    )));

    // Brock–Ackermann: all computations terminate, no infinite solutions
    let alpha = Alphabet::new().with_ints(ba::C, 0, 2);
    let e = enumerate(
        &ba::eliminated_description(),
        &alpha,
        EnumOptions {
            max_depth: 4,
            max_nodes: 1000,
        },
    );
    assert!(e.frontier.is_empty());
    assert!(lasso_candidates(&ba::eliminated_description(), &e.frontier, 3).is_empty());
}
