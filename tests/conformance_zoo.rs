//! The conformance suite: every zoo network, under all three schedulers,
//! yields a trace the operational ⇄ denotational bridge certifies — and
//! injected faults are detected with the failing component equation
//! named.
//!
//! This is the paper's adequacy claim (Theorems 2 and 4) run as a test
//! matrix: quiescent runs must be smooth *solutions* of their
//! description, bounded runs smooth *prefixes*; drop/duplicate faults
//! corrupt the history and must fail the check.

use eqp::kahn::conformance::{check_report, ConformanceOptions, Verdict};
use eqp::kahn::faults::{CrashAt, Fault, FaultSchedule, FaultyLink, LinkFaultSpec};
use eqp::kahn::reliable::{self, ArqOptions};
use eqp::kahn::{
    procs, Adversarial, Network, Oracle, RandomSched, RoundRobin, RunOptions, Scheduler,
};
use eqp::processes::zoo::conformance_zoo;
use eqp::processes::{bag, dfm};
use eqp::seqfn::paper::{ch, twice};
use eqp::trace::{Chan, Value};

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0xABCD)),
    ]
}

#[test]
fn zoo_conforms_under_all_schedulers() {
    for entry in conformance_zoo() {
        for seed in [0u64, 3, 11] {
            for sched in schedulers(seed).iter_mut() {
                let (report, conf) = entry.certify(&mut **sched, seed);
                assert_eq!(
                    report.quiescent,
                    entry.quiesces,
                    "{} (seed {seed}, {}): unexpected run shape",
                    entry.name,
                    sched.name()
                );
                assert!(
                    conf.is_conformant(),
                    "{} (seed {seed}, {}): {conf}",
                    entry.name,
                    sched.name()
                );
                if entry.quiesces {
                    assert_eq!(
                        conf.verdict,
                        Verdict::SmoothSolution,
                        "{}: quiescent run must certify as a full solution",
                        entry.name
                    );
                } else {
                    assert_eq!(
                        conf.verdict,
                        Verdict::SmoothPrefix,
                        "{}: bounded run must certify as a prefix",
                        entry.name
                    );
                }
                assert!(
                    report.single_consumer_ok(),
                    "{}: runtime consumer violation: {:?}",
                    entry.name,
                    report.consumer_violations
                );
            }
        }
    }
}

/// A raw channel for interposing faulty links on dfm's merged output.
const RAW_D: Chan = Chan::new(230);

/// The Section 2.2 discriminated merge with a faulty link interposed on
/// its output: sources feed `b` (evens) and `c` (odds), the merge writes
/// to a raw channel, and the link forwards — faultily — onto the real
/// `d` the description constrains.
fn faulted_merge(fault: Fault, seed: u64) -> Network {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env-b",
        dfm::B,
        [0, 2].map(Value::Int).to_vec(),
    ));
    net.add(procs::Source::new(
        "env-c",
        dfm::C,
        [1, 3].map(Value::Int).to_vec(),
    ));
    net.add(procs::Merge2::new(
        "merge",
        dfm::B,
        dfm::C,
        RAW_D,
        Oracle::fair(seed, 2),
    ));
    net.add(FaultyLink::new("link", RAW_D, dfm::D, fault));
    net
}

#[test]
fn delay_fault_preserves_smooth_solutions() {
    // Delay is the paper's own asynchrony: order and content intact, so
    // the quiescent trace is still a smooth solution.
    for seed in 0..6u64 {
        let mut net = faulted_merge(Fault::Delay { slack: 2 }, seed);
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        let conf = check_report(
            &dfm::dfm_description(),
            &report,
            &ConformanceOptions::default(),
        );
        assert_eq!(conf.verdict, Verdict::SmoothSolution, "seed {seed}: {conf}");
    }
}

#[test]
fn drop_fault_is_detected_with_named_component() {
    // Depending on *which* message the link drops, the violation shows up
    // either at the limit (a whole parity class went missing) or as a
    // smoothness failure (a later value arrives where the dropped one was
    // due); both must be caught, always with the component named.
    let mut limit_violations = 0usize;
    for seed in 0..6u64 {
        let mut net = faulted_merge(Fault::Drop { period: 2 }, seed);
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        let conf = check_report(
            &dfm::dfm_description(),
            &report,
            &ConformanceOptions::default(),
        );
        assert!(
            !conf.is_conformant(),
            "seed {seed}: dropped messages must be detected, got {conf}"
        );
        let k = conf.failing_component().expect("a named component");
        assert!(
            conf.component_equation(k).is_some(),
            "the verdict names the failing equation"
        );
        let shown = conf.to_string();
        assert!(shown.contains("VIOLATION"), "{shown}");
        if matches!(conf.verdict, Verdict::LimitViolation { .. }) {
            limit_violations += 1;
        }
    }
    assert!(
        limit_violations > 0,
        "at least one drop pattern must surface as a limit failure"
    );
}

#[test]
fn duplicate_fault_is_detected() {
    for seed in 0..6u64 {
        let mut net = faulted_merge(Fault::Duplicate { period: 1 }, seed);
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        let conf = check_report(
            &dfm::dfm_description(),
            &report,
            &ConformanceOptions::default(),
        );
        assert!(
            !conf.is_conformant(),
            "seed {seed}: duplicated messages must be detected, got {conf}"
        );
        assert!(conf.failing_component().is_some());
    }
}

#[test]
fn reorder_fault_breaks_order_sensitive_descriptions() {
    // With a window of 3 over 4 messages, some seed must permute the
    // per-parity order and break dfm's equations.
    let mut violated = 0usize;
    for seed in 0..8u64 {
        let mut net = faulted_merge(Fault::Reorder { window: 3, seed }, seed);
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        let conf = check_report(
            &dfm::dfm_description(),
            &report,
            &ConformanceOptions::default(),
        );
        if !conf.is_conformant() {
            violated += 1;
        }
    }
    assert!(
        violated > 0,
        "no reorder across 8 seeds ever violated the order-sensitive description"
    );
}

#[test]
fn reorder_fault_is_invisible_to_the_order_free_bag() {
    // The bag's specification is per-value counting — reordering its
    // input stream cannot violate it (descriptions as specifications,
    // Section 8.3).
    const RAW_C: Chan = Chan::new(231);
    for seed in 0..6u64 {
        let mut net = Network::new();
        net.add(procs::Source::new(
            "env",
            RAW_C,
            [1, 2, 3].map(Value::Int).to_vec(),
        ));
        net.add(FaultyLink::new(
            "reorder",
            RAW_C,
            bag::C,
            Fault::Reorder { window: 3, seed },
        ));
        net.add(bag::BagProc::new());
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 200,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        let conf = check_report(
            &bag::specification(1, 3),
            &report,
            &ConformanceOptions::default(),
        );
        assert_eq!(conf.verdict, Verdict::SmoothSolution, "seed {seed}: {conf}");
    }
}

#[test]
fn crashed_process_fails_the_limit_and_shows_residual_input() {
    const RAW: Chan = Chan::new(232);
    const OUT: Chan = Chan::new(233);
    let desc = eqp::core::Description::new("double").equation(ch(OUT), twice(ch(RAW)));
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        RAW,
        [1, 2, 3].map(Value::Int).to_vec(),
    ));
    net.add(CrashAt::new(
        procs::Apply::int_affine("double", RAW, OUT, 2, 0),
        1,
    ));
    let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
    assert!(
        report.quiescent,
        "a crashed process idles, the net quiesces"
    );
    let conf = check_report(&desc, &report, &ConformanceOptions::default());
    assert!(
        matches!(conf.verdict, Verdict::LimitViolation { .. }),
        "missing outputs at quiescence must fail the limit: {conf}"
    );
    // telemetry pinpoints the stall: undelivered input queued on RAW
    assert_eq!(report.channel(RAW).expect("metered").residual, 2);
    assert!(report
        .processes
        .iter()
        .any(|p| p.name.contains("crash@1") && p.progress == 1));
}

/// The three history-corrupting faults PR 2's oracle convicts, with the
/// same parameters the conviction tests above use.
fn harmful_faults(seed: u64) -> Vec<(&'static str, Fault)> {
    vec![
        ("drop", Fault::Drop { period: 2 }),
        ("duplicate", Fault::Duplicate { period: 2 }),
        (
            "reorder",
            Fault::Reorder {
                window: 3,
                seed: seed ^ 0x5EED,
            },
        ),
    ]
}

/// Schedules `fault` on every channel the network declares.
fn fault_everywhere(net: &Network, fault: &Fault) -> FaultSchedule {
    FaultSchedule {
        crashes: vec![],
        links: net
            .channels()
            .into_iter()
            .map(|chan| LinkFaultSpec {
                chan,
                fault: fault.clone(),
            })
            .collect(),
    }
}

#[test]
fn zoo_reliable_wrapping_masks_every_harmful_fault() {
    // The tentpole matrix: zoo × {drop, duplicate, reorder} × 3
    // schedulers, every channel reliable-wrapped. The ARQ composite is
    // equationally the identity, so each faulted run must certify with
    // the *clean* expectation — smooth solution when the entry quiesces,
    // smooth prefix when the step bound cuts it.
    use eqp::processes::fork;
    for entry in conformance_zoo() {
        for (fault_name, fault) in harmful_faults(7) {
            let mut schedule = fault_everywhere(&entry.network(0), &fault);
            if entry.name == "fork" {
                // the fork's trace-completion hook reconstructs oracle
                // bits from the cross-channel d/e interleaving, which
                // engine-buffered delivery legitimately perturbs — so
                // fault (and protect) only its input stream
                schedule.links.retain(|l| l.chan == fork::C);
            }
            for sched in schedulers(13).iter_mut() {
                let (report, conf) = entry.certify_reliable(&mut **sched, 13, &schedule);
                assert_eq!(
                    report.quiescent,
                    entry.quiesces,
                    "{} × {fault_name} ({}): ARQ must preserve the run shape, got {}",
                    entry.name,
                    sched.name(),
                    report.status
                );
                let expected = if entry.quiesces {
                    Verdict::SmoothSolution
                } else {
                    Verdict::SmoothPrefix
                };
                assert_eq!(
                    conf.verdict,
                    expected,
                    "{} × {fault_name} ({}): reliable-wrapped faults must be masked: {conf}",
                    entry.name,
                    sched.name()
                );
            }
        }
    }
}

#[test]
fn zoo_unprotected_faults_still_convict_somewhere() {
    // Control for the matrix above: the same schedules *without* ARQ
    // protection must still convict at least one quiescing entry per
    // fault kind — otherwise the masking test would be vacuous.
    for (fault_name, fault) in harmful_faults(7) {
        let mut convicted = 0usize;
        for entry in conformance_zoo() {
            if !entry.quiesces {
                continue; // prefix runs tolerate in-flight corruption
            }
            let schedule = fault_everywhere(&entry.network(0), &fault);
            let mut net = entry.network(13);
            let report = net.run_report_faulted(
                &mut RoundRobin::new(),
                RunOptions {
                    max_steps: entry.max_steps,
                    seed: 13,
                    ..RunOptions::default()
                },
                &schedule,
            );
            let conf = check_report(
                &entry.description(),
                &report,
                &ConformanceOptions::default(),
            );
            if !conf.is_conformant() {
                convicted += 1;
            }
        }
        assert!(
            convicted > 0,
            "{fault_name}: no unprotected zoo entry convicted — the masking matrix is vacuous"
        );
    }
}

/// Auxiliary wiring for the process-level reliable transport on the
/// Section 2.2 merge: frames, frames-after-fault, acks, acks-after-fault.
const ARQ_AUX: [Chan; 4] = [
    Chan::new(240),
    Chan::new(241),
    Chan::new(242),
    Chan::new(243),
];

/// The faulted merge of the PR 2 conviction tests, with the bare
/// `FaultyLink` replaced by a full process-level reliable transport:
/// merge → RAW_D → [sender → lossy medium → receiver] → d.
fn masked_merge(fault: Fault, seed: u64) -> Network {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env-b",
        dfm::B,
        [0, 2].map(Value::Int).to_vec(),
    ));
    net.add(procs::Source::new(
        "env-c",
        dfm::C,
        [1, 3].map(Value::Int).to_vec(),
    ));
    net.add(procs::Merge2::new(
        "merge",
        dfm::B,
        dfm::C,
        RAW_D,
        Oracle::fair(seed, 2),
    ));
    reliable::wire(
        &mut net,
        "dfm-arq",
        RAW_D,
        dfm::D,
        ARQ_AUX,
        Some(fault),
        None,
        ArqOptions::default(),
    );
    net
}

#[test]
fn pr2_convicting_faults_are_masked_by_process_level_arq() {
    // Regression pins: the exact fault parameters convicted by
    // `drop_fault_is_detected_with_named_component`,
    // `duplicate_fault_is_detected`, and
    // `reorder_fault_breaks_order_sensitive_descriptions` above, now
    // wrapped in the sender/receiver ARQ processes — every seed must
    // certify as a smooth solution.
    type FaultFor = Box<dyn Fn(u64) -> Fault>;
    let faults: Vec<(&str, FaultFor)> = vec![
        ("drop", Box::new(|_| Fault::Drop { period: 2 })),
        ("duplicate", Box::new(|_| Fault::Duplicate { period: 1 })),
        (
            "reorder",
            Box::new(|seed| Fault::Reorder { window: 3, seed }),
        ),
    ];
    for (fault_name, fault_for) in &faults {
        for seed in 0..6u64 {
            let mut net = masked_merge(fault_for(seed), seed);
            let report = net.run_report(
                &mut RoundRobin::new(),
                RunOptions {
                    max_steps: 4_000,
                    seed,
                    ..RunOptions::default()
                },
            );
            assert!(
                report.quiescent,
                "{fault_name} seed {seed}: masked net must quiesce, got {}",
                report.status
            );
            let conf = check_report(
                &dfm::dfm_description(),
                &report,
                &ConformanceOptions::default(),
            );
            assert_eq!(
                conf.verdict,
                Verdict::SmoothSolution,
                "{fault_name} seed {seed}: ARQ must mask the fault: {conf}"
            );
        }
    }
}

#[test]
fn process_level_arq_reports_retransmissions_under_drop() {
    // The masking is not vacuous: under a period-2 drop the sender must
    // actually have retransmitted, and the fault log names the drops.
    let mut net = masked_merge(Fault::Drop { period: 2 }, 3);
    let report = net.run_report(
        &mut RoundRobin::new(),
        RunOptions {
            max_steps: 4_000,
            seed: 3,
            ..RunOptions::default()
        },
    );
    assert!(report.quiescent);
    assert!(
        report
            .fault_log()
            .iter()
            .any(|r| r.source.contains("medium")),
        "the lossy medium's drops are logged: {:?}",
        report.fault_log()
    );
}
