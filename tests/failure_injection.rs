//! Negative validation: injected faults — unfair merges, starved inputs,
//! truncated runs, wrong-order deliveries — must be *rejected* by the
//! smooth-solution machinery. A checker that accepts everything proves
//! nothing; these tests pin the rejection side.

use eqp::core::properties::window_fair;
use eqp::core::smooth::{is_smooth, limit_holds, smoothness_holds};
use eqp::kahn::{procs, Network, Oracle, Process, RoundRobin, RunOptions, StepCtx, StepResult};
use eqp::processes::{dfm, fair_merge as fm, fair_random};
use eqp::trace::{ChanSet, Event, Lasso, Trace, Value};

/// An *unfair* merge: after forwarding `quota` items from the right
/// input, it ignores that side forever.
struct UnfairMerge {
    left: eqp::trace::Chan,
    right: eqp::trace::Chan,
    output: eqp::trace::Chan,
    right_quota: usize,
}

impl Process for UnfairMerge {
    fn name(&self) -> &str {
        "unfair-merge"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if ctx.available(self.left) > 0 {
            let v = ctx.pop(self.left).expect("nonempty");
            ctx.send(self.output, v);
            return StepResult::Progress;
        }
        if self.right_quota > 0 && ctx.available(self.right) > 0 {
            self.right_quota -= 1;
            let v = ctx.pop(self.right).expect("nonempty");
            ctx.send(self.output, v);
            return StepResult::Progress;
        }
        StepResult::Idle
    }
}

/// An unfair dfm starves channel c: the quiescent trace violates the
/// description's limit condition (odd(d) ≠ c) and is rejected.
#[test]
fn unfair_merge_quiescent_trace_rejected() {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env-b",
        dfm::B,
        [Value::Int(0), Value::Int(2)],
    ));
    net.add(procs::Source::new(
        "env-c",
        dfm::C,
        [Value::Int(1), Value::Int(3)],
    ));
    net.add(UnfairMerge {
        left: dfm::B,
        right: dfm::C,
        output: dfm::D,
        right_quota: 1, // drops c's second item forever
    });
    let run = net.run(&mut RoundRobin::new(), RunOptions::default());
    assert!(run.quiescent);
    let desc = dfm::dfm_description();
    assert!(
        !is_smooth(&desc, &run.trace),
        "an unfair quiescent trace must be rejected: {}",
        run.trace
    );
    // diagnosis: it is specifically the limit (fairness) that fails, not
    // causality along the way.
    assert!(!limit_holds(&desc, &run.trace));
    assert!(smoothness_holds(&desc, &run.trace, 32));
}

/// A *truncated* (non-quiescent) fair run is also not a smooth solution —
/// smooth solutions are quiescent traces, not arbitrary histories.
#[test]
fn truncated_fair_run_is_not_a_solution() {
    let mut net = fm::network(&[2, 4, 6], &[1, 3], Oracle::fair(3, 2));
    let run = net.run(
        &mut RoundRobin::new(),
        RunOptions {
            max_steps: 4, // cut off mid-flight
            seed: 3,
            ..RunOptions::default()
        },
    );
    assert!(!run.quiescent);
    let t = run
        .trace
        .project(&ChanSet::from_chans([fm::C, fm::D, fm::E, fm::B]));
    assert!(!is_smooth(&fm::eliminated_system().flatten(), &t));
}

/// A biased "fair random" source that eventually emits only T: its limit
/// is rejected by the fair-random description, and the window-fairness
/// monitor flags the starvation on finite windows.
#[test]
fn biased_oracle_rejected_by_limit_and_monitor() {
    let eventually_all_t = Trace::lasso(
        [Event::bit(fair_random::C, false)],
        [Event::bit(fair_random::C, true)],
    );
    let desc = fair_random::description();
    assert!(!limit_holds(&desc, &eventually_all_t));
    // the finite-window fairness monitor sees the F-source starve:
    let merged = eventually_all_t.seq_on(fair_random::C).drop_front(1);
    let f_source = Lasso::repeat(vec![Value::ff()]);
    assert!(!window_fair(&merged, &f_source, 32));
}

/// Reordered delivery: swapping two d-outputs of a valid dfm history
/// breaks per-source order and the trace is rejected.
#[test]
fn reordered_outputs_rejected() {
    let good = Trace::finite(vec![
        Event::int(dfm::B, 0),
        Event::int(dfm::B, 2),
        Event::int(dfm::D, 0),
        Event::int(dfm::D, 2),
    ]);
    let desc = dfm::dfm_description();
    assert!(is_smooth(&desc, &good));
    let swapped = Trace::finite(vec![
        Event::int(dfm::B, 0),
        Event::int(dfm::B, 2),
        Event::int(dfm::D, 2),
        Event::int(dfm::D, 0),
    ]);
    assert!(!is_smooth(&desc, &swapped));
}

/// Duplicated delivery: emitting an input twice violates "every item in d
/// is a unique item from b or c".
#[test]
fn duplicated_outputs_rejected() {
    let dup = Trace::finite(vec![
        Event::int(dfm::B, 0),
        Event::int(dfm::D, 0),
        Event::int(dfm::D, 0),
    ]);
    assert!(!is_smooth(&dfm::dfm_description(), &dup));
}

/// Fabricated delivery: outputting a value never received.
#[test]
fn fabricated_outputs_rejected() {
    let fab = Trace::finite(vec![Event::int(dfm::B, 0), Event::int(dfm::D, 4)]);
    assert!(!is_smooth(&dfm::dfm_description(), &fab));
}
