//! The chaos harness pointed at the conformance zoo: seeded storms over
//! every scenario-capable zoo entry must uphold the harness invariants —
//! benign schedules (delays, supervised recovered crashes) never convict,
//! and every conviction is reproducible and shrinks to a non-empty
//! minimal reproducer. A pinned drop-fault schedule on the deterministic
//! Figure 1 pipeline must shrink to a **single-event** reproducer naming
//! the violated equation.

use eqp::kahn::chaos::{self, ChaosOptions, SchedulerChoice, Trial};
use eqp::kahn::conformance::Verdict;
use eqp::kahn::faults::FaultKind;
use eqp::kahn::report::RunStatus;
use eqp::kahn::{ArqOptions, CrashPoint, Fault, FaultSchedule, LinkFaultSpec, SupervisorOptions};
use eqp::processes::bag;
use eqp::processes::zoo::conformance_zoo;

#[test]
fn seeded_storms_over_the_zoo_uphold_harness_invariants() {
    for (i, entry) in conformance_zoo().iter().enumerate() {
        let Some(scenario) = entry.scenario() else {
            continue; // fork: needs trace completion, not chaos-checkable
        };
        let report = chaos::storm(
            &scenario,
            &ChaosOptions {
                trials: 8,
                // pinned per-entry seed: the storm is fully reproducible
                seed: 0x500_u64.wrapping_mul(i as u64 + 1) ^ 0xD15EA5E,
                ..ChaosOptions::default()
            },
        );
        assert_eq!(report.trials, 8, "{}", entry.name);
        assert!(
            report.harness_ok(),
            "{}: harness invariant violated:\n{report}",
            entry.name
        );
        for conviction in &report.convictions {
            assert!(
                !conviction.minimal.is_empty(),
                "{}: conviction shrank to an empty schedule (the scenario \
                 fails fault-free):\n{conviction}",
                entry.name
            );
        }
    }
}

/// Storms over fully reliable-wrapped scenarios: every sampled link fault
/// lands on a protected channel, so ARQ masks it and the trial is
/// classified benign. The only legitimate conviction left in the space is
/// graceful degradation — a sampled total-drop schedule that exhausts a
/// retry budget ends in [`RunStatus::ReliabilityExhausted`] and certifies
/// as [`Verdict::Degraded`]; anything else convicting would flag a benign
/// schedule and fail `harness_ok`.
#[test]
fn protected_storms_never_convict_except_by_graceful_degradation() {
    let mut masked_somewhere = 0usize;
    for (i, entry) in conformance_zoo().iter().enumerate() {
        let Some(scenario) = entry.scenario() else {
            continue; // fork: needs trace completion, not chaos-checkable
        };
        let channels = entry.network(0).channels();
        let scenario = scenario.with_reliable(channels, ArqOptions::default());
        let report = chaos::storm(
            &scenario,
            &ChaosOptions {
                trials: 6,
                seed: 0xA59_u64.wrapping_mul(i as u64 + 1) ^ 0x0DD5,
                ..ChaosOptions::default()
            },
        );
        assert!(
            report.harness_ok(),
            "{}: harness invariant violated under full protection:\n{report}",
            entry.name
        );
        masked_somewhere += report.conformant;
        for conviction in &report.convictions {
            assert!(
                matches!(conviction.status, RunStatus::ReliabilityExhausted { .. }),
                "{}: a protected conviction must come from budget \
                 exhaustion, not a masked fault leaking through:\n{conviction}",
                entry.name
            );
            assert!(
                matches!(&conviction.verdict, Verdict::Degraded { link } if link.starts_with("arq@")),
                "{}: exhaustion must certify as Degraded naming the link:\n{conviction}",
                entry.name
            );
            assert!(
                !conviction.minimal.is_empty(),
                "{}: degradation must shrink to the lossy link:\n{conviction}",
                entry.name
            );
        }
    }
    assert!(
        masked_somewhere > 0,
        "some harmful schedules must have been masked outright"
    );
}

/// Pinned graceful degradation: a total drop on the bag's protected input
/// under an impatient retry budget exhausts the link. The run terminates
/// (no hang) in `ReliabilityExhausted`, certifies as `Degraded` naming
/// the exhausted link, and the schedule shrinks past the benign delay to
/// the single drop fault that caused it.
#[test]
fn exhausted_retry_budget_degrades_gracefully_and_shrinks_to_the_lossy_link() {
    let entry = conformance_zoo()
        .into_iter()
        .find(|e| e.name == "bag")
        .expect("bag is registered");
    let scenario = entry
        .scenario()
        .expect("bag has no completion hook")
        .with_reliable([bag::C], ArqOptions::impatient());
    let schedule = FaultSchedule {
        crashes: vec![],
        links: vec![
            LinkFaultSpec {
                chan: bag::D,
                fault: Fault::Delay { slack: 1 },
            },
            // period 1 drops every frame *and* every retransmission: the
            // impatient budget (one retry) exhausts almost immediately
            LinkFaultSpec {
                chan: bag::C,
                fault: Fault::Drop { period: 1 },
            },
        ],
    };
    let trial = Trial {
        net_seed: 0,
        scheduler: SchedulerChoice::RoundRobin,
        schedule,
    };
    let sup = SupervisorOptions::one_for_one();
    let (report, conf) = chaos::run_trial(&scenario, &trial, sup);
    assert!(
        matches!(&report.status, RunStatus::ReliabilityExhausted { link } if link == "arq@ch120"),
        "expected graceful exhaustion on the protected input, got: {}",
        report.status
    );
    match &conf.verdict {
        Verdict::Degraded { link } => assert_eq!(link, "arq@ch120"),
        v => panic!("expected Degraded, got {v:?}"),
    }
    assert!(
        !conf.is_conformant(),
        "degraded is certified but not conformant"
    );
    assert!(conf.to_string().contains("DEGRADED"), "{conf}");
    assert!(
        report
            .fault_log()
            .iter()
            .any(|r| r.event.kind == FaultKind::RetryExhausted),
        "the exhaustion must be named in the fault log"
    );
    let minimal = chaos::shrink(&scenario, &trial, sup);
    assert_eq!(minimal.len(), 1, "expected the drop alone, got: {minimal}");
    assert_eq!(
        minimal.links[0].chan,
        bag::C,
        "the lossy link is the culprit"
    );
    assert!(matches!(minimal.links[0].fault, Fault::Drop { period: 1 }));
}

#[test]
fn pinned_drop_fault_shrinks_to_a_single_event_reproducer() {
    let entry = conformance_zoo()
        .into_iter()
        .find(|e| e.name == "bag")
        .expect("bag is registered");
    let scenario = entry.scenario().expect("bag has no completion hook");
    // a noisy schedule: a supervised crash (recovers), a benign delay on
    // the input, and the actual culprit — a drop on the bag's *output*: a
    // dropped send vanishes from the history entirely, so at quiescence
    // some received value never appears on `d` and the per-value counting
    // equation `(=v)(d) ⟸ (=v)(c)` fails its limit condition.
    let schedule = FaultSchedule {
        crashes: vec![CrashPoint {
            process: 1,
            at_step: 2,
        }],
        links: vec![
            LinkFaultSpec {
                chan: bag::C,
                fault: Fault::Delay { slack: 1 },
            },
            LinkFaultSpec {
                chan: bag::D,
                fault: Fault::Drop { period: 2 },
            },
        ],
    };
    let trial = Trial {
        net_seed: 0,
        scheduler: SchedulerChoice::RoundRobin,
        schedule,
    };
    let sup = SupervisorOptions::one_for_one();
    let (_, conf) = chaos::run_trial(&scenario, &trial, sup);
    assert!(!conf.is_conformant(), "the noisy schedule must convict");
    // the early-abort monitored shrink must find the identical minimum,
    // and report its cost counters
    let monitored = chaos::shrink_report(&scenario, &trial, sup);
    assert!(monitored.trials_run > 0);
    let minimal = chaos::shrink(&scenario, &trial, sup);
    assert_eq!(
        monitored.minimal, minimal,
        "monitored ddmin must shrink to the same spec as the post-hoc path"
    );
    assert_eq!(
        minimal.len(),
        1,
        "expected a single-event reproducer, got: {minimal}"
    );
    assert!(
        minimal.crashes.is_empty(),
        "the crash is recovered — not it"
    );
    assert_eq!(minimal.links.len(), 1);
    assert_eq!(
        minimal.links[0].chan,
        bag::D,
        "the dropped link is the culprit"
    );
    assert!(matches!(minimal.links[0].fault, Fault::Drop { .. }));
    // the minimal trial still convicts, and names the violated equation
    let minimal_trial = Trial {
        schedule: minimal,
        ..trial
    };
    let (report, conf) = chaos::run_trial(&scenario, &minimal_trial, sup);
    assert!(!conf.is_conformant());
    assert!(
        conf.failing_component().is_some(),
        "conviction must name the violated component equation: {conf}"
    );
    assert!(
        !report.fault_log().is_empty(),
        "the injected drop must be named in the fault log"
    );
}
