//! Bounded-queue overload soak: a bursty producer (two sends per step)
//! feeding a one-at-a-time consumer. Unbounded, the feed queue balloons
//! to O(workload); bounded, peak queue memory is O(capacity) and the
//! producer absorbs the excess as send-blocked rounds — with the full
//! workload still delivered in order once the run quiesces. Overflow that
//! cannot be absorbed has a *named* outcome: a burst that can never fit
//! blocks the network into `RunStatus::Backpressured`, a deadline cuts a
//! live-but-slow run into `RunStatus::DeadlineExpired`, and the `Shed`
//! policy trades loss for liveness with every dropped send metered.

use eqp::kahn::{
    Network, OverflowPolicy, Process, RoundRobin, RunOptions, RunStatus, StateCell, StepCtx,
    StepResult,
};
use eqp::trace::{Chan, Value};

const FEED: Chan = Chan::new(210);
const OUT: Chan = Chan::new(211);
const TOTAL: i64 = 400;

/// Emits `0..TOTAL` on `FEED`, two values per step: twice the consumer's
/// drain rate, so an unbounded queue grows linearly with the workload.
struct Flood {
    next: i64,
}

impl Process for Flood {
    fn name(&self) -> &str {
        "flood"
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![FEED]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if self.next >= TOTAL {
            return StepResult::Idle;
        }
        for _ in 0..2 {
            if self.next < TOTAL {
                ctx.send(FEED, Value::Int(self.next));
                self.next += 1;
            }
        }
        StepResult::Progress
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Int(self.next))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_int() {
            Some(n) => {
                self.next = n;
                true
            }
            None => false,
        }
    }
}

/// Drains one value per step from `FEED` to `OUT`.
struct Sink;

impl Process for Sink {
    fn name(&self) -> &str {
        "sink"
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![FEED]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![OUT]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match ctx.pop(FEED) {
            Some(v) => {
                ctx.send(OUT, v);
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Int(0))
    }

    fn restore(&mut self, _state: &StateCell) -> bool {
        true
    }
}

fn overload_net() -> Network {
    let mut net = Network::new();
    net.add(Flood { next: 0 });
    net.add(Sink);
    net
}

fn opts() -> RunOptions {
    RunOptions {
        max_steps: 20_000,
        seed: 0,
        ..RunOptions::default()
    }
}

fn feed_report(report: &eqp::kahn::RunReport) -> &eqp::kahn::ChannelReport {
    report
        .channels
        .iter()
        .find(|c| c.chan == FEED)
        .expect("feed channel is metered")
}

/// The baseline the bound is measured against: unbounded, the feed queue
/// peaks at O(workload).
fn unbounded_high_water() -> usize {
    let report = overload_net().run_report(&mut RoundRobin::new(), opts());
    assert!(report.quiescent);
    feed_report(&report).high_water
}

#[test]
fn bounded_soak_caps_queue_memory_and_still_delivers_everything() {
    let unbounded = unbounded_high_water();
    assert!(
        unbounded >= TOTAL as usize / 4,
        "the unbounded feed queue must balloon (got high-water {unbounded})"
    );
    for cap in [2usize, 8] {
        let report = overload_net().run_report(&mut RoundRobin::new(), opts().with_capacity(cap));
        assert!(
            report.quiescent,
            "cap {cap}: backpressure must not deadlock this pipeline:\n{report}"
        );
        // peak queue memory is O(capacity), not O(workload)
        let feed = feed_report(&report);
        assert_eq!(feed.capacity, Some(cap));
        assert!(
            feed.high_water <= cap,
            "cap {cap}: high-water {} exceeds the bound",
            feed.high_water
        );
        assert!(
            unbounded > 10 * feed.high_water,
            "cap {cap}: bounding must shrink peak memory by an order of \
             magnitude ({unbounded} vs {})",
            feed.high_water
        );
        assert_eq!(feed.residual, 0, "cap {cap}: the feed must drain");
        // the excess is absorbed as blocked sends, visibly metered
        assert!(feed.blocked_sends > 0, "cap {cap}: the bound never bit");
        let flood = &report.processes[0];
        assert!(flood.send_blocked > 0 && flood.max_blocked_rounds > 0);
        assert!(
            report.to_string().contains("send-blocked"),
            "blocked telemetry must surface in the report:\n{report}"
        );
        assert!(
            report.bottleneck().is_some(),
            "a send-blocked process is a bottleneck candidate"
        );
        // and the delivered history is still the complete identity
        assert_eq!(
            report.trace.seq_on(OUT).take(TOTAL as usize + 1),
            (0..TOTAL).map(Value::Int).collect::<Vec<_>>(),
            "cap {cap}: backpressure must not lose or reorder data"
        );
    }
}

#[test]
fn unfittable_burst_blocks_with_a_named_outcome() {
    // capacity 1 can never admit the atomic two-send burst: the step
    // rolls back forever and the engine names the flow deadlock instead
    // of spinning
    let report = overload_net().run_report(&mut RoundRobin::new(), opts().with_capacity(1));
    assert!(!report.quiescent);
    match &report.status {
        RunStatus::Backpressured { process, chan } => {
            assert_eq!(process, "flood");
            assert_eq!(*chan, FEED);
        }
        s => panic!("expected Backpressured, got: {s}"),
    }
    assert!(
        report.status.to_string().contains("flood"),
        "the named outcome must identify the blocked process: {}",
        report.status
    );
}

#[test]
fn deadline_cuts_a_live_but_slow_run_with_a_named_outcome() {
    // cap 2 progresses (slowly); a 20-round deadline expires first
    let report = overload_net().run_report(
        &mut RoundRobin::new(),
        opts().with_capacity(2).with_deadline(20),
    );
    assert!(!report.quiescent);
    assert_eq!(report.status, RunStatus::DeadlineExpired);
    assert!(
        report.rounds <= 21,
        "the deadline must actually cut the run"
    );
    // without the deadline the same bounded run completes
    let full = overload_net().run_report(&mut RoundRobin::new(), opts().with_capacity(2));
    assert!(full.quiescent);
}

#[test]
fn shed_policy_trades_metered_loss_for_liveness() {
    let report = overload_net().run_report(
        &mut RoundRobin::new(),
        opts().with_capacity(1).with_overflow(OverflowPolicy::Shed),
    );
    // the unfittable burst no longer deadlocks: overflow is dropped
    assert!(
        report.quiescent,
        "shedding must keep the run live:\n{report}"
    );
    let feed = feed_report(&report);
    assert!(feed.shed > 0, "overflow must be metered as shed");
    assert!(feed.high_water <= 1);
    let delivered = report.trace.seq_on(OUT).take(TOTAL as usize + 1);
    assert_eq!(
        delivered.len() + feed.shed,
        TOTAL as usize,
        "every send is either delivered or metered as shed"
    );
    // what survives is an in-order subsequence of the workload
    let mut last = -1i64;
    for v in &delivered {
        let Value::Int(n) = v else {
            panic!("non-integer on OUT")
        };
        assert!(*n > last, "shedding must preserve relative order");
        last = *n;
    }
}
