//! The set-theoretic process layer (Section 3.1.2) against the equational
//! layer: network traces computed extensionally (projections land in
//! component trace sets) must coincide with the composite description's
//! smooth solutions (Theorem 2, stated the paper's original way).

use eqp::core::process_spec::{is_network_trace_extensional, network_traces, ProcessSpec};
use eqp::core::smooth::is_smooth;
use eqp::core::{compose, Alphabet, Description, EnumOptions};
use eqp::seqfn::paper::{ch, even, odd};
use eqp::trace::{Chan, ChanSet, Event, Trace, Value};

fn b() -> Chan {
    Chan::new(0)
}
fn c() -> Chan {
    Chan::new(1)
}
fn d() -> Chan {
    Chan::new(2)
}

fn dfm_desc() -> Description {
    Description::new("dfm")
        .equation(even(ch(d())), ch(b()))
        .equation(odd(ch(d())), ch(c()))
}

fn alpha() -> Alphabet {
    Alphabet::new()
        .with_chan(b(), [Value::Int(0)])
        .with_chan(c(), [Value::Int(1)])
        .with_ints(d(), 0, 1)
}

fn source_desc(chan: Chan, vals: &[i64]) -> Description {
    Description::new("src").defines(chan, eqp::seqfn::SeqExpr::const_ints(vals.to_vec()))
}

/// Build ProcessSpecs from descriptions, compose extensionally, and
/// compare against the equational composite on every bounded trace.
#[test]
fn extensional_composition_matches_equational() {
    let opts = EnumOptions {
        max_depth: 4,
        max_nodes: 500_000,
    };
    // components: a source of ⟨0⟩ on b, a source of ⟨1⟩ on c, dfm.
    let src_b = source_desc(b(), &[0]);
    let src_c = source_desc(c(), &[1]);
    let dfm = dfm_desc();
    let specs = vec![
        ProcessSpec::from_description(&src_b, &ChanSet::from_chans([b()]), &alpha(), opts),
        ProcessSpec::from_description(&src_c, &ChanSet::from_chans([c()]), &alpha(), opts),
        ProcessSpec::from_description(&dfm, &ChanSet::from_chans([b(), c(), d()]), &alpha(), opts),
    ];
    let net = compose(&[src_b, src_c, dfm]);

    // all candidate traces up to 4 events over the alphabet:
    let mut all = vec![Trace::empty()];
    let mut level = vec![Trace::empty()];
    for _ in 0..4 {
        let mut next = Vec::new();
        for u in &level {
            for (cn, msgs) in alpha().iter() {
                for m in msgs {
                    let v = u.pushed(Event::new(cn, *m)).unwrap();
                    next.push(v.clone());
                    all.push(v);
                }
            }
        }
        level = next;
    }

    let extensional = network_traces(&specs, all.iter().cloned());
    for t in &all {
        let equational = is_smooth(&net, t);
        let ext = extensional.contains(t);
        assert_eq!(
            equational, ext,
            "composition layers disagree on {t}: equational={equational} extensional={ext}"
        );
    }
    // the canonical full run is a network trace both ways:
    let full = Trace::finite(vec![
        Event::int(b(), 0),
        Event::int(c(), 1),
        Event::int(d(), 0),
        Event::int(d(), 1),
    ]);
    assert!(is_network_trace_extensional(&specs, &full));
    assert!(is_smooth(&net, &full));
}

/// Histories and nonquiescent histories partition correctly for a spec
/// derived from a description.
#[test]
fn histories_partition() {
    let spec = ProcessSpec::from_description(
        &dfm_desc(),
        &ChanSet::from_chans([b(), c(), d()]),
        &alpha(),
        EnumOptions {
            max_depth: 3,
            max_nodes: 500_000,
        },
    );
    let histories = spec.histories(3);
    let nonquiescent = spec.nonquiescent_histories(3);
    for h in &histories {
        let quiescent = spec.has_trace(h);
        assert_eq!(
            !quiescent,
            nonquiescent.contains(h),
            "partition broken at {h}"
        );
        // every history must satisfy the smoothness condition (it lies on
        // a path of the tree)
        assert!(eqp::core::smooth::smoothness_holds(&dfm_desc(), h, 8));
    }
    // (b,0) is a history but not quiescent:
    let owing = Trace::finite(vec![Event::int(b(), 0)]);
    assert!(histories.contains(&owing));
    assert!(nonquiescent.contains(&owing));
}
