//! Properties of the operational nondeterminism sources: every scheduler
//! round is a permutation, seeded runs are reproducible, and fair oracles
//! honour their alternation bound for every seed.

use eqp::kahn::{Adversarial, Oracle, RandomSched, RoundRobin, Scheduler};
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_scheduler_round_is_a_permutation(seed in 0u64..500, n in 1usize..12) {
        let mut scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomSched::new(seed)),
            Box::new(Adversarial::new(seed)),
        ];
        for s in scheds.iter_mut() {
            for _ in 0..5 {
                let mut r = s.round(n);
                r.sort_unstable();
                prop_assert_eq!(r, (0..n).collect::<Vec<_>>(), "{}", s.name());
            }
        }
    }

    #[test]
    fn schedulers_are_reproducible(seed in 0u64..500, n in 1usize..8) {
        let a: Vec<Vec<usize>> = {
            let mut s = RandomSched::new(seed);
            (0..6).map(|_| s.round(n)).collect()
        };
        let b: Vec<Vec<usize>> = {
            let mut s = RandomSched::new(seed);
            (0..6).map(|_| s.round(n)).collect()
        };
        prop_assert_eq!(a, b);
        let a: Vec<Vec<usize>> = {
            let mut s = Adversarial::new(seed);
            (0..6).map(|_| s.round(n)).collect()
        };
        let b: Vec<Vec<usize>> = {
            let mut s = Adversarial::new(seed);
            (0..6).map(|_| s.round(n)).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// Fair oracles never exceed their alternation bound, for any seed.
    #[test]
    fn fair_oracle_bound_holds(seed in 0u64..500, bound in 1usize..6) {
        let mut o = Oracle::fair(seed, bound);
        let bits = o.take(256);
        let mut run = 1usize;
        for w in bits.windows(2) {
            if w[0] == w[1] {
                run += 1;
                prop_assert!(run <= bound, "run of {run} exceeds bound {bound}");
            } else {
                run = 1;
            }
        }
        // both values occur in any window of bound+1
        for w in bits.windows(bound + 1) {
            prop_assert!(w.iter().any(|&b| b) && w.iter().any(|&b| !b) || w.len() <= bound);
        }
    }

    /// Scripted oracles replay exactly, then alternate.
    #[test]
    fn scripted_oracle_replays(bits in proptest::collection::vec(any::<bool>(), 0..8)) {
        let mut o = Oracle::scripted(eqp::trace::Lasso::finite(bits.clone()));
        let got = o.take(bits.len() + 4);
        prop_assert_eq!(&got[..bits.len()], &bits[..]);
        // the tail alternates starting with T
        let tail = &got[bits.len()..];
        prop_assert_eq!(tail, &[true, false, true, false][..]);
    }
}
