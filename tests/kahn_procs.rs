//! Behavioral tests for the Kahn standard-process library additions
//! (`Delay`, `Zip2`) and their interaction with the equational layer.

use eqp::core::kahn_eqs::{KahnSystem, SolveOptions};
use eqp::kahn::{procs, Network, RoundRobin, RunOptions};
use eqp::seqfn::paper::ch;
use eqp::seqfn::SeqExpr;
use eqp::trace::{Chan, Lasso, Value};

fn chan(i: u32) -> Chan {
    Chan::new(i)
}

#[test]
fn delay_emits_initial_then_copies() {
    let (a, b) = (chan(0), chan(1));
    let mut net = Network::new();
    net.add(procs::Source::new(
        "src",
        a,
        [Value::Int(10), Value::Int(20)],
    ));
    net.add(procs::Delay::new("delay", a, b, [Value::Int(0)]));
    let run = net.run(&mut RoundRobin::new(), RunOptions::default());
    assert!(run.quiescent);
    assert_eq!(
        run.trace.seq_on(b).take(8),
        vec![Value::Int(0), Value::Int(10), Value::Int(20)]
    );
}

#[test]
fn zip2_adds_pointwise_and_waits_for_both() {
    let (a, b, c) = (chan(0), chan(1), chan(2));
    let mut net = Network::new();
    net.add(procs::Source::new("sa", a, [Value::Int(1), Value::Int(2)]));
    net.add(procs::Source::new(
        "sb",
        b,
        [Value::Int(10), Value::Int(20), Value::Int(30)],
    ));
    net.add(procs::Zip2::add("plus", a, b, c));
    let run = net.run(&mut RoundRobin::new(), RunOptions::default());
    assert!(run.quiescent);
    // min-length semantics: the third b-item never pairs.
    assert_eq!(
        run.trace.seq_on(c).take(8),
        vec![Value::Int(11), Value::Int(22)]
    );
}

/// The running-sum feedback loop: sums = input + (0 ; sums). Operational
/// network vs. the equational system iterated to the same depth.
#[test]
fn running_sum_feedback_agrees_with_equations() {
    let (input, sums, delayed) = (chan(0), chan(1), chan(2));
    // operational
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        input,
        [1, 2, 3, 4].map(Value::Int),
    ));
    net.add(procs::Zip2::add("plus", input, delayed, sums));
    net.add(procs::Delay::new("delay0", sums, delayed, [Value::Int(0)]));
    let run = net.run(&mut RoundRobin::new(), RunOptions::default());
    assert!(run.quiescent);
    let oper: Vec<i64> = run
        .trace
        .seq_on(sums)
        .take(8)
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(oper, vec![1, 3, 6, 10]);

    // equational: sums = input + (0; sums), input = ⟨1 2 3 4⟩ const.
    let sys = KahnSystem::new()
        .equation(input, SeqExpr::const_ints([1, 2, 3, 4]))
        .equation(
            sums,
            SeqExpr::add(ch(input), SeqExpr::concat([Value::Int(0)], ch(sums))),
        );
    let sol = sys.solve(SolveOptions::default()).expect("stabilizes");
    assert!(sol.stabilized);
    let denot: Vec<i64> = sol.seqs[1]
        .take(8)
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(denot, oper);
}

/// Delay of an infinite source shifts the lasso.
#[test]
fn delay_of_lasso_source() {
    let (a, b) = (chan(0), chan(1));
    let mut net = Network::new();
    net.add(procs::Source::lasso(
        "src",
        a,
        Lasso::repeat(vec![Value::Int(7)]),
    ));
    net.add(procs::Delay::new("delay", a, b, [Value::Int(9)]));
    let run = net.run(
        &mut RoundRobin::new(),
        RunOptions {
            max_steps: 20,
            seed: 0,
            ..RunOptions::default()
        },
    );
    assert!(!run.quiescent);
    let out = run.trace.seq_on(b).take(5);
    assert_eq!(out[0], Value::Int(9));
    assert!(out[1..].iter().all(|v| *v == Value::Int(7)));
}
