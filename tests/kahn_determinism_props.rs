//! Kahn determinism as a property: the per-channel histories of a
//! deterministic network do not depend on the scheduler, the scheduler
//! seed, or where the step bound cuts the run. For quiescing networks the
//! complete histories are equal across schedulers and every cut is a
//! prefix of them; for free-running networks every cut approximates the
//! known limit (lfp or closed form) from below. Plus the windowed
//! fairness of `Oracle::fair` at every bound.

use eqp::core::kahn_eqs::SolveOptions;
use eqp::kahn::{procs, Adversarial, Network, RandomSched, RoundRobin, RunOptions, Scheduler};
use eqp::processes::zoo::conformance_zoo;
use eqp::processes::{copy, feedback, ticks};
use eqp::trace::{Chan, Lasso, Value};
use proptest::prelude::*;

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0x5EED)),
    ]
}

const P_IN: Chan = Chan::new(250);
const P_MID: Chan = Chan::new(251);
const P_OUT: Chan = Chan::new(252);

/// A three-stage deterministic pipeline that quiesces in 15 steps.
fn pipeline() -> Network {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        P_IN,
        (1..=5).map(Value::Int).collect::<Vec<_>>(),
    ));
    net.add(procs::Apply::int_affine("double", P_IN, P_MID, 2, 0));
    net.add(procs::Apply::int_affine("inc", P_MID, P_OUT, 1, 1));
    net
}

proptest! {
    /// Quiescing deterministic networks: complete histories are
    /// scheduler-independent, and any bounded cut's histories are
    /// prefixes of them (Kahn's theorem, operationally).
    #[test]
    fn quiescent_histories_equal_and_cuts_are_prefixes(seed in 0u64..200, cut in 1usize..40) {
        let full = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        prop_assert!(full.quiescent);
        for sched in schedulers(seed).iter_mut() {
            let complete = pipeline().run(sched, RunOptions { max_steps: 10_000, seed, ..RunOptions::default() });
            prop_assert!(complete.quiescent, "{}", sched.name());
            let cut_run = pipeline().run(sched, RunOptions { max_steps: cut, seed, ..RunOptions::default() });
            for c in [P_IN, P_MID, P_OUT] {
                prop_assert_eq!(
                    complete.trace.seq_on(c),
                    full.trace.seq_on(c),
                    "{}: complete histories must be scheduler-independent",
                    sched.name(),
                );
                prop_assert!(
                    cut_run.trace.seq_on(c).leq(&full.trace.seq_on(c)),
                    "{} (cut {cut}): history on {c} is not a prefix of the complete run",
                    sched.name(),
                );
            }
            // a cut at/after quiescence is the complete run (probe fix)
            if cut >= 15 {
                prop_assert!(cut_run.quiescent, "{} (cut {cut})", sched.name());
            }
        }
        // the same holds for every quiescing deterministic zoo entry
        for entry in conformance_zoo().iter().filter(|e| e.deterministic && e.quiesces) {
            let canonical = entry.network(0).run(
                &mut RoundRobin::new(),
                RunOptions { max_steps: entry.max_steps, seed: 0, ..RunOptions::default() },
            );
            for sched in schedulers(seed).iter_mut() {
                let run = entry.network(seed).run(
                    sched,
                    RunOptions { max_steps: entry.max_steps, seed, ..RunOptions::default() },
                );
                prop_assert!(run.quiescent);
                let chans: Vec<Chan> = canonical.trace.channels().iter().collect();
                for c in chans {
                    prop_assert_eq!(run.trace.seq_on(c), canonical.trace.seq_on(c));
                }
            }
        }
    }

    /// Free-running deterministic networks approximate their known limit
    /// from below at every cut: the seeded Figure 1 loop against its
    /// solved lfp, Ticks against `T^ω`.
    #[test]
    fn free_running_cuts_stay_within_the_limit(seed in 0u64..200, cut in 1usize..80) {
        let sys = copy::seeded_system();
        let sol = sys.solve(SolveOptions::default()).expect("0^ω is solvable");
        for sched in schedulers(seed).iter_mut() {
            let run = copy::seeded_network().run(sched, RunOptions { max_steps: cut, seed, ..RunOptions::default() });
            prop_assert!(
                sys.histories_within(&sol, &run.trace),
                "{}: cut-{cut} histories exceed the least fixpoint",
                sched.name(),
            );
        }
        for sched in schedulers(seed).iter_mut() {
            let run = ticks::network().run(sched, RunOptions { max_steps: cut, seed, ..RunOptions::default() });
            prop_assert!(!run.quiescent);
            let b = run.trace.seq_on(ticks::B);
            prop_assert!(b.leq(&Lasso::repeat(vec![Value::tt()])));
            prop_assert_eq!(b.take(cut + 1).len(), cut, "one tick per step");
        }
    }

    /// The naturals feedback loop follows its closed form `0 1 2 …` at
    /// every cut, under every scheduler — the lfp here is not eventually
    /// periodic, so the solver cannot produce it, but the operational
    /// approximants are still uniquely determined.
    #[test]
    fn nats_histories_follow_the_closed_form(seed in 0u64..200, cut in 1usize..60) {
        for sched in schedulers(seed).iter_mut() {
            let run = feedback::nats_network().run(sched, RunOptions { max_steps: cut, seed, ..RunOptions::default() });
            let got = run.trace.seq_on(feedback::NATS).take(cut + 1);
            let want: Vec<_> = feedback::nats_prefix(got.len())
                .into_iter()
                .map(Value::Int)
                .collect();
            prop_assert_eq!(got, want, "{}", sched.name());
        }
    }

    /// Windowed fairness of `Oracle::fair`: at every bound, every window
    /// of `2 × bound` consecutive bits contains both values (a run of one
    /// value is capped at `bound`, so a one-sided window of that size is
    /// impossible).
    #[test]
    fn fair_oracle_is_window_fair_at_every_bound(seed in 0u64..500, bound in 1usize..8) {
        let mut o = eqp::kahn::Oracle::fair(seed, bound);
        let bits = o.take(192);
        for w in bits.windows(2 * bound) {
            prop_assert!(
                w.contains(&true) && w.contains(&false),
                "bound {bound}: window {w:?} is one-sided"
            );
        }
    }
}

proptest! {
    // Full-zoo sweep with conformance certification on every run: a
    // handful of sampled seeds already covers zoo × schedulers ×
    // capacities, and 256 cases would take minutes in debug builds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Backpressure is only a scheduler restriction (the bounded-channel
    /// proof obligation): bounding every consumed channel to capacity 1,
    /// 2, or 8 never changes the certified outcome, under any scheduler.
    /// Every entry keeps its run shape and verdict; quiescing
    /// deterministic entries reproduce the unbounded per-channel
    /// histories exactly; free-running deterministic entries stay below
    /// the generous unbounded cut; and no managed channel ever holds
    /// more than its capacity.
    #[test]
    fn bounded_runs_certify_identically_to_unbounded(seed in 0u64..64) {
        let kinds = schedulers(seed).len();
        let mut blocked_total = 0usize;
        for entry in conformance_zoo() {
            // generous unbounded cut for the free-running prefix check
            let limit = entry.network(seed).run(
                &mut RoundRobin::new(),
                RunOptions { max_steps: entry.max_steps * 4, seed, ..RunOptions::default() },
            );
            for kind in 0..kinds {
                let (base_report, base_conf) =
                    entry.certify(schedulers(seed)[kind].as_mut(), seed);
                for cap in [1usize, 2, 8] {
                    let (report, conf) =
                        entry.certify_bounded(schedulers(seed)[kind].as_mut(), seed, cap);
                    prop_assert_eq!(
                        report.quiescent, entry.quiesces,
                        "{} (cap {cap}, sched {kind}): bounding must not change the run shape",
                        entry.name,
                    );
                    prop_assert_eq!(
                        &conf.verdict, &base_conf.verdict,
                        "{} (cap {cap}, sched {kind}): bounded verdict differs from unbounded",
                        entry.name,
                    );
                    for ch in &report.channels {
                        if let Some(capacity) = ch.capacity {
                            prop_assert_eq!(capacity, cap);
                            prop_assert!(
                                ch.high_water <= cap,
                                "{} (cap {cap}): {} high-water {} exceeds its capacity",
                                entry.name, ch.chan, ch.high_water,
                            );
                            blocked_total += ch.blocked_sends;
                        }
                    }
                    if entry.deterministic {
                        let reference =
                            if entry.quiesces { &base_report.trace } else { &limit.trace };
                        let chans: Vec<Chan> = reference.channels().iter().collect();
                        for c in chans {
                            if entry.quiesces {
                                prop_assert_eq!(
                                    report.trace.seq_on(c), reference.seq_on(c),
                                    "{} (cap {cap}): quiescent bounded history on {} differs",
                                    entry.name, c,
                                );
                            } else {
                                prop_assert!(
                                    report.trace.seq_on(c).leq(&reference.seq_on(c)),
                                    "{} (cap {cap}): bounded history on {} is not a prefix",
                                    entry.name, c,
                                );
                            }
                        }
                    }
                }
            }
        }
        // capacity 1 must actually bite somewhere across the zoo: zero
        // blocked sends in the whole sweep would mean the backpressure
        // path was never exercised at all
        prop_assert!(blocked_total > 0, "backpressure never engaged anywhere");
    }
}
