//! E13 / E15 / E16 — cross-crate checks of Theorems 1, 4, 5/6 on instances
//! larger and more varied than the per-crate unit tests.

use eqp::core::fixpoint::{enumerate_smooth_solutions_id, kleene_smooth_witness};
use eqp::core::smooth::{is_smooth, is_smooth_independent};
use eqp::core::{eliminate, reconstruct_witness, Description, System};
use eqp::cpo::domains::{ClampedNat, Powerset};
use eqp::cpo::fixpoint::KleeneOptions;
use eqp::cpo::func::FnCont;
use eqp::seqfn::paper::{ch, even, odd, prepend_int, twice};
use eqp::trace::{Chan, ChanSet, Event, Trace};
use proptest::prelude::*;

// Theorem 4, exhaustively on ClampedNat(8): for *every* monotone
// endofunction given by a random sorted table, the set of smooth
// solutions of `id ⟸ h` is exactly `{lfp(h)}`.
proptest! {
    #[test]
    fn theorem4_uniqueness_clamped_nat(table in proptest::collection::vec(0u64..9, 9)) {
        let mut t = table;
        t.sort_unstable();
        let d = ClampedNat::new(8);
        let tblc = t.clone();
        let h = FnCont::new("table", move |x: &u64| tblc[*x as usize]);
        let (_chain, lfp) =
            kleene_smooth_witness(&d, &h, KleeneOptions::default()).expect("finite domain");
        let universe: Vec<u64> = d.enumerate().collect();
        let tble = t.clone();
        let sols = enumerate_smooth_solutions_id(&d, &universe, &|x: &u64| tble[*x as usize]);
        prop_assert_eq!(sols.len(), 1, "smooth solutions must be unique");
        prop_assert!(sols.contains(&lfp));
    }

    // Theorem 4 on the powerset lattice with random union-closure maps:
    // h(S) = S ∪ seeds ∪ {succ(x) | x ∈ S, x+1 ∈ allowed}.
    #[test]
    fn theorem4_uniqueness_powerset(
        seeds in proptest::collection::btree_set(0u32..4, 0..3),
        allowed in proptest::collection::btree_set(1u32..4, 0..4),
    ) {
        let d = Powerset::new(4);
        let universe = d.enumerate();
        let s2 = seeds.clone();
        let a2 = allowed.clone();
        let hf = move |s: &std::collections::BTreeSet<u32>| {
            let mut out = s.clone();
            out.extend(seeds.iter().copied());
            for &x in s {
                if allowed.contains(&(x + 1)) {
                    out.insert(x + 1);
                }
            }
            out
        };
        let h = FnCont::new("closure", {
            let hf = hf.clone();
            move |s: &std::collections::BTreeSet<u32>| hf(s)
        });
        let (_c, lfp) =
            kleene_smooth_witness(&d, &h, KleeneOptions::default()).expect("finite lattice");
        let sols = enumerate_smooth_solutions_id(&d, &universe, &hf);
        prop_assert_eq!(sols.len(), 1);
        prop_assert!(sols.contains(&lfp));
        let _ = (s2, a2);
    }
}

// Theorem 1 stress: an independent description with *tuple* sides over
// three channels; the staggered and per-prefix checks agree on random
// traces.
proptest! {
    #[test]
    fn theorem1_tuple_agreement(
        evs in proptest::collection::vec((0u32..3, -2i64..4), 0..8)
    ) {
        let (b, c, d) = (Chan::new(0), Chan::new(1), Chan::new(2));
        let desc = Description::new("ind")
            .equation(even(ch(d)), ch(b))
            .equation(odd(ch(d)), twice(ch(c)));
        let t = Trace::finite(
            evs.into_iter()
                .map(|(ci, n)| Event::int([b, c, d][ci as usize], n))
                .collect::<Vec<_>>(),
        );
        prop_assert_eq!(
            is_smooth(&desc, &t),
            is_smooth_independent(&desc, &t, 16)
        );
    }
}

/// Theorems 5/6 on a two-stage elimination (a chain of definitions
/// b₁ := h₁, b₂ := h₂(b₁)), round-tripping witnesses through both stages.
#[test]
fn two_stage_elimination_roundtrip() {
    let (src, b1, b2, out) = (Chan::new(0), Chan::new(1), Chan::new(2), Chan::new(3));
    let sys = System::new()
        .with(Description::new("defB1").defines(b1, twice(ch(src))))
        .with(Description::new("defB2").defines(b2, prepend_int(0, ch(b1))))
        .with(Description::new("useB2").defines(out, ch(b2)));
    // eliminate b2 first (its rhs mentions b1, fine), then b1.
    let s1 = eliminate(&sys, b2).expect("eliminate b2");
    let s2 = eliminate(&s1, b1).expect("eliminate b1");
    assert_eq!(s2.len(), 1);
    let final_desc = s2.flatten();
    // out = 0; 2×src — a quiescent run:
    let s = Trace::finite(vec![
        Event::int(out, 0),
        Event::int(src, 5),
        Event::int(out, 10),
    ]);
    assert!(is_smooth(&final_desc, &s));
    // reconstruct b1 then b2 witnesses, landing on a full-system solution.
    let h1 = twice(ch(src));
    let with_b1 = reconstruct_witness(&s, b1, &h1).expect("finite");
    let h2 = prepend_int(0, ch(b1));
    let with_b2 = reconstruct_witness(&with_b1, b2, &h2).expect("finite");
    let flat = sys.flatten();
    assert!(
        is_smooth(&flat, &with_b2),
        "two-stage witness not smooth: {with_b2}"
    );
    assert_eq!(
        with_b2.project(&ChanSet::from_chans([src, out])),
        s.project(&ChanSet::from_chans([src, out]))
    );
}

/// Elimination ordering degrees of freedom: for the fair-merge system,
/// eliminating c' then d' equals eliminating d' then c'.
#[test]
fn elimination_commutes() {
    use eqp::processes::fair_merge as fm;
    let a = {
        let s = eliminate(&fm::full_system(), fm::C_TAGGED).unwrap();
        eliminate(&s, fm::D_TAGGED).unwrap()
    };
    let b = {
        let s = eliminate(&fm::full_system(), fm::D_TAGGED).unwrap();
        eliminate(&s, fm::C_TAGGED).unwrap()
    };
    for (da, db) in a.descriptions().iter().zip(b.descriptions()) {
        assert_eq!(da.lhs(), db.lhs());
        assert_eq!(da.rhs(), db.rhs());
    }
}
