//! Run telemetry: starvation and bottleneck detection, runtime
//! single-consumer enforcement, and the report's human-readable summary.

use eqp::kahn::{procs, Network, RoundRobin, RunOptions, StepResult};
use eqp::trace::{Chan, Value};

const L: Chan = Chan::new(240);
const R: Chan = Chan::new(241);
const O: Chan = Chan::new(242);

#[test]
fn half_fed_zip_is_reported_as_the_starved_bottleneck() {
    // the zip's right input never arrives: it idles with input waiting on
    // the left for as many rounds as the source keeps feeding it.
    let mut net = Network::new();
    net.add(procs::Source::new(
        "left-env",
        L,
        (1..=5).map(Value::Int).collect::<Vec<_>>(),
    ));
    net.add(procs::Zip2::add("zip", L, R, O));
    let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
    assert!(report.quiescent);
    let zip = report
        .processes
        .iter()
        .find(|p| p.name == "zip")
        .expect("zip reported");
    assert_eq!(zip.progress, 0);
    assert!(
        zip.max_starved_rounds >= 4,
        "zip idled with input for ~5 rounds, got {}",
        zip.max_starved_rounds
    );
    let bottleneck = report.bottleneck().expect("a starved process");
    assert_eq!(bottleneck.name, "zip");
    assert_eq!(report.starved(3).len(), 1);
    // the source was never starved: it has no declared inputs
    assert!(report
        .processes
        .iter()
        .all(|p| p.name == "zip" || p.max_starved_rounds == 0));
    let shown = report.to_string();
    assert!(shown.contains("bottleneck: `zip`"), "{shown}");
    assert!(shown.contains("starved"), "{shown}");
    // all five left messages remain metered: sent but only queued
    let left = report.channel(L).expect("metered");
    assert_eq!(left.sends, 5);
    assert_eq!(left.receives, 0);
    assert_eq!(left.residual, 5);
    assert_eq!(left.high_water, 5);
}

#[test]
fn undeclared_second_reader_is_reported() {
    // Neither reader declares inputs(), so Network::add cannot reject the
    // double-consumer wiring statically; the runtime telemetry must.
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        L,
        (1..=4).map(Value::Int).collect::<Vec<_>>(),
    ));
    net.add(procs::FromFn::new("reader-a", |ctx| match ctx.pop(L) {
        Some(_) => StepResult::Progress,
        None => StepResult::Idle,
    }));
    net.add(procs::FromFn::new("reader-b", |ctx| match ctx.pop(L) {
        Some(_) => StepResult::Progress,
        None => StepResult::Idle,
    }));
    let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
    assert!(!report.single_consumer_ok());
    let v = &report.consumer_violations[0];
    assert_eq!(v.chan, L);
    assert_eq!(v.first, "reader-a");
    assert_eq!(v.second, "reader-b");
    // the channel report names the *first* consumer
    assert_eq!(
        report.channel(L).expect("metered").consumer.as_deref(),
        Some("reader-a")
    );
    assert!(report.to_string().contains("WARNING"), "{report}");
}

#[test]
fn well_wired_networks_report_no_violations() {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        L,
        (1..=3).map(Value::Int).collect::<Vec<_>>(),
    ));
    net.add(procs::Apply::int_affine("double", L, O, 2, 0));
    let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
    assert!(report.single_consumer_ok());
    assert!(report.bottleneck().is_none());
    assert!(report.to_string().contains("bottleneck: none"));
    assert!(
        report.rounds >= 4,
        "at least 3 productive rounds + the quiescence round, got {}",
        report.rounds
    );
}
