//! The checkpoint/resume property at zoo scale: a run checkpointed at
//! step `k` and resumed on a freshly built identical network is
//! **byte-identical** — trace and every report meter — to the
//! uninterrupted run, for all three schedulers across the conformance
//! zoo. Capture itself is pure observation: the checkpointed run's
//! outcome must equal the bare run's.

use eqp::kahn::reliable::{self, ArqOptions};
use eqp::kahn::{
    procs, Adversarial, Fault, Network, RandomSched, RoundRobin, RunOptions, Scheduler,
};
use eqp::processes::zoo::conformance_zoo;
use eqp::trace::{Chan, Value};

/// Two identically constructed schedulers of the same kind — one for the
/// full run, one for the resumed run (resume restores the scheduler's
/// state from the checkpoint, so it must start from the same build).
fn scheduler_pair(kind: usize, seed: u64) -> (Box<dyn Scheduler>, Box<dyn Scheduler>) {
    match kind {
        0 => (Box::new(RoundRobin::new()), Box::new(RoundRobin::new())),
        1 => (
            Box::new(RandomSched::new(seed)),
            Box::new(RandomSched::new(seed)),
        ),
        _ => (
            Box::new(Adversarial::new(seed ^ 0xABCD)),
            Box::new(Adversarial::new(seed ^ 0xABCD)),
        ),
    }
}

const W_IN: Chan = Chan::new(244);
const W_OUT: Chan = Chan::new(245);
const W_AUX: [Chan; 4] = [
    Chan::new(246),
    Chan::new(247),
    Chan::new(248),
    Chan::new(249),
];

/// A reliable transport over a lossy medium: source → ARQ sender →
/// drop-every-other-frame link → ARQ receiver. Mid-run state spans the
/// sender's retransmission window, the receiver's reorder buffer, *and*
/// the faulty link's in-flight queue — the full satellite-1 surface.
fn lossy_wire_pipeline() -> Network {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env",
        W_IN,
        (1..=8).map(Value::Int).collect::<Vec<_>>(),
    ));
    reliable::wire(
        &mut net,
        "wire",
        W_IN,
        W_OUT,
        W_AUX,
        Some(Fault::Drop { period: 2 }),
        None,
        ArqOptions::default(),
    );
    net
}

/// A checkpoint taken mid-recovery — retransmissions pending, frames
/// sitting in the lossy medium, the receiver holding an out-of-order
/// window — resumes byte-identically and still masks the drop fault.
#[test]
fn reliable_wire_checkpoint_resume_is_byte_identical_under_drop() {
    let opts = RunOptions {
        max_steps: 4000,
        seed: 3,
        ..RunOptions::default()
    };
    for kind in 0..3 {
        let (mut full_sched, _) = scheduler_pair(kind, 3);
        let full = lossy_wire_pipeline().run_report(&mut full_sched, opts);
        assert!(full.quiescent, "kind {kind}: ARQ must mask the drop");
        assert_eq!(
            full.trace.seq_on(W_OUT).take(9),
            (1..=8).map(Value::Int).collect::<Vec<_>>(),
            "kind {kind}: delivered history must be the identity"
        );
        // cut at several points, including deep inside recovery
        for cut in [full.steps / 4, full.steps / 2, (3 * full.steps) / 4] {
            let (mut ck_sched, mut resume_sched) = scheduler_pair(kind, 3);
            let (partial, ckpt) =
                lossy_wire_pipeline().run_report_checkpointed(&mut ck_sched, opts, cut);
            assert_eq!(
                partial.trace, full.trace,
                "kind {kind}: capture perturbed the run"
            );
            let ckpt = ckpt.unwrap_or_else(|| panic!("kind {kind}: no checkpoint at {cut}"));
            assert!(
                ckpt.is_complete(),
                "kind {kind}: ARQ endpoints and faulty links must all snapshot"
            );
            let resumed = lossy_wire_pipeline()
                .resume_report(&ckpt, &mut resume_sched, opts)
                .unwrap_or_else(|e| panic!("kind {kind}: resume failed: {e}"));
            let tag = format!("kind {kind}, cut at {cut}");
            assert_eq!(resumed.trace, full.trace, "{tag}: trace diverged");
            assert_eq!(resumed.steps, full.steps, "{tag}: step meter diverged");
            assert_eq!(resumed.rounds, full.rounds, "{tag}: round meter diverged");
            assert_eq!(
                resumed.processes, full.processes,
                "{tag}: process meters diverged"
            );
            assert_eq!(
                resumed.channels, full.channels,
                "{tag}: channel meters diverged"
            );
            assert_eq!(
                resumed.fault_log(),
                full.fault_log(),
                "{tag}: replayed fault log diverged"
            );
        }
    }
}

#[test]
fn zoo_checkpoint_resume_is_byte_identical() {
    for entry in conformance_zoo() {
        for seed in [0u64, 7] {
            for kind in 0..3 {
                let opts = RunOptions {
                    max_steps: entry.max_steps,
                    seed,
                    ..RunOptions::default()
                };
                let (mut full_sched, _) = scheduler_pair(kind, seed);
                let full = entry.network(seed).run_report(&mut full_sched, opts);
                if full.steps < 2 {
                    continue; // nothing to interrupt
                }
                // cut roughly mid-run
                let k = full.steps / 2;
                let (mut ck_sched, mut resume_sched) = scheduler_pair(kind, seed);
                let (partial, ckpt) =
                    entry
                        .network(seed)
                        .run_report_checkpointed(&mut ck_sched, opts, k);
                // capture is pure observation
                assert_eq!(
                    partial.trace, full.trace,
                    "{} (seed {seed}, kind {kind}): capture perturbed the run",
                    entry.name
                );
                let ckpt = ckpt.unwrap_or_else(|| {
                    panic!(
                        "{}: no checkpoint at step {k} of {}",
                        entry.name, full.steps
                    )
                });
                assert!(
                    ckpt.is_complete(),
                    "{}: every zoo process must provide snapshot hooks",
                    entry.name
                );
                let resumed = entry
                    .network(seed)
                    .resume_report(&ckpt, &mut resume_sched, opts)
                    .unwrap_or_else(|e| panic!("{}: resume failed: {e}", entry.name));
                let tag = format!("{} (seed {seed}, kind {kind}, cut at {k})", entry.name);
                assert_eq!(resumed.trace, full.trace, "{tag}: trace diverged");
                assert_eq!(resumed.steps, full.steps, "{tag}: step meter diverged");
                assert_eq!(resumed.rounds, full.rounds, "{tag}: round meter diverged");
                assert_eq!(
                    resumed.quiescent, full.quiescent,
                    "{tag}: run shape diverged"
                );
                assert_eq!(
                    resumed.processes, full.processes,
                    "{tag}: process meters diverged"
                );
                assert_eq!(
                    resumed.channels, full.channels,
                    "{tag}: channel meters diverged"
                );
            }
        }
    }
}
