//! The checkpoint/resume property at zoo scale: a run checkpointed at
//! step `k` and resumed on a freshly built identical network is
//! **byte-identical** — trace and every report meter — to the
//! uninterrupted run, for all three schedulers across the conformance
//! zoo. Capture itself is pure observation: the checkpointed run's
//! outcome must equal the bare run's.

use eqp::kahn::{Adversarial, RandomSched, RoundRobin, RunOptions, Scheduler};
use eqp::processes::zoo::conformance_zoo;

/// Two identically constructed schedulers of the same kind — one for the
/// full run, one for the resumed run (resume restores the scheduler's
/// state from the checkpoint, so it must start from the same build).
fn scheduler_pair(kind: usize, seed: u64) -> (Box<dyn Scheduler>, Box<dyn Scheduler>) {
    match kind {
        0 => (Box::new(RoundRobin::new()), Box::new(RoundRobin::new())),
        1 => (
            Box::new(RandomSched::new(seed)),
            Box::new(RandomSched::new(seed)),
        ),
        _ => (
            Box::new(Adversarial::new(seed ^ 0xABCD)),
            Box::new(Adversarial::new(seed ^ 0xABCD)),
        ),
    }
}

#[test]
fn zoo_checkpoint_resume_is_byte_identical() {
    for entry in conformance_zoo() {
        for seed in [0u64, 7] {
            for kind in 0..3 {
                let opts = RunOptions {
                    max_steps: entry.max_steps,
                    seed,
                };
                let (mut full_sched, _) = scheduler_pair(kind, seed);
                let full = entry.network(seed).run_report(&mut full_sched, opts);
                if full.steps < 2 {
                    continue; // nothing to interrupt
                }
                // cut roughly mid-run
                let k = full.steps / 2;
                let (mut ck_sched, mut resume_sched) = scheduler_pair(kind, seed);
                let (partial, ckpt) =
                    entry
                        .network(seed)
                        .run_report_checkpointed(&mut ck_sched, opts, k);
                // capture is pure observation
                assert_eq!(
                    partial.trace, full.trace,
                    "{} (seed {seed}, kind {kind}): capture perturbed the run",
                    entry.name
                );
                let ckpt = ckpt.unwrap_or_else(|| {
                    panic!(
                        "{}: no checkpoint at step {k} of {}",
                        entry.name, full.steps
                    )
                });
                assert!(
                    ckpt.is_complete(),
                    "{}: every zoo process must provide snapshot hooks",
                    entry.name
                );
                let resumed = entry
                    .network(seed)
                    .resume_report(&ckpt, &mut resume_sched, opts)
                    .unwrap_or_else(|e| panic!("{}: resume failed: {e}", entry.name));
                let tag = format!("{} (seed {seed}, kind {kind}, cut at {k})", entry.name);
                assert_eq!(resumed.trace, full.trace, "{tag}: trace diverged");
                assert_eq!(resumed.steps, full.steps, "{tag}: step meter diverged");
                assert_eq!(resumed.rounds, full.rounds, "{tag}: round meter diverged");
                assert_eq!(
                    resumed.quiescent, full.quiescent,
                    "{tag}: run shape diverged"
                );
                assert_eq!(
                    resumed.processes, full.processes,
                    "{tag}: process meters diverged"
                );
                assert_eq!(
                    resumed.channels, full.channels,
                    "{tag}: channel meters diverged"
                );
            }
        }
    }
}
