//! Model checks for the sharded runtime's concurrency primitives.
//!
//! The first half is the exhaustive-interleaving check promised by
//! [`eqp::kahn::spsc`]'s module docs: a pure model of the Lamport ring
//! algorithm — two thread programs broken into their *atomic
//! micro-steps* (cache refresh, slot access, index publication) — is
//! driven through **every** schedule by depth-first search, asserting at
//! each step that no slot is written while it still holds an unconsumed
//! item, no slot is read before its item was published, and the consumed
//! sequence is exactly the produced sequence (FIFO, no loss, no
//! duplication). The model's shared memory is sequentially consistent
//! while each thread works from *stale cached* counterparts, exactly the
//! algorithm's structure: the real implementation's Release stores and
//! Acquire loads are what collapse weak memory to this model (each cache
//! refresh is an Acquire load that observes a Release-published index
//! and everything written before it).
//!
//! The second half exercises the real rings and the coordinator/worker
//! handoff shape under genuine threads: backpressure on both sides of a
//! command/reply pair, many capacities, and FIFO order end to end.

use eqp::kahn::ring;
use std::thread;

/// How far each thread has advanced through its three-micro-step
/// program for the current item.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to (re)check capacity/availability against the cached
    /// counterpart index, refreshing the cache from shared memory.
    Check,
    /// Cleared to touch the slot: write (producer) or read (consumer).
    Slot,
    /// About to publish the new index with a Release store.
    Publish,
}

/// The model state: sequentially consistent shared memory (`head`,
/// `tail`, `slots`) plus each thread's private state (program counter,
/// stale cache of the counterpart index, progress through the item
/// sequence).
#[derive(Clone)]
struct Model {
    cap: usize,
    items: usize,
    /// Shared: monotonic pop index, published by the consumer.
    head: usize,
    /// Shared: monotonic push index, published by the producer.
    tail: usize,
    /// Shared: `slots[i] = Some(k)` while item `k` occupies slot `i`.
    slots: Vec<Option<usize>>,
    /// Producer private: program counter, stale copy of `head`, items pushed.
    p_pc: Pc,
    p_head_cache: usize,
    pushed: usize,
    /// Consumer private: program counter, stale copy of `tail`, items popped.
    c_pc: Pc,
    c_tail_cache: usize,
    popped: usize,
}

impl Model {
    fn new(cap: usize, items: usize) -> Model {
        Model {
            cap,
            items,
            head: 0,
            tail: 0,
            slots: vec![None; cap],
            p_pc: Pc::Check,
            p_head_cache: 0,
            pushed: 0,
            c_pc: Pc::Check,
            c_tail_cache: 0,
            popped: 0,
        }
    }

    fn producer_done(&self) -> bool {
        self.pushed == self.items && self.p_pc == Pc::Check
    }

    fn consumer_done(&self) -> bool {
        self.popped == self.items && self.c_pc == Pc::Check
    }

    /// One producer micro-step. Returns false if the thread is done or
    /// (in the Check state) spinning on a genuinely full ring — the
    /// scheduler then must run the consumer (no livelock: DFS treats a
    /// blocked thread as having no transition).
    fn step_producer(&mut self) -> bool {
        match self.p_pc {
            Pc::Check => {
                if self.pushed == self.items {
                    return false;
                }
                // try_push: trust the stale cache first; only a
                // full-by-cache verdict pays for an Acquire refresh —
                // exactly the implementation's fast path.
                if self.tail - self.p_head_cache == self.cap {
                    self.p_head_cache = self.head;
                    if self.tail - self.p_head_cache == self.cap {
                        return false; // full even after refresh: spin
                    }
                }
                self.p_pc = Pc::Slot;
                true
            }
            Pc::Slot => {
                let slot = self.tail % self.cap;
                // THE safety property: the capacity check against a
                // *stale* head must still imply the slot is vacated.
                assert!(
                    self.slots[slot].is_none(),
                    "producer overwrote an unconsumed item in slot {slot}"
                );
                assert!(
                    self.tail - self.head < self.cap,
                    "producer cleared the capacity check with the ring truly full"
                );
                self.slots[slot] = Some(self.pushed);
                self.p_pc = Pc::Publish;
                true
            }
            Pc::Publish => {
                // Release store: the slot write above becomes visible
                // together with the new tail.
                self.tail += 1;
                self.pushed += 1;
                self.p_pc = Pc::Check;
                true
            }
        }
    }

    /// One consumer micro-step; mirror image of the producer.
    fn step_consumer(&mut self) -> bool {
        match self.c_pc {
            Pc::Check => {
                if self.popped == self.items {
                    return false;
                }
                if self.c_tail_cache == self.head {
                    self.c_tail_cache = self.tail;
                    if self.c_tail_cache == self.head {
                        return false; // empty even after refresh: spin
                    }
                }
                self.c_pc = Pc::Slot;
                true
            }
            Pc::Slot => {
                let slot = self.head % self.cap;
                // FIFO + no-loss + no-dup in one assertion: the slot
                // must hold exactly the next expected item.
                assert!(
                    self.head < self.tail,
                    "consumer read past the published tail"
                );
                assert_eq!(
                    self.slots[slot],
                    Some(self.popped),
                    "consumer read slot {slot} out of order"
                );
                self.slots[slot] = None;
                self.c_pc = Pc::Publish;
                true
            }
            Pc::Publish => {
                self.head += 1;
                self.popped += 1;
                self.c_pc = Pc::Check;
                true
            }
        }
    }
}

/// DFS over every interleaving of producer/consumer micro-steps. Each
/// path must terminate with all items transferred in order; a state
/// where neither thread can move before that is a lost-wakeup deadlock.
fn explore(m: &Model, visited: &mut std::collections::HashSet<Vec<usize>>) {
    // Dedup on the full state vector: different schedules reconverge.
    let key = vec![
        m.head,
        m.tail,
        m.pushed,
        m.popped,
        m.p_pc as usize,
        m.c_pc as usize,
        m.p_head_cache,
        m.c_tail_cache,
    ];
    if !visited.insert(key) {
        return;
    }
    if m.producer_done() && m.consumer_done() {
        assert_eq!(m.head, m.items, "terminated before draining the ring");
        return;
    }
    let mut moved = false;
    let mut p = m.clone();
    if p.step_producer() {
        moved = true;
        explore(&p, visited);
    }
    let mut c = m.clone();
    if c.step_consumer() {
        moved = true;
        explore(&c, visited);
    }
    assert!(
        moved,
        "deadlock: neither thread can move at head={} tail={} pushed={} popped={}",
        m.head, m.tail, m.pushed, m.popped
    );
}

/// The exhaustive check, across capacities that force wrap-around and
/// sustained full/empty boundary contention.
#[test]
fn spsc_ring_model_every_interleaving_is_fifo_and_collision_free() {
    for cap in 1..=3 {
        for items in 1..=6 {
            let mut visited = std::collections::HashSet::new();
            explore(&Model::new(cap, items), &mut visited);
            assert!(
                visited.len() > items,
                "cap {cap} × {items} items: the DFS explored a trivial space"
            );
        }
    }
}

/// The real ring under real threads: every capacity up to and beyond
/// the item count, strict FIFO of 10k items.
#[test]
fn real_ring_is_fifo_across_threads_for_many_capacities() {
    for cap in [1usize, 2, 3, 7, 64] {
        let (mut tx, mut rx) = ring::<u32>(cap);
        let n = 10_000u32;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.push(i);
            }
        });
        for i in 0..n {
            assert_eq!(rx.pop(), i, "cap {cap}: out-of-order delivery");
        }
        producer.join().unwrap();
    }
}

/// The coordinator/worker handoff shape from the epoch protocol:
/// batches larger than either ring's capacity flow command-ring down,
/// reply-ring up, with the consumer side draining in production order —
/// the deadlock-freedom argument of [`eqp::kahn::shard`] in miniature.
#[test]
fn command_reply_handoff_survives_backpressure_on_both_rings() {
    let (mut cmd_tx, mut cmd_rx) = ring::<u64>(4);
    let (mut rep_tx, mut rep_rx) = ring::<u64>(4);
    let batches = 200u64;
    let batch = 16u64; // 4× both capacities
    let worker = thread::spawn(move || {
        for _ in 0..batches {
            for _ in 0..batch {
                let v = cmd_rx.pop();
                rep_tx.push(v * 2);
            }
        }
    });
    let mut next = 0u64;
    for _ in 0..batches {
        let base = next;
        // scatter the whole batch, interleaving with reply drains the
        // way the coordinator commits results in plan order
        let mut sent = 0;
        let mut got = 0;
        while got < batch {
            if sent < batch {
                cmd_tx.push(base + sent);
                sent += 1;
            }
            while got < sent {
                match rep_rx.try_pop() {
                    Some(v) => {
                        assert_eq!(v, (base + got) * 2, "reply out of order");
                        got += 1;
                    }
                    None => break,
                }
            }
        }
        next += batch;
    }
    worker.join().unwrap();
}
