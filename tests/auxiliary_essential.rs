//! E19 — Section 8.2's claim, made computational: **auxiliary channels are
//! essential** — some processes cannot be described using their incident
//! channels alone. The paper's witness is the finite-ticks process
//! (Section 4.8): every finite `(d,T)ⁱ` is a trace but `(d,T)^ω` is not.
//!
//! We verify the claim for a *bounded grammar* of descriptions: every
//! description `f ⟸ g` whose two sides are drawn from a combinator
//! grammar over the single visible channel `d` (sizes ≤ 3, the full
//! vocabulary the paper uses on tick streams) fails to have the
//! finite-ticks trace set as its smooth solutions. The obstruction is the
//! one the paper alludes to: with `d` alone, accepting every `Tⁱ` forces
//! accepting the limit `T^ω` too (smooth solution sets over a single
//! channel are limit-closed for these equation shapes), so the fairness
//! constraint is inexpressible.

use eqp::core::smooth::{is_smooth, is_smooth_at_depth};
use eqp::core::Description;
use eqp::seqfn::{SeqExpr, ValueMap, ValuePred};
use eqp::trace::{Chan, Event, Lasso, Trace, Value};

const D: Chan = Chan::new(0);

/// All grammar expressions of size ≤ 3 over channel `d` and tick
/// constants: projections, the constants ε / ⟨T⟩ / T^ω, `T;·`, `R(·)`,
/// `TRUE(·)`, `takeWhile_T(·)`, `skip(1, ·)`.
fn grammar() -> Vec<SeqExpr> {
    let mut level0 = vec![
        SeqExpr::chan(D),
        SeqExpr::epsilon(),
        SeqExpr::constant(Lasso::finite(vec![Value::tt()])),
        SeqExpr::constant(Lasso::repeat(vec![Value::tt()])),
    ];
    let unary: Vec<Box<dyn Fn(SeqExpr) -> SeqExpr>> = vec![
        Box::new(|e| SeqExpr::concat([Value::tt()], e)),
        Box::new(|e| SeqExpr::Map(ValueMap::R, Box::new(e))),
        Box::new(|e| SeqExpr::Filter(ValuePred::IsTrue, Box::new(e))),
        Box::new(|e| SeqExpr::TakeWhile(ValuePred::IsTrue, Box::new(e))),
        Box::new(|e| SeqExpr::skip(1, e)),
    ];
    let mut level1: Vec<SeqExpr> = Vec::new();
    for f in &unary {
        for e in &level0 {
            level1.push(f(e.clone()));
        }
    }
    let mut level2: Vec<SeqExpr> = Vec::new();
    for f in &unary {
        for e in &level1 {
            level2.push(f(e.clone()));
        }
    }
    level0.extend(level1);
    level0.extend(level2);
    level0
}

fn tick_trace(n: usize) -> Trace {
    Trace::finite(vec![Event::bit(D, true); n])
}

fn omega_ticks() -> Trace {
    Trace::lasso([], [Event::bit(D, true)])
}

/// Does `desc` describe the finite-ticks process over `d` alone? It must
/// accept every `Tⁱ` (i ≤ 4 suffices to reject most candidates) and
/// reject `T^ω`.
fn describes_finite_ticks(desc: &Description) -> bool {
    (0..=4).all(|i| is_smooth_at_depth(desc, &tick_trace(i), 8)) && !is_smooth(desc, &omega_ticks())
}

#[test]
fn no_single_channel_description_of_finite_ticks() {
    let exprs = grammar();
    let mut candidates = 0usize;
    for lhs in &exprs {
        for rhs in &exprs {
            let desc = Description::new("cand").equation(lhs.clone(), rhs.clone());
            candidates += 1;
            assert!(
                !describes_finite_ticks(&desc),
                "grammar description found for finite ticks: {lhs} ⟸ {rhs}"
            );
        }
    }
    // make sure the search space was non-trivial
    assert!(candidates > 500, "searched only {candidates} candidates");
}

/// The obstruction in isolation: for every candidate that accepts all
/// finite tick sequences, the limit `T^ω` is accepted too.
#[test]
fn accepting_all_finite_ticks_forces_the_limit() {
    let exprs = grammar();
    let mut accept_all_finite = 0usize;
    for lhs in &exprs {
        for rhs in &exprs {
            let desc = Description::new("cand").equation(lhs.clone(), rhs.clone());
            if (0..=4).all(|i| is_smooth_at_depth(&desc, &tick_trace(i), 8)) {
                accept_all_finite += 1;
                assert!(
                    is_smooth(&desc, &omega_ticks()),
                    "counterexample to limit-closure: {lhs} ⟸ {rhs}"
                );
            }
        }
    }
    // CHAOS-like candidates (K ⟸ K) do accept all finite tick traces, so
    // the inner assertion is exercised.
    assert!(accept_all_finite > 0);
}

/// With the auxiliary channel admitted (Section 4.8's own description),
/// the process IS describable — the positive side of the claim.
#[test]
fn auxiliary_channel_makes_it_describable() {
    use eqp::processes::finite_ticks;
    let sys = finite_ticks::full_system().flatten();
    for n in 0..=4 {
        assert!(is_smooth(&sys, &finite_ticks::n_tick_trace(n)));
    }
    let all_ticks = Trace::lasso(
        [],
        [
            Event::bit(finite_ticks::C, true),
            Event::bit(finite_ticks::D, true),
        ],
    );
    assert!(!is_smooth(&sys, &all_ticks));
}
