//! The sharded-runtime differential suite: the epoch-commit multicore
//! runtime ([`eqp::kahn::shard`]) must be **observationally invisible** —
//! for every zoo network, every scheduler, and every shard count in
//! {1, 2, 4, 8}, the run report (trace, telemetry, counters, status),
//! the conformance verdict, and any captured checkpoint are
//! byte-identical. This is the generalized Kahn principle made a test
//! matrix: how work is partitioned across threads is just another
//! implementation detail the canonical event order erases.
//!
//! The companion model check lives in `tests/shard_model.rs`; the
//! unsharded-vs-sharded *verdict* agreement (any deterministic merge
//! certifies identically) is pinned here too.

use eqp::core::Description;
use eqp::kahn::conformance::{check_report, ConformanceOptions, Verdict};
use eqp::kahn::{
    procs, Adversarial, MonitorPolicy, Network, RandomSched, RoundRobin, RunOptions, Scheduler,
};
use eqp::processes::zoo::conformance_zoo;
use eqp::seqfn::paper::{ch, twice};
use eqp::seqfn::SeqExpr;
use eqp::trace::{Chan, Lasso, Value};

/// The shard counts every differential run is replicated across.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomSched::new(seed)),
        Box::new(Adversarial::new(seed ^ 0xABCD)),
    ]
}

/// Reports carry no `PartialEq` (floats in derived telemetry would make
/// it misleading); the byte-identity claim is exactly Debug-equality of
/// the full structure — every trace event, meter, and status.
fn rendered<T: std::fmt::Debug>(r: &T) -> String {
    format!("{r:?}")
}

/// The headline theorem: for every zoo entry × scheduler × seed, the
/// sharded run's full report and verdict are byte-identical across all
/// shard counts — partitioning the processes over 1, 2, 4, or 8 worker
/// threads changes nothing observable.
#[test]
fn zoo_sharded_byte_identical_across_shard_counts() {
    for entry in conformance_zoo() {
        for seed in [0u64, 7] {
            for kind in 0..schedulers(seed).len() {
                let mut base_sched = schedulers(seed).remove(kind);
                let (base_report, base_conf) = entry.certify_sharded(&mut *base_sched, seed, 1);
                assert!(
                    base_conf.is_conformant(),
                    "{} (seed {seed}, kind {kind}) sharded run must certify: {base_conf}",
                    entry.name
                );
                assert_eq!(
                    base_report.quiescent, entry.quiesces,
                    "{} (seed {seed}, kind {kind}): unexpected sharded run shape",
                    entry.name
                );
                let base_rendered = rendered(&base_report);
                for shards in &SHARD_COUNTS[1..] {
                    let mut sched = schedulers(seed).remove(kind);
                    let (report, conf) = entry.certify_sharded(&mut *sched, seed, *shards);
                    assert_eq!(
                        rendered(&report),
                        base_rendered,
                        "{} (seed {seed}, kind {kind}): report differs at {shards} shards",
                        entry.name
                    );
                    assert_eq!(
                        conf.verdict, base_conf.verdict,
                        "{} (seed {seed}, kind {kind}): verdict differs at {shards} shards",
                        entry.name
                    );
                }
            }
        }
    }
}

/// Any deterministic merge certifies identically (Abramsky's generalized
/// Kahn principle): the sharded runtime's verdict must agree with the
/// unsharded engine's on every entry, and for deterministic quiescing
/// networks the per-channel histories themselves must coincide — the
/// two runtimes are just two schedules of the same Kahn network.
#[test]
fn zoo_sharded_verdict_agrees_with_unsharded() {
    for entry in conformance_zoo() {
        let seed = 3u64;
        for kind in 0..schedulers(seed).len() {
            let mut plain_sched = schedulers(seed).remove(kind);
            let (plain, plain_conf) = entry.certify(&mut *plain_sched, seed);
            let mut sharded_sched = schedulers(seed).remove(kind);
            let (sharded, sharded_conf) = entry.certify_sharded(&mut *sharded_sched, seed, 2);
            assert_eq!(
                sharded_conf.verdict, plain_conf.verdict,
                "{} (kind {kind}): sharded verdict diverges from unsharded",
                entry.name
            );
            if entry.deterministic && entry.quiesces {
                for chan_report in &plain.channels {
                    let c = chan_report.chan;
                    assert_eq!(
                        sharded.trace.seq_on(c),
                        plain.trace.seq_on(c),
                        "{} (kind {kind}): deterministic history on {c:?} diverges",
                        entry.name
                    );
                }
            }
        }
    }
}

/// The online smoothness monitor rides the canonical committed order, so
/// a monitored sharded run must (a) reach the same verdict as a post-hoc
/// re-walk of the very same trace (the raw `check_report`, matching the
/// unsharded monitor-equivalence convention — the fork's completion hook
/// is a zoo-level amendment neither checker sees) and (b) leave the run
/// untouched — monitoring is pure observation at any shard count.
#[test]
fn zoo_sharded_monitor_agrees_with_posthoc() {
    for entry in conformance_zoo() {
        let seed = 5u64;
        for shards in [2usize, 4] {
            let mut bare_sched: Box<dyn Scheduler> = Box::new(RandomSched::new(seed));
            let (bare, _) = entry.certify_sharded(&mut *bare_sched, seed, shards);
            let mut mon_sched: Box<dyn Scheduler> = Box::new(RandomSched::new(seed));
            let (monitored, online) = entry.certify_sharded_monitored(
                &mut *mon_sched,
                seed,
                shards,
                MonitorPolicy::Observe,
            );
            assert_eq!(
                rendered(&monitored),
                rendered(&bare),
                "{} ({shards} shards): monitoring perturbed the run",
                entry.name
            );
            let posthoc = check_report(
                &entry.description(),
                &monitored,
                &ConformanceOptions::default(),
            );
            assert_eq!(
                online.verdict, posthoc.verdict,
                "{} ({shards} shards): online verdict diverges from post-hoc",
                entry.name
            );
        }
    }
}

/// Checkpoints taken mid-run by the sharded runtime are part of the
/// byte-identity contract: capturing at step `k` under 1, 2, 4, or 8
/// shards yields the same fingerprint (same queues, trace, RNG,
/// per-process state, scheduler state) and the same final report.
#[test]
fn sharded_checkpoint_fingerprint_identical_across_shard_counts() {
    let seed = 11u64;
    let mut exercised = 0usize;
    for entry in conformance_zoo() {
        let opts = RunOptions {
            max_steps: entry.max_steps,
            seed,
            ..RunOptions::default()
        };
        // Scout the run length so the capture point always lands mid-run
        // (fig1-plain legitimately makes zero steps: nothing to capture).
        let scout = entry
            .network(seed)
            .run_report_sharded(&mut RoundRobin::new(), opts.with_shards(1));
        if scout.steps < 2 {
            continue;
        }
        exercised += 1;
        let at_step = scout.steps / 2;
        let mut fingerprints = Vec::new();
        let mut reports = Vec::new();
        for shards in SHARD_COUNTS {
            let mut sched = RoundRobin::new();
            let mut net = entry.network(seed);
            let (report, ckpt) =
                net.run_report_sharded_checkpointed(&mut sched, opts.with_shards(shards), at_step);
            let ckpt =
                ckpt.unwrap_or_else(|| panic!("{}: no checkpoint at step {at_step}", entry.name));
            assert!(
                ckpt.steps() >= at_step,
                "{}: capture landed before its step",
                entry.name
            );
            fingerprints.push(ckpt.fingerprint());
            reports.push(rendered(&report));
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "{}: checkpoint fingerprints differ across shard counts: {fingerprints:?}",
            entry.name
        );
        assert!(
            reports.windows(2).all(|w| w[0] == w[1]),
            "{}: checkpointed reports differ across shard counts",
            entry.name
        );
    }
    assert!(
        exercised >= 10,
        "the fingerprint matrix must exercise most of the zoo, got {exercised}"
    );
}

/// Capture under one shard count, resume under another: a checkpoint
/// taken at 2 shards and resumed at 4 (on a freshly built network and
/// freshly built scheduler) must finish byte-identically to the
/// uninterrupted run — shard count is not part of the persisted state.
#[test]
fn sharded_checkpoint_resume_is_byte_identical_across_shard_counts() {
    let seed = 13u64;
    let mut exercised = 0usize;
    for entry in conformance_zoo() {
        let opts = RunOptions {
            max_steps: entry.max_steps,
            seed,
            ..RunOptions::default()
        };
        let mut full_sched = RoundRobin::new();
        let full = entry
            .network(seed)
            .run_report_sharded(&mut full_sched, opts.with_shards(2));
        if full.steps < 2 {
            continue;
        }
        let at_step = full.steps / 2;
        let mut cut_sched = RoundRobin::new();
        let (_, ckpt) = entry.network(seed).run_report_sharded_checkpointed(
            &mut cut_sched,
            opts.with_shards(2),
            at_step,
        );
        let ckpt = ckpt.expect("capture fired");
        if !ckpt.is_complete() {
            continue; // hookless process somewhere: not resumable, same skip as the unsharded suite
        }
        exercised += 1;
        for resume_shards in [1usize, 4] {
            let mut resume_sched = RoundRobin::new();
            let resumed = match entry.network(seed).resume_report_sharded(
                &ckpt,
                &mut resume_sched,
                opts.with_shards(resume_shards),
            ) {
                Ok(r) => r,
                Err(e) => panic!("{}: resume rejected: {e:?}", entry.name),
            };
            assert_eq!(
                rendered(&resumed),
                rendered(&full),
                "{}: resume at {resume_shards} shards diverges from full run",
                entry.name
            );
        }
    }
    assert!(
        exercised >= 8,
        "the resume matrix must exercise most of the zoo, got {exercised}"
    );
}

/// The telemetry-sketch differential, stated explicitly rather than via
/// report Debug-identity: for every zoo entry the merged sketch summary
/// (quantiles, heavy hitters, distinct count) and the serialized sketch
/// image itself are identical across shard counts {1, 2, 4, 8}. Worker
/// threads stage observations locally and the committer folds them in
/// plan order, so partitioning must not perturb a single bucket.
#[test]
fn zoo_sketch_summaries_identical_across_shard_counts() {
    let seed = 17u64;
    let mut with_sketches = 0usize;
    for entry in conformance_zoo() {
        let mut base_sched = schedulers(seed).remove(0);
        let (base_report, _) = entry.certify_sharded(&mut *base_sched, seed, 1);
        let base_image = base_report
            .sketches
            .as_ref()
            .map(eqp::kahn::TelemetrySketches::to_bytes);
        let base_stats = base_report.sketch_stats();
        if base_report.steps > 0 {
            let stats = base_stats
                .as_ref()
                .unwrap_or_else(|| panic!("{}: active run must carry sketches", entry.name));
            assert!(
                stats.events > 0,
                "{}: sketches must have observed the run",
                entry.name
            );
            with_sketches += 1;
        }
        for shards in &SHARD_COUNTS[1..] {
            let mut sched = schedulers(seed).remove(0);
            let (report, _) = entry.certify_sharded(&mut *sched, seed, *shards);
            assert_eq!(
                report
                    .sketches
                    .as_ref()
                    .map(eqp::kahn::TelemetrySketches::to_bytes),
                base_image,
                "{}: sketch image differs at {shards} shards",
                entry.name
            );
            assert_eq!(
                rendered(&report.sketch_stats()),
                rendered(&base_stats),
                "{}: sketch summary differs at {shards} shards",
                entry.name
            );
        }
    }
    assert!(
        with_sketches >= 10,
        "the sketch matrix must exercise most of the zoo, got {with_sketches}"
    );
}

/// A 220-channel wide network — 110 parallel source → doubler lanes —
/// certified end-to-end by the *online* monitor on the sharded runtime.
/// Channel ids run past 128, so the compiled support masks overflow and
/// the exact-`ChanSet` fallback (the satellite bugfix) carries the
/// monitor's channel bookkeeping; the run itself exercises wide-network
/// scatter/commit across every shard count.
#[test]
fn wide_network_sharded_monitored_certifies_identically() {
    const LANES: usize = 110;
    let build = || {
        let mut net = Network::new();
        for lane in 0..LANES {
            let (input, output) = (Chan::new(2 * lane as u32), Chan::new(2 * lane as u32 + 1));
            let feed: Vec<Value> = (1..=3).map(|v| Value::Int(v + lane as i64)).collect();
            net.add(procs::Source::new(format!("env-{lane}"), input, feed));
            net.add(procs::Apply::int_affine(
                format!("double-{lane}"),
                input,
                output,
                2,
                0,
            ));
        }
        net
    };
    let mut desc = Description::new("wide-lanes");
    for lane in 0..LANES {
        let (input, output) = (Chan::new(2 * lane as u32), Chan::new(2 * lane as u32 + 1));
        let feed: Vec<Value> = (1..=3).map(|v| Value::Int(v + lane as i64)).collect();
        desc = desc
            .defines(input, SeqExpr::constant(Lasso::finite(feed)))
            .defines(output, twice(ch(input)));
    }
    assert!(
        desc.channels().iter().max().map(|c| c.index()).unwrap_or(0) >= 200,
        "the wide network must spill past the 128-bit support mask"
    );

    let mut baseline: Option<String> = None;
    for shards in SHARD_COUNTS {
        let mut sched = RandomSched::new(21);
        let mut net = build();
        let opts = RunOptions {
            max_steps: 2000,
            seed: 21,
            ..RunOptions::default()
        }
        .with_shards(shards);
        let (report, conf) = net.run_report_sharded_monitored(&desc, &mut sched, opts);
        assert!(
            report.quiescent,
            "{shards} shards: wide network must quiesce"
        );
        assert_eq!(
            conf.verdict,
            Verdict::SmoothSolution,
            "{shards} shards: wide network must certify as a solution: {conf}"
        );
        let this = rendered(&report);
        match &baseline {
            None => baseline = Some(this),
            Some(b) => assert_eq!(&this, b, "{shards} shards: wide report diverges"),
        }
    }
}
