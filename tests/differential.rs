//! Differential testing of the two semantics: random deterministic
//! pipelines are built **twice** — as an operational network of workers
//! and as a Kahn equation system — and their per-channel histories must
//! coincide (Kahn's principle, Section 6, at property-test scale).

use eqp::core::kahn_eqs::{KahnSystem, SolveOptions};
use eqp::kahn::{procs, Network, RandomSched, RoundRobin, RunOptions};
use eqp::seqfn::paper::ch;
use eqp::seqfn::SeqExpr;
use eqp::trace::{Chan, Value};
use proptest::prelude::*;

/// One pipeline stage; each consumes the previous stage's channel.
#[derive(Debug, Clone)]
enum Stage {
    /// `out = a·in + b`.
    Affine(i64, i64),
    /// `out = prelude ; in`.
    Delay(Vec<i64>),
    /// Plain copy.
    Copy,
    /// `out = in + aux` pointwise, with a fresh source on the aux channel.
    AddSource(Vec<i64>),
}

fn stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-2i64..3, -2i64..3).prop_map(|(a, b)| Stage::Affine(a, b)),
        proptest::collection::vec(-3i64..4, 0..3).prop_map(Stage::Delay),
        Just(Stage::Copy),
        proptest::collection::vec(-3i64..4, 1..4).prop_map(Stage::AddSource),
    ]
}

/// Builds the operational network and the equation system side by side.
fn build(input: &[i64], stages: &[Stage]) -> (Network, KahnSystem, Chan) {
    let mut net = Network::new();
    let mut sys = KahnSystem::new();
    let mut next_chan = 0u32;
    let mut fresh = || {
        let c = Chan::new(next_chan);
        next_chan += 1;
        c
    };
    let c0 = fresh();
    net.add(procs::Source::new(
        "env",
        c0,
        input.iter().map(|&n| Value::Int(n)).collect::<Vec<_>>(),
    ));
    sys = sys.equation(c0, SeqExpr::const_ints(input.to_vec()));
    let mut cur = c0;
    for (i, s) in stages.iter().enumerate() {
        let out = fresh();
        match s {
            Stage::Affine(a, b) => {
                net.add(procs::Apply::int_affine(
                    format!("affine{i}"),
                    cur,
                    out,
                    *a,
                    *b,
                ));
                sys = sys.equation(out, SeqExpr::affine(*a, *b, ch(cur)));
            }
            Stage::Delay(prelude) => {
                net.add(procs::Delay::new(
                    format!("delay{i}"),
                    cur,
                    out,
                    prelude.iter().map(|&n| Value::Int(n)).collect::<Vec<_>>(),
                ));
                sys = sys.equation(
                    out,
                    SeqExpr::concat(prelude.iter().map(|&n| Value::Int(n)), ch(cur)),
                );
            }
            Stage::Copy => {
                net.add(procs::Copy::new(format!("copy{i}"), cur, out));
                sys = sys.equation(out, ch(cur));
            }
            Stage::AddSource(aux_vals) => {
                let aux = fresh();
                net.add(procs::Source::new(
                    format!("aux{i}"),
                    aux,
                    aux_vals.iter().map(|&n| Value::Int(n)).collect::<Vec<_>>(),
                ));
                net.add(procs::Zip2::add(format!("add{i}"), cur, aux, out));
                sys = sys
                    .equation(aux, SeqExpr::const_ints(aux_vals.to_vec()))
                    .equation(out, SeqExpr::add(ch(cur), ch(aux)));
            }
        }
        cur = out;
    }
    (net, sys, cur)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The operational quiescent history equals the least fixpoint on
    /// every channel, under two schedulers.
    #[test]
    fn operational_equals_denotational(
        input in proptest::collection::vec(-4i64..5, 0..5),
        stages in proptest::collection::vec(stage(), 1..5),
        seed in 0u64..100,
    ) {
        let (mut net, sys, _last) = build(&input, &stages);
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        prop_assert!(run.quiescent, "deterministic finite network must quiesce");
        let sol = sys.solve(SolveOptions::default()).expect("finite system stabilizes");
        prop_assert!(sol.stabilized);
        for (chan, seq) in sys.vars().iter().zip(&sol.seqs) {
            prop_assert_eq!(
                &run.trace.seq_on(*chan),
                seq,
                "channel {} differs (round-robin)",
                chan
            );
        }
        // Kahn determinism: same histories under a random scheduler.
        let (mut net2, _, _) = build(&input, &stages);
        let run2 = net2.run(&mut RandomSched::new(seed), RunOptions::default());
        prop_assert!(run2.quiescent);
        for chan in sys.vars() {
            prop_assert_eq!(
                run.trace.seq_on(*chan),
                run2.trace.seq_on(*chan),
                "scheduler dependence on channel {}",
                chan
            );
        }
    }

    /// The least fixpoint is the unique smooth solution of the system's
    /// description (Theorem 4, at random-network scale) — checked via the
    /// canonical interleaving of the solution.
    #[test]
    fn lfp_is_smooth_for_random_networks(
        input in proptest::collection::vec(-4i64..5, 0..4),
        stages in proptest::collection::vec(stage(), 1..4),
    ) {
        let (_net, sys, _last) = build(&input, &stages);
        let sol = sys.solve(SolveOptions::default()).expect("stabilizes");
        // Build the causally-correct interleaving: stage order is the
        // topological order, so emit per-position round-robin across
        // channels in definition order.
        let seqs = &sol.seqs;
        let max_len = seqs
            .iter()
            .map(|s| s.len().as_finite().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let mut events = Vec::new();
        for pos in 0..max_len {
            for (chan, seq) in sys.vars().iter().zip(seqs) {
                if let Some(v) = seq.get(pos) {
                    events.push(eqp::trace::Event::new(*chan, *v));
                }
            }
        }
        let t = eqp::trace::Trace::finite(events);
        let desc = sys.to_description("random-net");
        prop_assert!(
            eqp::core::smooth::is_smooth(&desc, &t),
            "lfp interleaving not smooth for {}",
            desc
        );
    }
}
