//! The experiment index E1–E12 of DESIGN.md, pinned as one assertion per
//! headline claim of the paper — the executable summary that
//! EXPERIMENTS.md reports from.

use eqp::core::kahn_eqs::SolveOptions;
use eqp::core::smooth::{is_smooth, limit_holds, smoothness_holds, smoothness_violation};
use eqp::core::{enumerate, Alphabet, EnumOptions};
use eqp::kahn::{Oracle, RoundRobin, RunOptions};
use eqp::processes::*;
use eqp::trace::{Event, Lasso, Trace, Value};

/// E1 — Figure 1: plain loop has lfp (ε, ε); seeded loop has lfp 0^ω.
#[test]
fn e1_figure1_copy_networks() {
    let plain = copy::plain_system().solve(SolveOptions::default()).unwrap();
    assert_eq!(plain.seqs, vec![Lasso::empty(), Lasso::empty()]);
    let seeded = copy::seeded_system()
        .solve(SolveOptions::default())
        .unwrap();
    let zw = Lasso::repeat(vec![Value::Int(0)]);
    assert_eq!(seeded.seqs, vec![zw.clone(), zw]);
    assert!(
        !seeded.stabilized,
        "0^ω must come from verified extrapolation"
    );
}

/// E2 — Figure 2: dfm's quiescent traces from Section 3.1.1 are exactly
/// classified.
#[test]
fn e2_dfm_quiescence_classification() {
    let d = dfm::dfm_description();
    let quiescent = [
        Trace::empty(),
        Trace::finite(vec![Event::int(dfm::B, 0), Event::int(dfm::D, 0)]),
        Trace::finite(vec![
            Event::int(dfm::B, 0),
            Event::int(dfm::C, 1),
            Event::int(dfm::C, 3),
            Event::int(dfm::D, 1),
            Event::int(dfm::D, 3),
            Event::int(dfm::D, 0),
        ]),
    ];
    for t in &quiescent {
        assert!(is_smooth(&d, t), "expected quiescent: {t}");
    }
    let non_quiescent = [
        Trace::finite(vec![Event::int(dfm::B, 0)]),
        Trace::finite(vec![
            Event::int(dfm::B, 0),
            Event::int(dfm::D, 0),
            Event::int(dfm::C, 1),
        ]),
    ];
    for t in &non_quiescent {
        assert!(!is_smooth(&d, t), "expected non-quiescent: {t}");
    }
    // the infinite (b,0)(d,0) repetition is a quiescent trace:
    let w = Trace::lasso([], [Event::int(dfm::B, 0), Event::int(dfm::D, 0)]);
    assert!(is_smooth(&d, &w));
}

/// E3 — Figure 3: x, y smooth paths; z a solution-shaped sequence failing
/// smoothness at its first element.
#[test]
fn e3_section23_xyz() {
    let desc = dfm::section23_description();
    for seq in [dfm::x_prefix(5), dfm::y_prefix(5)] {
        assert!(smoothness_holds(&desc, &dfm::d_trace(&seq), seq.len()));
    }
    let z = dfm::z_prefix(4);
    let (u, v) = smoothness_violation(&desc, &dfm::d_trace(&z), 8).unwrap();
    assert!(u.is_empty());
    assert_eq!(v.seq_on(dfm::D).take(1), vec![Value::Int(-1)]);
}

/// E4 — Figure 4: Brock–Ackermann — two solutions, one smooth.
#[test]
fn e4_brock_ackermann() {
    let desc = brock_ackermann::eliminated_description();
    assert!(limit_holds(&desc, &brock_ackermann::genuine_trace()));
    assert!(limit_holds(&desc, &brock_ackermann::anomalous_trace()));
    assert!(is_smooth(&desc, &brock_ackermann::genuine_trace()));
    assert!(!is_smooth(&desc, &brock_ackermann::anomalous_trace()));
}

/// E5 — CHAOS: every trace smooth.
#[test]
fn e5_chaos() {
    let d = chaos::description();
    assert!(is_smooth(&d, &Trace::empty()));
    assert!(is_smooth(
        &d,
        &Trace::lasso([], [Event::int(chaos::B, 1), Event::int(chaos::B, 9)])
    ));
}

/// E6 — Ticks: unique smooth solution (b,T)^ω.
#[test]
fn e6_ticks() {
    assert!(is_smooth(&ticks::description(), &ticks::omega_trace()));
    let alpha = Alphabet::new().with_chan(ticks::B, [Value::tt()]);
    let e = enumerate(
        &ticks::description(),
        &alpha,
        EnumOptions {
            max_depth: 6,
            max_nodes: 1000,
        },
    );
    assert!(e.solutions.is_empty(), "no finite solutions");
    assert_eq!(e.frontier.len(), 1, "single infinite path");
}

/// E7/E8 — Random Bit (exactly {T, F}) and Random Bit Sequence.
#[test]
fn e7_e8_random_bits() {
    let alpha = Alphabet::new().with_bits(random_bit::B);
    let e = enumerate(
        &random_bit::bit_description(),
        &alpha,
        EnumOptions {
            max_depth: 3,
            max_nodes: 1000,
        },
    );
    assert_eq!(e.solutions.len(), 2);
    let seq = random_bit::sequence_description();
    let ok = Trace::finite(vec![
        Event::bit(random_bit::C, true),
        Event::bit(random_bit::B, false),
    ]);
    assert!(is_smooth(&seq, &ok));
}

/// E9 — Implication (Figure 5): the four visible quiescent traces.
#[test]
fn e9_implication() {
    let e = enumerate(
        &implication::description(),
        &Alphabet::new()
            .with_bits(implication::B)
            .with_bits(implication::C)
            .with_bits(implication::D),
        EnumOptions {
            max_depth: 3,
            max_nodes: 200_000,
        },
    );
    let projected = e.solutions_projected(&implication::visible_channels());
    let expect = [
        Trace::empty(),
        Trace::finite(vec![
            Event::bit(implication::C, true),
            Event::bit(implication::D, true),
        ]),
        Trace::finite(vec![
            Event::bit(implication::C, true),
            Event::bit(implication::D, false),
        ]),
        Trace::finite(vec![
            Event::bit(implication::C, false),
            Event::bit(implication::D, false),
        ]),
    ];
    for t in &expect {
        assert!(projected.contains(t));
    }
    assert!(!projected.contains(&Trace::finite(vec![
        Event::bit(implication::C, false),
        Event::bit(implication::D, true),
    ])));
}

/// E10 — Fork (Figure 6): routing follows the oracle.
#[test]
fn e10_fork() {
    let t = Trace::finite(vec![
        Event::int(fork::C, 1),
        Event::bit(fork::B, false),
        Event::int(fork::E, 1),
    ]);
    assert!(is_smooth(&fork::description(), &t));
    let wrong = Trace::finite(vec![
        Event::int(fork::C, 1),
        Event::bit(fork::B, false),
        Event::int(fork::D, 1),
    ]);
    assert!(!is_smooth(&fork::description(), &wrong));
}

/// E11 — Fair random / finite ticks / random number: fairness lives in
/// the limit condition.
#[test]
fn e11_fairness_family() {
    // fair random: (T F)^ω accepted, T^ω rejected.
    let fr = fair_random::description();
    assert!(is_smooth(&fr, &fair_random::fair_trace(&[true, false])));
    assert!(!limit_holds(&fr, &fair_random::fair_trace(&[true])));
    // finite ticks: every n has a trace; the infinite tick stream fails.
    let ft = finite_ticks::full_system().flatten();
    assert!(is_smooth(&ft, &finite_ticks::n_tick_trace(3)));
    let all_ticks = Trace::lasso(
        [],
        [
            Event::bit(finite_ticks::C, true),
            Event::bit(finite_ticks::D, true),
        ],
    );
    assert!(!limit_holds(&ft, &all_ticks));
    // random number: every natural expressible.
    let rn = random_number::full_system().flatten();
    for n in 0..4 {
        assert!(is_smooth(&rn, &random_number::n_trace(n)));
    }
}

/// E12 — Fair merge (Figure 7): mechanical elimination matches the paper
/// and operational merges are fair interleavings.
#[test]
fn e12_fair_merge() {
    let got = fair_merge::eliminated_system();
    let expect = fair_merge::expected_eliminated();
    for ((_, e), g) in expect.iter().zip(got.descriptions()) {
        assert_eq!(e.lhs(), g.lhs());
        assert_eq!(e.rhs(), g.rhs());
    }
    let mut net = fair_merge::network(&[2, 4], &[1, 3], Oracle::fair(1, 2));
    let run = net.run(
        &mut RoundRobin::new(),
        RunOptions {
            max_steps: 200,
            seed: 1,
            ..RunOptions::default()
        },
    );
    assert!(run.quiescent);
    assert_eq!(run.trace.seq_on(fair_merge::E).take(8).len(), 4);
}
