//! A consolidated zoo sweep: for every process description in the zoo, pin
//! the structural invariants a reader would check first — arity, channel
//! support, Theorem 1 independence, and the classification of the empty
//! trace. A regression in any module's description shape fails here with
//! the process named.

use eqp::core::smooth::is_smooth;
use eqp::core::Description;
use eqp::processes::*;
use eqp::trace::Trace;

struct Row {
    name: &'static str,
    desc: Description,
    arity: usize,
    independent: bool,
    /// Is ⊥ (the empty trace) a quiescent trace of this description?
    bottom_quiescent: bool,
}

fn zoo() -> Vec<Row> {
    vec![
        Row {
            name: "copy/plain",
            desc: copy::plain_system().to_description("fig1-plain"),
            arity: 2,
            independent: false, // b and c appear on both sides across the tuple
            bottom_quiescent: true,
        },
        Row {
            name: "copy/seeded",
            desc: copy::seeded_description(),
            arity: 2,
            independent: false,
            bottom_quiescent: false, // owes the unprompted 0
        },
        Row {
            name: "dfm",
            desc: dfm::dfm_description(),
            arity: 2,
            independent: true,
            bottom_quiescent: true,
        },
        Row {
            name: "section23 (eliminated)",
            desc: dfm::section23_description(),
            arity: 2,
            independent: false,      // d on both sides
            bottom_quiescent: false, // even(ε) = ε ≠ 0; 2×ε
        },
        Row {
            name: "brock-ackermann (eliminated)",
            desc: brock_ackermann::eliminated_description(),
            arity: 2,
            independent: false,
            bottom_quiescent: false, // even(ε) ≠ ⟨0 2⟩
        },
        Row {
            name: "chaos",
            desc: chaos::description(),
            arity: 1,
            independent: true, // both sides constant: empty supports
            bottom_quiescent: true,
        },
        Row {
            name: "ticks",
            desc: ticks::description(),
            arity: 1,
            independent: false, // b ⟸ T; b
            bottom_quiescent: false,
        },
        Row {
            name: "random-bit",
            desc: random_bit::bit_description(),
            arity: 1,
            independent: true,
            bottom_quiescent: false, // must output one bit
        },
        Row {
            name: "random-bit-sequence",
            desc: random_bit::sequence_description(),
            arity: 1,
            independent: true,
            bottom_quiescent: true, // no ticks yet, nothing owed
        },
        Row {
            name: "implication",
            desc: implication::description(),
            arity: 2,
            independent: false,      // auxiliary b read by both equations' sides
            bottom_quiescent: false, // the R(b) ⟸ T̄ equation owes a bit
        },
        Row {
            name: "fork",
            desc: fork::description(),
            arity: 2,
            independent: true,
            bottom_quiescent: true,
        },
        Row {
            name: "fair-random",
            desc: fair_random::description(),
            arity: 2,
            independent: true,
            bottom_quiescent: false, // TRUE(ε) = ε ≠ trues
        },
        Row {
            name: "finite-ticks (full)",
            desc: finite_ticks::full_system().flatten(),
            arity: 3,
            independent: false, // the auxiliary c is read on both sides
            bottom_quiescent: false,
        },
        Row {
            name: "random-number (full)",
            desc: random_number::full_system().flatten(),
            arity: 3,
            independent: false, // the auxiliary c is read on both sides
            bottom_quiescent: false,
        },
        Row {
            name: "fair-merge (eliminated)",
            desc: fair_merge::eliminated_system().flatten(),
            arity: 3,
            independent: false, // the merged stream b is read on both sides
            bottom_quiescent: true,
        },
        Row {
            name: "bag (0..=3)",
            desc: bag::specification(0, 3),
            arity: 4,
            independent: true,
            bottom_quiescent: true,
        },
        Row {
            name: "nats feedback",
            desc: feedback::nats_system().to_description("nats"),
            arity: 1,
            independent: false,
            bottom_quiescent: false,
        },
    ]
}

#[test]
fn zoo_structural_invariants() {
    for row in zoo() {
        assert_eq!(row.desc.arity(), row.arity, "{}: arity changed", row.name);
        assert_eq!(
            row.desc.is_independent(),
            row.independent,
            "{}: independence flag changed",
            row.name
        );
        assert_eq!(
            is_smooth(&row.desc, &Trace::empty()),
            row.bottom_quiescent,
            "{}: ⊥-quiescence classification changed",
            row.name
        );
    }
}

/// Every zoo description's sides evaluate without panicking on ⊥ and on a
/// junk trace mentioning a foreign channel (total evaluation).
#[test]
fn zoo_total_evaluation() {
    use eqp::trace::{Chan, Event};
    let junk = Trace::finite(vec![Event::int(Chan::new(250), 99)]);
    for row in zoo() {
        let _ = row.desc.eval_lhs(&Trace::empty());
        let _ = row.desc.eval_rhs(&Trace::empty());
        let _ = row.desc.eval_lhs(&junk);
        let _ = row.desc.eval_rhs(&junk);
    }
}

/// Channel supports stay within each module's declared block (the crate's
/// 8-wide channel numbering convention prevents accidental collisions
/// when composing across modules).
#[test]
fn zoo_channel_blocks_disjoint() {
    let modules: Vec<(&str, Vec<eqp::trace::Chan>)> = zoo()
        .iter()
        .map(|r| (r.name, r.desc.channels().iter().collect::<Vec<_>>()))
        .collect();
    // dfm-family and copy-family intentionally share within themselves;
    // check that distinct module families never overlap.
    fn family(name: &str) -> &str {
        if name.starts_with("copy") {
            "copy"
        } else if name.contains("section23") || name == "dfm" {
            "dfm"
        } else if name.contains("brock") {
            "ba"
        } else if name.starts_with("random-bit") {
            "random-bit"
        } else {
            name
        }
    }
    for (i, (n1, c1)) in modules.iter().enumerate() {
        for (n2, c2) in modules.iter().skip(i + 1) {
            if family(n1) == family(n2) {
                continue;
            }
            for ch in c1 {
                assert!(
                    !c2.contains(ch),
                    "channel {ch} shared between `{n1}` and `{n2}`"
                );
            }
        }
    }
}
