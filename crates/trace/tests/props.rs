//! Property tests: lasso normal form is semantic equality; prefix order
//! laws; Facts F2–F5 on random finite and eventually periodic traces.

use eqp_trace::facts::{check_f2_prefix_chain, check_f3_projection_continuous, check_f4, check_f5};
use eqp_trace::{Chan, ChanSet, Event, Lasso, Trace, Value};
use proptest::prelude::*;

const CMP_DEPTH: usize = 64;

fn small_val() -> impl Strategy<Value = u8> {
    0u8..4
}

/// An arbitrary lasso over a tiny alphabet: possibly-empty prefix and cycle.
fn lasso() -> impl Strategy<Value = Lasso<u8>> {
    (
        proptest::collection::vec(small_val(), 0..6),
        proptest::collection::vec(small_val(), 0..5),
    )
        .prop_map(|(p, c)| Lasso::lasso(p, c))
}

/// An arbitrary raw (pre-normalization) representation, kept so we can test
/// that differently-shaped representations of the same word normalize equal.
fn raw_parts() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(small_val(), 0..5),
        proptest::collection::vec(small_val(), 1..4),
    )
}

fn word(l: &Lasso<u8>, n: usize) -> Vec<u8> {
    l.take(n)
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    let ev = (0u32..3, -3i64..4).prop_map(|(c, n)| Event::int(Chan::new(c), n));
    (
        proptest::collection::vec(ev.clone(), 0..6),
        proptest::collection::vec(ev, 0..4),
    )
        .prop_map(|(p, c)| Trace::lasso(p, c))
}

fn arb_chanset() -> impl Strategy<Value = ChanSet> {
    proptest::collection::btree_set(0u32..3, 0..3)
        .prop_map(|s| s.into_iter().map(Chan::new).collect())
}

proptest! {
    /// Unrolling a lasso by any number of cycle copies leaves the denoted
    /// word — and hence the normal form — unchanged.
    #[test]
    fn normal_form_invariant_under_unrolling(
        (p, c) in raw_parts(), k in 0usize..4
    ) {
        let base = Lasso::lasso(p.clone(), c.clone());
        let mut unrolled_prefix = p;
        for _ in 0..k {
            unrolled_prefix.extend(c.iter().copied());
        }
        let unrolled = Lasso::lasso(unrolled_prefix, c.clone());
        prop_assert_eq!(&base, &unrolled);
    }

    /// Repeating the cycle description (c → cc) does not change the word.
    #[test]
    fn normal_form_invariant_under_cycle_doubling((p, c) in raw_parts()) {
        let once = Lasso::lasso(p.clone(), c.clone());
        let mut cc = c.clone();
        cc.extend(c.iter().copied());
        let twice = Lasso::lasso(p, cc);
        prop_assert_eq!(once, twice);
    }

    /// Equal normal forms ⇒ equal words; unequal ⇒ words differ within a
    /// bounded window (prefixes + lcm of cycles suffices; we use a margin).
    #[test]
    fn eq_coincides_with_word_equality(a in lasso(), b in lasso()) {
        let wa = word(&a, CMP_DEPTH);
        let wb = word(&b, CMP_DEPTH);
        if a == b {
            prop_assert_eq!(wa, wb);
        } else {
            // Distinct normal forms must differ as words: either in the
            // first CMP_DEPTH letters, or by one being finite.
            let differs = wa != wb || a.len() != b.len();
            prop_assert!(differs, "distinct lassos {a:?} vs {b:?} look equal");
        }
    }

    /// leq is a partial order compatible with word-prefix semantics.
    #[test]
    fn leq_matches_word_prefix(a in lasso(), b in lasso()) {
        let wa = word(&a, CMP_DEPTH);
        let wb = word(&b, CMP_DEPTH);
        let word_prefix = match (a.len().as_finite(), b.len().as_finite()) {
            (Some(_), _) => wb.len() >= wa.len() && wb[..wa.len().min(wb.len())] == wa[..],
            (None, None) => a == b,
            (None, Some(_)) => false,
        };
        prop_assert_eq!(a.leq(&b), word_prefix);
    }

    /// map/filter/zip agree with their word-level counterparts on a window.
    #[test]
    fn map_agrees_with_word(l in lasso()) {
        let mapped = l.map(|x| x.wrapping_mul(2));
        let expect: Vec<u8> = word(&l, CMP_DEPTH).iter().map(|x| x.wrapping_mul(2)).collect();
        prop_assert_eq!(word(&mapped, CMP_DEPTH), expect);
    }

    #[test]
    fn filter_agrees_with_word(l in lasso()) {
        let f = l.filter(|x| x % 2 == 0);
        let lw = word(&l, 4 * CMP_DEPTH);
        let expect: Vec<u8> = lw.iter().copied().filter(|x| x % 2 == 0).collect();
        let got = word(&f, 4 * CMP_DEPTH);
        let n = got.len().min(expect.len()).min(CMP_DEPTH);
        prop_assert_eq!(&got[..n], &expect[..n]);
        // finiteness must agree: filter is finite iff the cycle has no match
        let cycle_has_match = l.cycle().iter().any(|x| x % 2 == 0);
        prop_assert_eq!(f.is_infinite(), cycle_has_match);
    }

    #[test]
    fn zip_agrees_with_word(a in lasso(), b in lasso()) {
        let z = a.zip_with(&b, |x, y| x.wrapping_add(*y));
        let wa = word(&a, CMP_DEPTH);
        let wb = word(&b, CMP_DEPTH);
        let expect: Vec<u8> = wa.iter().zip(&wb).map(|(x, y)| x.wrapping_add(*y)).collect();
        let got = word(&z, CMP_DEPTH);
        let n = got.len().min(expect.len());
        prop_assert_eq!(&got[..n], &expect[..n]);
        // length = min of lengths
        match (a.len().as_finite(), b.len().as_finite()) {
            (None, None) => prop_assert!(z.is_infinite()),
            _ => prop_assert!(z.is_finite()),
        }
    }

    #[test]
    fn take_while_agrees_with_word(l in lasso()) {
        let t = l.take_while(|x| x % 2 == 0);
        let lw = word(&l, CMP_DEPTH);
        let expect: Vec<u8> = lw.iter().copied().take_while(|x| x % 2 == 0).collect();
        if t.is_finite() && (t.len().as_finite().unwrap() < CMP_DEPTH) {
            prop_assert_eq!(word(&t, CMP_DEPTH), expect);
        } else {
            // whole (infinite) sequence passes: expect covers the window
            prop_assert_eq!(word(&t, CMP_DEPTH), lw);
        }
    }

    #[test]
    fn drop_front_agrees_with_word(l in lasso(), n in 0usize..12) {
        let d = l.drop_front(n);
        let lw = word(&l, CMP_DEPTH + n);
        let expect: Vec<u8> = lw.into_iter().skip(n).collect();
        let got = word(&d, CMP_DEPTH);
        let k = got.len().min(expect.len());
        prop_assert_eq!(&got[..k], &expect[..k]);
    }

    /// Facts F2–F5 hold on random (finite and lasso) traces.
    #[test]
    fn facts_hold(t in arb_trace(), l in arb_chanset()) {
        prop_assert!(check_f2_prefix_chain(&t, 12));
        prop_assert!(check_f3_projection_continuous(&t, &l, 12));
        prop_assert!(check_f4(&t, &l, 12));
        prop_assert!(check_f5(&t, &l, 8));
    }

    /// Projection is idempotent and shrinks channel support.
    #[test]
    fn projection_idempotent(t in arb_trace(), l in arb_chanset()) {
        let p = t.project(&l);
        prop_assert_eq!(p.project(&l), p.clone());
        prop_assert!(p.channels().is_subset(&l));
    }

    /// seq_on(c) equals projecting on {c} then dropping channel tags.
    #[test]
    fn seq_on_is_single_channel_projection(t in arb_trace(), c in 0u32..3) {
        let ch = Chan::new(c);
        let via_proj = t
            .project(&ChanSet::from_chans([ch]))
            .as_lasso()
            .map(|e| e.value);
        prop_assert_eq!(t.seq_on(ch), via_proj);
    }

    /// Values survive a display/shape sanity pass (no panics on any value).
    #[test]
    fn value_display_total(n in -100i64..100) {
        let _ = Value::Int(n).to_string();
        let _ = Value::Pair(1, n).to_string();
    }
}
