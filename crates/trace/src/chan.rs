//! Channel identifiers and channel sets.

use std::fmt;

/// A channel identifier.
///
/// The paper fixes a set *channels*; we identify channels by small integers
/// and let networks attach human-readable names where useful. `Chan` is
/// deliberately a cheap `Copy` key so traces and channel sets stay compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Chan(u32);

impl Chan {
    /// Creates the channel with index `id`.
    pub const fn new(id: u32) -> Chan {
        Chan(id)
    }

    /// The underlying index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Chan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u32> for Chan {
    fn from(id: u32) -> Self {
        Chan(id)
    }
}

/// A finite set of channels — the *incident channels* of a process, or the
/// subset `L` a trace is projected on.
///
/// Backed by a sorted, deduplicated `Vec`: channel sets are tiny (a
/// handful of entries) and live on hot paths — event projection filters
/// and engine/monitor support tests — where a contiguous probe beats a
/// `BTreeSet`'s pointer chasing. Mutation is O(n), which the construction
/// paths (all cold) happily pay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanSet {
    /// Sorted ascending, no duplicates.
    chans: Vec<Chan>,
}

impl ChanSet {
    /// The empty channel set.
    pub fn new() -> ChanSet {
        ChanSet::default()
    }

    /// Builds a channel set from the given channels.
    pub fn from_chans<I: IntoIterator<Item = Chan>>(chans: I) -> ChanSet {
        let mut chans: Vec<Chan> = chans.into_iter().collect();
        chans.sort_unstable();
        chans.dedup();
        ChanSet { chans }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: Chan) -> bool {
        // Tiny sorted slices: a linear scan with early exit beats binary
        // search's branch mispredictions.
        for &k in &self.chans {
            if k >= c {
                return k == c;
            }
        }
        false
    }

    /// Adds a channel; returns `true` if it was new.
    pub fn insert(&mut self, c: Chan) -> bool {
        match self.chans.binary_search(&c) {
            Ok(_) => false,
            Err(i) => {
                self.chans.insert(i, c);
                true
            }
        }
    }

    /// Removes a channel; returns `true` if it was present.
    pub fn remove(&mut self, c: Chan) -> bool {
        match self.chans.binary_search(&c) {
            Ok(i) => {
                self.chans.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of channels in the set.
    pub fn len(&self) -> usize {
        self.chans.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.chans.is_empty()
    }

    /// Iterates the channels in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = Chan> + '_ {
        self.chans.iter().copied()
    }

    /// Set union — the incident channels of a network are the union of the
    /// incident channels of its components (Section 3.1.2).
    pub fn union(&self, other: &ChanSet) -> ChanSet {
        let mut out = self.clone();
        out.extend(other.iter());
        out
    }

    /// Set difference: channels in `self` but not `other` — used by
    /// variable elimination (`c` is *channels* minus the eliminated `b`,
    /// Section 7).
    pub fn difference(&self, other: &ChanSet) -> ChanSet {
        ChanSet {
            chans: self.iter().filter(|&c| !other.contains(c)).collect(),
        }
    }

    /// True iff the two sets share no channel — the *independence* premise
    /// of Theorem 1 requires disjoint supports.
    pub fn is_disjoint(&self, other: &ChanSet) -> bool {
        self.iter().all(|c| !other.contains(c))
    }

    /// True iff every channel of `self` is in `other`.
    pub fn is_subset(&self, other: &ChanSet) -> bool {
        self.iter().all(|c| other.contains(c))
    }
}

impl FromIterator<Chan> for ChanSet {
    fn from_iter<I: IntoIterator<Item = Chan>>(iter: I) -> Self {
        ChanSet::from_chans(iter)
    }
}

impl Extend<Chan> for ChanSet {
    fn extend<I: IntoIterator<Item = Chan>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for ChanSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[u32]) -> ChanSet {
        ids.iter().map(|&i| Chan::new(i)).collect()
    }

    #[test]
    fn membership_and_len() {
        let s = cs(&[0, 2, 5]);
        assert!(s.contains(Chan::new(2)));
        assert!(!s.contains(Chan::new(1)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(ChanSet::new().is_empty());
    }

    #[test]
    fn union_difference_disjoint() {
        let a = cs(&[0, 1]);
        let b = cs(&[1, 2]);
        assert_eq!(a.union(&b), cs(&[0, 1, 2]));
        assert_eq!(a.difference(&b), cs(&[0]));
        assert!(!a.is_disjoint(&b));
        assert!(cs(&[0]).is_disjoint(&cs(&[1])));
        assert!(cs(&[0]).is_subset(&cs(&[0, 1])));
        assert!(!cs(&[0, 2]).is_subset(&cs(&[0, 1])));
    }

    #[test]
    fn insert_remove() {
        let mut s = ChanSet::new();
        assert!(s.insert(Chan::new(3)));
        assert!(!s.insert(Chan::new(3)));
        assert!(s.remove(Chan::new(3)));
        assert!(!s.remove(Chan::new(3)));
    }

    #[test]
    fn display() {
        assert_eq!(cs(&[1, 0]).to_string(), "{ch0, ch1}");
        assert_eq!(Chan::new(7).to_string(), "ch7");
        assert_eq!(Chan::from(4u32).index(), 4);
    }
}
