//! Executable statements of the paper's facts about traces and projections
//! (Section 3.1.3).
//!
//! Each fact is implemented as a *checker* that searches for a
//! counterexample on concrete data; property tests across the workspace
//! call these with random traces. Facts F1 (traces form a cpo) is covered
//! by the law tests on [`crate::TraceDomain`]; F2 and F3 have direct
//! checkers here; F4 and F5 — the projection/pre interplay that the
//! composition theorem's proof leans on — come with witness-producing
//! functions.

use crate::chan::ChanSet;
use crate::lasso::Length;
use crate::trace::Trace;

/// **F2**: the finite prefixes of a trace form a chain whose lub is the
/// trace. Checks chain-ness up to `n` and, for finite traces, that the last
/// prefix is the trace itself.
pub fn check_f2_prefix_chain(t: &Trace, n: usize) -> bool {
    let prefixes: Vec<Trace> = t.prefixes_up_to(n).collect();
    let ascending = prefixes.windows(2).all(|w| w[0].leq(&w[1]));
    let all_below = prefixes.iter().all(|p| p.leq(t));
    let reaches = if t.is_finite() {
        prefixes.last() == Some(t) || prefixes.len() == n + 1
    } else {
        true
    };
    ascending && all_below && reaches
}

/// **F3**: projection is continuous — monotone (`u ⊑ v ⇒ u_L ⊑ v_L`) and
/// lub-preserving on the prefix chain (`(lub prefixes)_L = lub (prefixes_L)`
/// up to depth `n`). Returns `false` on any violation.
pub fn check_f3_projection_continuous(t: &Trace, l: &ChanSet, n: usize) -> bool {
    let prefixes: Vec<Trace> = t.prefixes_up_to(n).collect();
    // monotone on consecutive prefixes (suffices on a chain)
    let monotone = prefixes
        .windows(2)
        .all(|w| w[0].project(l).leq(&w[1].project(l)));
    // the projections of prefixes stay below the projection of t
    let bounded = prefixes.iter().all(|p| p.project(l).leq(&t.project(l)));
    // for finite t: the chain of projections reaches the projection of t
    let reaches = if t.is_finite() && prefixes.last() == Some(t) {
        prefixes.last().map(|p| p.project(l)) == Some(t.project(l))
    } else {
        true
    };
    monotone && bounded && reaches
}

/// **F4**: for `u pre v in t` and channel set `L` (the incident channels of
/// a process `i`), either `u_L = v_L` or `u_L pre v_L in t_L`. Returns
/// `false` on a violating pair within the first `n` prefixes.
pub fn check_f4(t: &Trace, l: &ChanSet, n: usize) -> bool {
    t.pre_pairs_up_to(n).all(|(u, v)| {
        let (ul, vl) = (u.project(l), v.project(l));
        if ul == vl {
            return true;
        }
        // u_L pre v_L: lengths differ by one, u_L is a prefix of v_L, and
        // both are prefixes of t_L.
        let lu = ul.events().map(<[_]>::len);
        let lv = vl.events().map(<[_]>::len);
        matches!((lu, lv), (Some(a), Some(b)) if a + 1 == b) && ul.leq(&vl) && vl.leq(&t.project(l))
    })
}

/// **F5**: for `x pre y in t_L` there exist `u pre v in t` with `u_L = x`
/// and `v_L = y`. Returns the witnessing pair `(u, v)`, or `None` if no
/// witness exists within the first `n` prefixes of `t` (which would
/// falsify F5 for finite `t` fully covered by `n`).
pub fn f5_witness(
    t: &Trace,
    l: &ChanSet,
    x: &Trace,
    y: &Trace,
    n: usize,
) -> Option<(Trace, Trace)> {
    t.pre_pairs_up_to(n)
        .find(|(u, v)| &u.project(l) == x && &v.project(l) == y)
}

/// Smallest prefix length `m ≤ cap` of `t` such that `t.take(m)` projected
/// on `l` has at least `k` events; `None` if `cap` does not suffice.
fn prefix_len_covering(t: &Trace, l: &ChanSet, k: usize, cap: usize) -> Option<usize> {
    let mut count = 0usize;
    if k == 0 {
        return Some(0);
    }
    for m in 1..=cap {
        match t.get(m - 1) {
            Some(e) if l.contains(e.chan) => {
                count += 1;
                if count == k {
                    return Some(m);
                }
            }
            Some(_) => {}
            None => return None,
        }
    }
    None
}

/// Enumerates the `x pre y in t_L` pairs (bounded) and checks each has an
/// F5 witness in `t`. The witness search depth per pair is the smallest
/// prefix of `t` whose projection covers `y` — exactly the "shortest
/// prefix `v` with `v_L = y`" of the paper's proof.
pub fn check_f5(t: &Trace, l: &ChanSet, n: usize) -> bool {
    let tl = t.project(l);
    let pairs: Vec<_> = tl.pre_pairs_up_to(n).collect();
    pairs.iter().all(|(x, y)| {
        let Some(Length::Finite(k)) = Some(y.len()) else {
            return false;
        };
        // Generous cap: projection must reach k events within k + slack
        // steps of t unless t is pathological; scale by n to stay safe.
        let cap = 16 * (n + k + 1);
        match prefix_len_covering(t, l, k, cap) {
            Some(m) => f5_witness(t, l, x, y, m).is_some(),
            None => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::Chan;
    use crate::event::Event;

    fn b() -> Chan {
        Chan::new(0)
    }
    fn c() -> Chan {
        Chan::new(1)
    }

    fn mixed() -> Trace {
        Trace::finite(vec![
            Event::int(b(), 0),
            Event::int(c(), 1),
            Event::int(b(), 2),
            Event::int(c(), 3),
        ])
    }

    #[test]
    fn f2_holds_on_finite_and_infinite() {
        assert!(check_f2_prefix_chain(&mixed(), 10));
        let w = Trace::lasso([], [Event::bit(b(), true)]);
        assert!(check_f2_prefix_chain(&w, 10));
    }

    #[test]
    fn f3_holds_for_projections() {
        let l = ChanSet::from_chans([b()]);
        assert!(check_f3_projection_continuous(&mixed(), &l, 10));
        let w = Trace::lasso([], [Event::int(b(), 0), Event::int(c(), 1)]);
        assert!(check_f3_projection_continuous(&w, &l, 10));
    }

    #[test]
    fn f4_holds() {
        let l = ChanSet::from_chans([b()]);
        assert!(check_f4(&mixed(), &l, 10));
        assert!(check_f4(&mixed(), &ChanSet::new(), 10));
    }

    #[test]
    fn f5_witness_found() {
        let t = mixed();
        let l = ChanSet::from_chans([c()]);
        let tl = t.project(&l);
        let x = tl.take(0);
        let y = tl.take(1);
        let (u, v) = f5_witness(&t, &l, &x, &y, 10).expect("F5 witness");
        assert_eq!(u.project(&l), x);
        assert_eq!(v.project(&l), y);
        // The proof of F5 picks the *shortest* such v; ours is the first
        // found scanning ascending prefix lengths, which is the same.
        assert_eq!(v.events().unwrap().len(), 2);
    }

    #[test]
    fn f5_check_holds() {
        let l = ChanSet::from_chans([b()]);
        assert!(check_f5(&mixed(), &l, 10));
        let w = Trace::lasso([], [Event::int(b(), 0), Event::int(c(), 1)]);
        assert!(check_f5(&w, &l, 8));
    }
}
