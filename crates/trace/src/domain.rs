//! The cpos of sequences and traces (Fact F1).

use crate::lasso::Lasso;
use crate::trace::Trace;
use crate::value::Value;
use eqp_cpo::{Cpo, Poset};

/// The cpo of message sequences (finite and eventually periodic) under
/// prefix ordering, with `⊥ = ε`.
///
/// This is the domain the paper's channel variables range over. The
/// eventually periodic fragment is closed under every operation the
/// workspace performs, and contains every limit the paper's examples
/// manipulate, so it serves as the working cpo. (The full cpo of all
/// infinite sequences strictly contains it; see DESIGN.md for the
/// substitution argument.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqDomain;

impl Poset for SeqDomain {
    type Elem = Lasso<Value>;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a.leq(b)
    }
}

impl Cpo for SeqDomain {
    fn bottom(&self) -> Self::Elem {
        Lasso::empty()
    }
}

/// The cpo of traces under prefix ordering, with `⊥` the empty trace
/// (Fact F1: "the set of traces is a cpo under prefix ordering").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceDomain;

impl Poset for TraceDomain {
    type Elem = Trace;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a.leq(b)
    }
}

impl Cpo for TraceDomain {
    fn bottom(&self) -> Self::Elem {
        Trace::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::Chan;
    use crate::event::Event;
    use eqp_cpo::laws::check_all_laws;

    #[test]
    fn seq_domain_laws_on_samples() {
        let d = SeqDomain;
        let samples = vec![
            Lasso::empty(),
            Lasso::finite(vec![Value::Int(1)]),
            Lasso::finite(vec![Value::Int(1), Value::Int(2)]),
            Lasso::lasso(vec![Value::Int(1)], vec![Value::Int(2)]),
            Lasso::repeat(vec![Value::Int(0)]),
        ];
        assert!(check_all_laws(&d, &samples).is_ok());
    }

    #[test]
    fn trace_domain_laws_on_samples() {
        let d = TraceDomain;
        let b = Chan::new(0);
        let samples = vec![
            Trace::empty(),
            Trace::finite(vec![Event::int(b, 0)]),
            Trace::finite(vec![Event::int(b, 0), Event::int(b, 1)]),
            Trace::lasso([], [Event::int(b, 0)]),
        ];
        assert!(check_all_laws(&d, &samples).is_ok());
    }

    #[test]
    fn bottoms() {
        assert_eq!(SeqDomain.bottom(), Lasso::empty());
        assert_eq!(TraceDomain.bottom(), Trace::empty());
        assert!(TraceDomain.is_bottom(&Trace::empty()));
    }

    #[test]
    fn lub_finite_of_prefix_chain_of_traces() {
        let d = TraceDomain;
        let b = Chan::new(0);
        let t2 = Trace::finite(vec![Event::int(b, 0), Event::int(b, 1)]);
        let chain = vec![Trace::empty(), t2.take(1), t2.clone()];
        assert_eq!(d.lub_finite(&chain), Some(t2));
    }
}
