//! Message values carried on channels.

use std::fmt;

/// A message: the data item of a communication pair `(c, m)`.
///
/// The paper's examples use three message shapes, all covered here:
///
/// * integers (the merge networks of Sections 2.2–2.4),
/// * bits `T` / `F` (ticks, random bits, oracles — Sections 4.2–4.8),
/// * tagged pairs `(tag, n)` with tag 0 or 1 (the fair-merge implementation
///   of Section 4.10, where processes A and B tag their inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer message.
    Int(i64),
    /// A bit message: `Bit(true)` is the paper's `T`, `Bit(false)` its `F`.
    Bit(bool),
    /// A tagged integer `(tag, n)`; Section 4.10's processes A/B emit
    /// `(0, n)` / `(1, n)`.
    Pair(u8, i64),
}

impl Value {
    /// The tick/true bit `T`.
    pub fn tt() -> Value {
        Value::Bit(true)
    }

    /// The false bit `F`.
    pub fn ff() -> Value {
        Value::Bit(false)
    }

    /// Returns the integer payload of an `Int`, or `None`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the bit payload of a `Bit`, or `None`.
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the `(tag, n)` payload of a `Pair`, or `None`.
    pub fn as_pair(self) -> Option<(u8, i64)> {
        match self {
            Value::Pair(t, n) => Some((t, n)),
            _ => None,
        }
    }

    /// True iff this is an even integer — the paper's `even` classifier
    /// (Section 2.2: channel `b` of dfm carries only even integers).
    pub fn is_even_int(self) -> bool {
        matches!(self, Value::Int(n) if n.rem_euclid(2) == 0)
    }

    /// True iff this is an odd integer.
    pub fn is_odd_int(self) -> bool {
        matches!(self, Value::Int(n) if n.rem_euclid(2) == 1)
    }
}

/// Why a textual message failed to parse as a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    /// The offending input, truncated for display.
    pub input: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not a value: expected an integer, `T`, `F`, or a pair `(tag,n)`",
            self.input
        )
    }
}

impl std::error::Error for ParseValueError {}

impl std::str::FromStr for Value {
    type Err = ParseValueError;

    /// Parses the [`Display`](fmt::Display) notation back into a value:
    /// `T`/`F` bits, decimal integers, and `(tag,n)` pairs. The parser is
    /// total — any other input yields a typed error, never a panic — so
    /// untrusted textual specs (the `eqpd` ingestion layer) can lean on
    /// it directly.
    fn from_str(s: &str) -> Result<Value, ParseValueError> {
        let err = || ParseValueError {
            input: s.chars().take(32).collect(),
        };
        let s = s.trim();
        match s {
            "T" => return Ok(Value::Bit(true)),
            "F" => return Ok(Value::Bit(false)),
            _ => {}
        }
        if let Ok(n) = s.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        let inner = s
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .ok_or_else(err)?;
        let (tag, n) = inner.split_once(',').ok_or_else(err)?;
        let tag: u8 = tag.trim().parse().map_err(|_| err())?;
        let n: i64 = n.trim().parse().map_err(|_| err())?;
        Ok(Value::Pair(tag, n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bit(true) => write!(f, "T"),
            Value::Bit(false) => write!(f, "F"),
            Value::Pair(t, n) => write!(f, "({t},{n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bit(true).as_int(), None);
        assert_eq!(Value::tt().as_bit(), Some(true));
        assert_eq!(Value::ff().as_bit(), Some(false));
        assert_eq!(Value::Pair(1, 9).as_pair(), Some((1, 9)));
        assert_eq!(Value::Int(0).as_pair(), None);
    }

    #[test]
    fn parity_uses_euclidean_remainder() {
        assert!(Value::Int(-2).is_even_int());
        assert!(Value::Int(-1).is_odd_int());
        assert!(Value::Int(0).is_even_int());
        assert!(!Value::Bit(true).is_even_int());
        assert!(!Value::Bit(true).is_odd_int());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Value::tt().to_string(), "T");
        assert_eq!(Value::ff().to_string(), "F");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Pair(0, 4).to_string(), "(0,4)");
    }

    #[test]
    fn parse_roundtrips_display_and_rejects_garbage() {
        for v in [
            Value::Int(0),
            Value::Int(-42),
            Value::tt(),
            Value::ff(),
            Value::Pair(1, -9),
        ] {
            assert_eq!(v.to_string().parse::<Value>(), Ok(v));
        }
        assert_eq!(" 7 ".parse::<Value>(), Ok(Value::Int(7)));
        assert_eq!("( 0 , 4 )".parse::<Value>(), Ok(Value::Pair(0, 4)));
        for bad in ["", "t", "TT", "(1,)", "(,1)", "(300,1)", "(1 2)", "1.5"] {
            let e = bad.parse::<Value>().unwrap_err();
            assert!(e.to_string().contains("is not a value"), "{bad}: {e}");
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bit(true));
    }
}
