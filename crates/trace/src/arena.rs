//! Prefix-sharing chain arenas: persistent, append-only sequences stored
//! as parent-pointer nodes.
//!
//! The Section 3.3 enumeration tree shares prefixes massively — every node
//! `u·e` repeats all of `u`. Storing each node's trace as a fresh `Vec`
//! makes one-step extension O(|u|) and the whole search O(depth) per node
//! in copying alone. A [`ChainArena`] instead stores each element once, as
//! a node pointing at its predecessor, so that:
//!
//! * extending a chain by one element is **O(1)** (one arena push);
//! * every prefix of every chain is itself a chain (ids are stable);
//! * each node carries a 128-bit **structural hash** of the whole sequence
//!   up to that node, so sequence equality and prefix tests reduce to
//!   hash comparisons (verified exactly where correctness demands it);
//! * each node carries a *jump pointer* (the skip tree of Myers' applicative
//!   lists), giving **O(log n)** access to the ancestor at any depth.
//!
//! The arena is used both for event chains (the enumeration tree itself)
//! and for value chains (the incrementally evaluated outputs of a
//! description's sequence functions).

use std::hash::{Hash, Hasher};

/// Id of a chain (equivalently: of its last node) inside a [`ChainArena`].
///
/// `ChainId::EMPTY` denotes the empty chain and belongs to every arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(u32);

impl ChainId {
    /// The empty chain `⟨⟩` (root of every chain in every arena).
    pub const EMPTY: ChainId = ChainId(u32::MAX);

    fn index(self) -> Option<usize> {
        (self != ChainId::EMPTY).then_some(self.0 as usize)
    }
}

/// A 128-bit structural hash: equal sequences hash equal; distinct
/// sequences collide with probability ~2⁻¹²⁸ (the engine additionally
/// verifies exactly wherever a false positive could corrupt results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainHash(u64, u64);

/// The hash of the empty chain.
const EMPTY_HASH: ChainHash = ChainHash(0x9AE1_6A3B_2F90_404F, 0x3C6E_F372_FE94_F82B);

fn mix(h: u64, x: u64) -> u64 {
    // SplitMix64 finalizer over the running state — cheap and well mixed.
    let mut z = h ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn item_digest<T: Hash>(item: &T) -> u64 {
    // DefaultHasher uses fixed keys, so digests are deterministic across
    // runs and threads.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    item.hash(&mut h);
    h.finish()
}

fn extend_hash(parent: ChainHash, digest: u64) -> ChainHash {
    ChainHash(
        mix(parent.0, digest),
        mix(parent.1, digest ^ 0xA5A5_A5A5_A5A5_A5A5),
    )
}

#[derive(Debug, Clone)]
struct Node<T> {
    item: T,
    parent: ChainId,
    /// Jump pointer: ancestor reached by skipping `len - jump_len` nodes,
    /// following Myers' skip-list scheme (`jump` of the parent's jump when
    /// the two skip lengths match, else the parent itself).
    jump: ChainId,
    len: u32,
    hash: ChainHash,
}

/// An arena of persistent append-only chains over `T`.
///
/// # Example
///
/// ```
/// use eqp_trace::arena::{ChainArena, ChainId};
///
/// let mut a: ChainArena<char> = ChainArena::new();
/// let x = a.push(ChainId::EMPTY, 'x');
/// let xy = a.push(x, 'y');
/// let xz = a.push(x, 'z'); // shares the 'x' node with xy
/// assert_eq!(a.items(xy), vec!['x', 'y']);
/// assert_eq!(a.items(xz), vec!['x', 'z']);
/// assert!(a.is_prefix(x, xy));
/// assert!(!a.is_prefix(xy, xz));
/// ```
#[derive(Debug, Clone)]
pub struct ChainArena<T> {
    nodes: Vec<Node<T>>,
}

impl<T> Default for ChainArena<T> {
    fn default() -> Self {
        ChainArena { nodes: Vec::new() }
    }
}

impl<T: Hash + Clone + Eq> ChainArena<T> {
    /// An empty arena.
    pub fn new() -> ChainArena<T> {
        ChainArena::default()
    }

    /// Number of stored nodes (shared prefixes count once).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no node has been pushed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Length of chain `id`.
    pub fn chain_len(&self, id: ChainId) -> usize {
        id.index().map_or(0, |i| self.nodes[i].len as usize)
    }

    /// Structural hash of chain `id`.
    pub fn hash(&self, id: ChainId) -> ChainHash {
        id.index().map_or(EMPTY_HASH, |i| self.nodes[i].hash)
    }

    /// The last item of chain `id` (`None` for the empty chain).
    pub fn last(&self, id: ChainId) -> Option<&T> {
        id.index().map(|i| &self.nodes[i].item)
    }

    /// The parent chain (chain without its last item).
    pub fn parent(&self, id: ChainId) -> ChainId {
        id.index().map_or(ChainId::EMPTY, |i| self.nodes[i].parent)
    }

    /// Extends chain `id` by `item` — O(1).
    pub fn push(&mut self, id: ChainId, item: T) -> ChainId {
        let len = self.chain_len(id) as u32 + 1;
        let hash = extend_hash(self.hash(id), item_digest(&item));
        // Myers jump pointer: if parent and its jump span equal lengths,
        // jump twice as far; otherwise jump to the parent.
        let jump = match id.index() {
            None => ChainId::EMPTY,
            Some(p) => {
                let pj = self.nodes[p].jump;
                let plen = self.nodes[p].len;
                let pjlen = self.chain_len(pj) as u32;
                let pjjlen = self.chain_len(self.jump_of(pj)) as u32;
                if plen.wrapping_sub(pjlen) == pjlen.wrapping_sub(pjjlen) {
                    self.jump_of(pj)
                } else {
                    id
                }
            }
        };
        let node = Node {
            item,
            parent: id,
            jump,
            len,
            hash,
        };
        self.nodes.push(node);
        ChainId((self.nodes.len() - 1) as u32)
    }

    fn jump_of(&self, id: ChainId) -> ChainId {
        id.index().map_or(ChainId::EMPTY, |i| self.nodes[i].jump)
    }

    /// The prefix of chain `id` with length `depth` — O(log n) via jump
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the chain length.
    pub fn ancestor_at(&self, mut id: ChainId, depth: usize) -> ChainId {
        let mut len = self.chain_len(id);
        assert!(depth <= len, "ancestor_at: depth {depth} > len {len}");
        while len > depth {
            let j = self.jump_of(id);
            let jlen = self.chain_len(j);
            if jlen >= depth {
                id = j;
                len = jlen;
            } else {
                id = self.parent(id);
                len -= 1;
            }
        }
        id
    }

    /// The item at position `i` (0-based) of chain `id`.
    pub fn get(&self, id: ChainId, i: usize) -> Option<&T> {
        if i >= self.chain_len(id) {
            return None;
        }
        self.last(self.ancestor_at(id, i + 1))
    }

    /// Materializes the chain front-to-back.
    pub fn items(&self, id: ChainId) -> Vec<T> {
        let mut out = Vec::with_capacity(self.chain_len(id));
        let mut cur = id;
        while let Some(i) = cur.index() {
            out.push(self.nodes[i].item.clone());
            cur = self.nodes[i].parent;
        }
        out.reverse();
        out
    }

    /// Exact equality of two chains' contents — O(shared suffix) thanks to
    /// id stability: chains are equal iff they converge to the same nodes.
    pub fn chains_eq(&self, a: ChainId, b: ChainId) -> bool {
        if self.chain_len(a) != self.chain_len(b) {
            return false;
        }
        let (mut x, mut y) = (a, b);
        while x != y {
            match (x.index(), y.index()) {
                (Some(i), Some(j)) => {
                    if self.nodes[i].item != self.nodes[j].item {
                        return false;
                    }
                    x = self.nodes[i].parent;
                    y = self.nodes[j].parent;
                }
                _ => return false, // unequal lengths handled above
            }
        }
        true
    }

    /// Probabilistic prefix test: is chain `a` a prefix of chain `b`?
    /// Compares the 128-bit hash of `b`'s prefix at `a`'s length — a false
    /// positive needs a 128-bit collision.
    pub fn is_prefix(&self, a: ChainId, b: ChainId) -> bool {
        let la = self.chain_len(a);
        la <= self.chain_len(b) && self.hash(self.ancestor_at(b, la)) == self.hash(a)
    }

    /// Hash that chain `id` would have after appending `items` — without
    /// mutating the arena (used to test candidate extensions).
    pub fn hash_extended<'a, I>(&self, id: ChainId, items: I) -> ChainHash
    where
        I: IntoIterator<Item = &'a T>,
        T: 'a,
    {
        items
            .into_iter()
            .fold(self.hash(id), |h, it| extend_hash(h, item_digest(it)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_properties() {
        let a: ChainArena<u32> = ChainArena::new();
        assert_eq!(a.chain_len(ChainId::EMPTY), 0);
        assert_eq!(a.items(ChainId::EMPTY), Vec::<u32>::new());
        assert!(a.is_prefix(ChainId::EMPTY, ChainId::EMPTY));
        assert!(a.chains_eq(ChainId::EMPTY, ChainId::EMPTY));
        assert_eq!(a.parent(ChainId::EMPTY), ChainId::EMPTY);
        assert!(a.last(ChainId::EMPTY).is_none());
    }

    #[test]
    fn push_shares_prefixes() {
        let mut a = ChainArena::new();
        let x = a.push(ChainId::EMPTY, 1u32);
        let xy = a.push(x, 2);
        let xz = a.push(x, 3);
        assert_eq!(a.len(), 3); // 1, 2, 3 each stored once
        assert_eq!(a.items(xy), vec![1, 2]);
        assert_eq!(a.items(xz), vec![1, 3]);
        assert_eq!(a.chain_len(xy), 2);
        assert_eq!(a.get(xy, 0), Some(&1));
        assert_eq!(a.get(xy, 1), Some(&2));
        assert_eq!(a.get(xy, 2), None);
    }

    #[test]
    fn hashes_are_content_determined() {
        let mut a = ChainArena::new();
        let p1 = a.push(ChainId::EMPTY, 7u64);
        let c1 = a.push(p1, 8);
        // A second, structurally separate chain with the same content:
        let p2 = a.push(ChainId::EMPTY, 7);
        let c2 = a.push(p2, 8);
        assert_eq!(a.hash(c1), a.hash(c2));
        assert!(a.chains_eq(c1, c2));
        let d = a.push(p2, 9);
        assert_ne!(a.hash(c1), a.hash(d));
        assert!(!a.chains_eq(c1, d));
    }

    #[test]
    fn ancestor_at_is_logarithmic_walk_correct() {
        let mut a = ChainArena::new();
        let mut id = ChainId::EMPTY;
        let mut ids = vec![id];
        for i in 0..1000u32 {
            id = a.push(id, i);
            ids.push(id);
        }
        for depth in [0usize, 1, 2, 3, 17, 500, 999, 1000] {
            assert_eq!(a.ancestor_at(id, depth), ids[depth], "depth {depth}");
        }
    }

    #[test]
    fn prefix_tests() {
        let mut a = ChainArena::new();
        let mut long = ChainId::EMPTY;
        for i in 0..50u32 {
            long = a.push(long, i);
        }
        let mid = a.ancestor_at(long, 20);
        assert!(a.is_prefix(mid, long));
        assert!(a.is_prefix(ChainId::EMPTY, long));
        assert!(!a.is_prefix(long, mid));
        // same length, different content
        let other = a.push(a.ancestor_at(long, 19), 99);
        assert_eq!(a.chain_len(other), 20);
        assert!(!a.is_prefix(other, long));
    }

    #[test]
    fn hash_extended_matches_actual_push() {
        let mut a = ChainArena::new();
        let base = a.push(ChainId::EMPTY, 'a');
        let predicted = a.hash_extended(base, ['b', 'c'].iter());
        let b = a.push(base, 'b');
        let c = a.push(b, 'c');
        assert_eq!(predicted, a.hash(c));
        assert_eq!(a.hash_extended(base, std::iter::empty()), a.hash(base));
    }
}
