//! Eventually periodic sequences in canonical *lasso* form.
//!
//! A [`Lasso`] denotes either a finite sequence (empty cycle) or the
//! infinite word `prefix · cycle^ω`. Lassos are kept in a **canonical
//! normal form** — primitive cycle, minimally rolled-back prefix — so that
//! the derived `Eq`/`Hash` coincide with equality of the denoted words.
//! This is what makes the paper's *limit condition* `f(t) = g(t)` decidable
//! for the infinite traces that arise in practice (all of which are
//! eventually periodic for the paper's networks).

use std::fmt;

/// The length of a lasso: a natural number or ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Length {
    /// A finite length.
    Finite(usize),
    /// The sequence is infinite.
    Infinite,
}

impl Length {
    /// Minimum of two lengths (ω is absorbing for `max`, identity for
    /// neither; here: the smaller).
    pub fn min(self, other: Length) -> Length {
        match (self, other) {
            (Length::Finite(a), Length::Finite(b)) => Length::Finite(a.min(b)),
            (Length::Finite(a), Length::Infinite) => Length::Finite(a),
            (Length::Infinite, Length::Finite(b)) => Length::Finite(b),
            (Length::Infinite, Length::Infinite) => Length::Infinite,
        }
    }

    /// Returns the finite length, or `None` for ω.
    pub fn as_finite(self) -> Option<usize> {
        match self {
            Length::Finite(n) => Some(n),
            Length::Infinite => None,
        }
    }
}

/// A canonical eventually periodic sequence: `prefix · cycle^ω`, or a
/// finite sequence when the cycle is empty.
///
/// # Normal form
///
/// Constructors normalize so that:
///
/// 1. the cycle is *primitive* (not a repetition of a shorter word), and
/// 2. the prefix is minimal (no element can be rolled from the end of the
///    prefix into a rotation of the cycle).
///
/// Two lassos denote the same (finite or infinite) word **iff** their
/// normal forms are equal, so the derived `PartialEq`/`Eq`/`Hash` are
/// semantic equality. A unit-test suite plus property tests validate this.
///
/// # Example
///
/// ```
/// use eqp_trace::Lasso;
///
/// // 1 (2 1)^ω and (1 2)^ω are the same infinite word:
/// let a = Lasso::lasso(vec![1], vec![2, 1]);
/// let b = Lasso::repeat(vec![1, 2]);
/// assert_eq!(a, b);
/// // prefix order: ⟨1 2 1⟩ ⊑ (1 2)^ω
/// assert!(Lasso::finite(vec![1, 2, 1]).leq(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lasso<T> {
    prefix: Vec<T>,
    cycle: Vec<T>,
}

impl<T: Clone + Eq> Lasso<T> {
    /// The empty sequence `ε` (the paper's ⊥ in the domain of sequences).
    pub fn empty() -> Lasso<T> {
        Lasso {
            prefix: Vec::new(),
            cycle: Vec::new(),
        }
    }

    /// A finite sequence.
    pub fn finite<I: IntoIterator<Item = T>>(items: I) -> Lasso<T> {
        Lasso {
            prefix: items.into_iter().collect(),
            cycle: Vec::new(),
        }
    }

    /// The eventually periodic word `prefix · cycle^ω` (finite if `cycle`
    /// is empty), normalized.
    #[allow(clippy::self_named_constructors)] // `Lasso::lasso(p, c)` reads as intended
    pub fn lasso<P, C>(prefix: P, cycle: C) -> Lasso<T>
    where
        P: IntoIterator<Item = T>,
        C: IntoIterator<Item = T>,
    {
        let mut l = Lasso {
            prefix: prefix.into_iter().collect(),
            cycle: cycle.into_iter().collect(),
        };
        l.normalize();
        l
    }

    /// The purely periodic word `cycle^ω`.
    pub fn repeat<C: IntoIterator<Item = T>>(cycle: C) -> Lasso<T> {
        Lasso::lasso(Vec::new(), cycle)
    }

    fn normalize(&mut self) {
        if self.cycle.is_empty() {
            return;
        }
        // 1. Reduce the cycle to its primitive root.
        let n = self.cycle.len();
        for d in 1..n {
            if n.is_multiple_of(d) && (d..n).all(|i| self.cycle[i] == self.cycle[i % d]) {
                self.cycle.truncate(d);
                break;
            }
        }
        // 2. Roll prefix tail into the cycle: while the prefix ends with
        //    the cycle's last element, rotate the cycle right and shorten
        //    the prefix; the denoted word is unchanged.
        while let (Some(p), Some(c)) = (self.prefix.last(), self.cycle.last()) {
            if p == c {
                self.prefix.pop();
                self.cycle.rotate_right(1);
            } else {
                break;
            }
        }
    }

    /// True iff the sequence is finite.
    pub fn is_finite(&self) -> bool {
        self.cycle.is_empty()
    }

    /// True iff the sequence is infinite.
    pub fn is_infinite(&self) -> bool {
        !self.cycle.is_empty()
    }

    /// The length, finite or ω.
    pub fn len(&self) -> Length {
        if self.is_finite() {
            Length::Finite(self.prefix.len())
        } else {
            Length::Infinite
        }
    }

    /// True iff this is the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty() && self.cycle.is_empty()
    }

    /// The normalized non-repeating prefix.
    pub fn prefix(&self) -> &[T] {
        &self.prefix
    }

    /// The normalized primitive cycle (empty for finite sequences).
    pub fn cycle(&self) -> &[T] {
        &self.cycle
    }

    /// The `i`-th element (0-based), or `None` past the end of a finite
    /// sequence.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i < self.prefix.len() {
            Some(&self.prefix[i])
        } else if self.cycle.is_empty() {
            None
        } else {
            Some(&self.cycle[(i - self.prefix.len()) % self.cycle.len()])
        }
    }

    /// The first `n` elements (fewer if the sequence is shorter).
    pub fn take(&self, n: usize) -> Vec<T> {
        (0..n).map_while(|i| self.get(i).cloned()).collect()
    }

    /// Iterates the elements; **unbounded** for infinite lassos — always
    /// pair with `take`/a bound.
    pub fn iter_unbounded(&self) -> impl Iterator<Item = &T> + '_ {
        (0..).map_while(move |i| {
            if self.is_finite() && i >= self.prefix.len() {
                None
            } else {
                self.get(i)
            }
        })
    }

    /// Prefix ordering `self ⊑ other` on the denoted words: finite `u` is
    /// below `v` iff `u` is a word prefix of `v`; an infinite word is below
    /// only itself.
    pub fn leq(&self, other: &Lasso<T>) -> bool {
        match self.len() {
            Length::Finite(n) => match other.len() {
                Length::Finite(m) if m < n => false,
                _ => (0..n).all(|i| self.get(i) == other.get(i)),
            },
            Length::Infinite => self == other,
        }
    }

    /// Applies `f` pointwise. The image of an eventually periodic word is
    /// eventually periodic with the same shape.
    pub fn map<U: Clone + Eq, F: Fn(&T) -> U>(&self, f: F) -> Lasso<U> {
        Lasso::lasso(
            self.prefix.iter().map(&f).collect::<Vec<_>>(),
            self.cycle.iter().map(&f).collect::<Vec<_>>(),
        )
    }

    /// Keeps the elements satisfying `pred`. Filtering distributes over
    /// concatenation, so `filter(p · c^ω) = filter(p) · filter(c)^ω`; if the
    /// cycle contributes nothing the result is finite (e.g. `even` applied
    /// to an all-odd cycle).
    pub fn filter<F: Fn(&T) -> bool>(&self, pred: F) -> Lasso<T> {
        let p: Vec<T> = self.prefix.iter().filter(|x| pred(x)).cloned().collect();
        let c: Vec<T> = self.cycle.iter().filter(|x| pred(x)).cloned().collect();
        Lasso::lasso(p, c)
    }

    /// Prepends a finite sequence: `front · self` (the paper's `;` with a
    /// finite left operand, as in `b = 0; c`).
    pub fn concat_front(&self, front: &[T]) -> Lasso<T> {
        let mut p: Vec<T> = front.to_vec();
        p.extend(self.prefix.iter().cloned());
        Lasso::lasso(p, self.cycle.clone())
    }

    /// Concatenation `self · other`, defined when `self` is finite
    /// (concatenating after an infinite word is a no-op mathematically;
    /// we return `None` to surface likely bugs).
    pub fn then(&self, other: &Lasso<T>) -> Option<Lasso<T>> {
        if self.is_infinite() {
            return None;
        }
        Some(other.concat_front(&self.prefix))
    }

    /// Extends a finite sequence by one element; `None` if infinite.
    pub fn pushed(&self, item: T) -> Option<Lasso<T>> {
        if self.is_infinite() {
            return None;
        }
        let mut p = self.prefix.clone();
        p.push(item);
        Some(Lasso::finite(p))
    }

    /// Pointwise combination of two sequences; the result has the length of
    /// the shorter (the paper's `AND` on bit sequences, Section 4.5).
    pub fn zip_with<U: Clone + Eq, V: Clone + Eq, F: Fn(&T, &U) -> V>(
        &self,
        other: &Lasso<U>,
        f: F,
    ) -> Lasso<V> {
        match (self.len(), other.len()) {
            (Length::Finite(n), _) | (_, Length::Finite(n)) => {
                let n = match (self.len().as_finite(), other.len().as_finite()) {
                    (Some(a), Some(b)) => a.min(b),
                    _ => n,
                };
                Lasso::finite(
                    (0..n)
                        .map(|i| f(self.get(i).unwrap(), other.get(i).unwrap()))
                        .collect::<Vec<_>>(),
                )
            }
            (Length::Infinite, Length::Infinite) => {
                let start = self.prefix.len().max(other.prefix.len());
                let period = lcm(self.cycle.len(), other.cycle.len());
                let p: Vec<V> = (0..start)
                    .map(|i| f(self.get(i).unwrap(), other.get(i).unwrap()))
                    .collect();
                let c: Vec<V> = (start..start + period)
                    .map(|i| f(self.get(i).unwrap(), other.get(i).unwrap()))
                    .collect();
                Lasso::lasso(p, c)
            }
        }
    }

    /// The longest prefix all of whose elements satisfy `pred` (the
    /// function `g` of Section 4.8: "longest prefix that contains no F").
    /// If every element of prefix and cycle satisfies `pred`, that is the
    /// whole sequence.
    pub fn take_while<F: Fn(&T) -> bool>(&self, pred: F) -> Lasso<T> {
        for (i, x) in self.prefix.iter().enumerate() {
            if !pred(x) {
                return Lasso::finite(self.prefix[..i].to_vec());
            }
        }
        for (j, x) in self.cycle.iter().enumerate() {
            if !pred(x) {
                let mut p = self.prefix.clone();
                p.extend(self.cycle[..j].iter().cloned());
                return Lasso::finite(p);
            }
        }
        self.clone()
    }

    /// Drops the first `n` elements.
    pub fn drop_front(&self, n: usize) -> Lasso<T> {
        if n <= self.prefix.len() {
            return Lasso::lasso(self.prefix[n..].to_vec(), self.cycle.clone());
        }
        if self.cycle.is_empty() {
            return Lasso::empty();
        }
        let k = (n - self.prefix.len()) % self.cycle.len();
        let mut c = self.cycle.clone();
        c.rotate_left(k);
        Lasso::lasso(Vec::new(), c)
    }

    /// All finite prefixes of length `0..=n` (ascending). For finite lassos
    /// the iterator stops at the full sequence.
    pub fn prefixes_up_to(&self, n: usize) -> impl Iterator<Item = Vec<T>> + '_ {
        let max = match self.len() {
            Length::Finite(m) => m.min(n),
            Length::Infinite => n,
        };
        (0..=max).map(move |k| self.take(k))
    }

    /// Counts elements satisfying `pred`, if that count is finite:
    /// `None` when infinitely many cycle elements match.
    pub fn count_matching<F: Fn(&T) -> bool>(&self, pred: F) -> Option<usize> {
        if self.cycle.iter().any(&pred) {
            return None;
        }
        Some(self.prefix.iter().filter(|x| pred(x)).count())
    }

    /// Index of the first element satisfying `pred`, or `None` if no
    /// element ever does.
    pub fn position<F: Fn(&T) -> bool>(&self, pred: F) -> Option<usize> {
        if let Some(i) = self.prefix.iter().position(&pred) {
            return Some(i);
        }
        self.cycle
            .iter()
            .position(&pred)
            .map(|j| self.prefix.len() + j)
    }
}

impl<T: Clone + Eq> Default for Lasso<T> {
    fn default() -> Self {
        Lasso::empty()
    }
}

impl<T: Clone + Eq> FromIterator<T> for Lasso<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Lasso::finite(iter)
    }
}

impl<T: fmt::Display> fmt::Display for Lasso<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, x) in self.prefix.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{x}")?;
        }
        if !self.cycle.is_empty() {
            if !self.prefix.is_empty() {
                write!(f, " ")?;
            }
            write!(f, "(")?;
            for (i, x) in self.cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, ")^ω")?;
        }
        write!(f, "⟩")
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (saturating is unnecessary at our scales).
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fin(xs: &[u8]) -> Lasso<u8> {
        Lasso::finite(xs.to_vec())
    }

    #[test]
    fn normalization_primitive_cycle() {
        let a = Lasso::lasso(vec![], vec![1u8, 2, 1, 2]);
        assert_eq!(a.cycle(), &[1, 2]);
        let b = Lasso::repeat(vec![3u8, 3, 3]);
        assert_eq!(b.cycle(), &[3]);
    }

    #[test]
    fn normalization_rolls_prefix() {
        // 1 (2 1)^ω  ==  (1 2)^ω
        let a = Lasso::lasso(vec![1u8], vec![2, 1]);
        let b = Lasso::repeat(vec![1u8, 2]);
        assert_eq!(a, b);
        assert!(a.prefix().is_empty());
    }

    #[test]
    fn normalization_full_example() {
        // 0 0 (1 0 0)^ω == 0 0 (1 0 0)^ω; rolled: prefix "0 0" ends with 0,
        // cycle ends with 0 → roll twice → (0 0 1)^ω.
        let a = Lasso::lasso(vec![0u8, 0], vec![1, 0, 0]);
        let b = Lasso::repeat(vec![0u8, 0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn semantic_equality_distinguishes() {
        let a = Lasso::repeat(vec![0u8, 1]);
        let b = Lasso::repeat(vec![1u8, 0]);
        assert_ne!(a, b); // words 0101… vs 1010… differ
    }

    #[test]
    fn get_indexes_into_cycle() {
        let l = Lasso::lasso(vec![9u8], vec![1, 2]);
        let got: Vec<u8> = (0..6).map(|i| *l.get(i).unwrap()).collect();
        assert_eq!(got, vec![9, 1, 2, 1, 2, 1]);
        assert_eq!(fin(&[1]).get(1), None);
    }

    #[test]
    fn lengths() {
        assert_eq!(fin(&[1, 2]).len(), Length::Finite(2));
        assert_eq!(Lasso::repeat(vec![1u8]).len(), Length::Infinite);
        assert_eq!(Length::Finite(3).min(Length::Infinite), Length::Finite(3));
        assert_eq!(Length::Infinite.min(Length::Infinite), Length::Infinite);
        assert_eq!(Length::Infinite.as_finite(), None);
    }

    #[test]
    fn prefix_order_finite() {
        assert!(fin(&[]).leq(&fin(&[1])));
        assert!(fin(&[1]).leq(&fin(&[1, 2])));
        assert!(!fin(&[2]).leq(&fin(&[1, 2])));
        assert!(!fin(&[1, 2, 3]).leq(&fin(&[1, 2])));
    }

    #[test]
    fn prefix_order_with_infinite() {
        let w = Lasso::lasso(vec![0u8], vec![1]);
        assert!(fin(&[0, 1, 1]).leq(&w));
        assert!(!fin(&[0, 1, 0]).leq(&w));
        assert!(w.leq(&w));
        assert!(!w.leq(&fin(&[0, 1])));
        let v = Lasso::repeat(vec![1u8]);
        assert!(!w.leq(&v));
    }

    #[test]
    fn map_preserves_shape() {
        let l = Lasso::lasso(vec![1u8], vec![2, 3]);
        let m = l.map(|x| x * 2);
        assert_eq!(m, Lasso::lasso(vec![2u8], vec![4, 6]));
    }

    #[test]
    fn filter_can_make_finite() {
        let l = Lasso::lasso(vec![2u8, 3], vec![5, 7]); // evens: just [2]
        let evens = l.filter(|x| x % 2 == 0);
        assert_eq!(evens, fin(&[2]));
        let odds = l.filter(|x| x % 2 == 1);
        assert_eq!(odds, Lasso::lasso(vec![3u8], vec![5, 7]));
    }

    #[test]
    fn concat_front_and_then() {
        let w = Lasso::repeat(vec![0u8]);
        let l = w.concat_front(&[5]);
        assert_eq!(l, Lasso::lasso(vec![5u8], vec![0]));
        assert_eq!(fin(&[1]).then(&fin(&[2])), Some(fin(&[1, 2])));
        assert_eq!(w.then(&fin(&[2])), None);
    }

    #[test]
    fn pushed_extends_finite_only() {
        assert_eq!(fin(&[1]).pushed(2), Some(fin(&[1, 2])));
        assert_eq!(Lasso::repeat(vec![1u8]).pushed(2), None);
    }

    #[test]
    fn zip_finite_truncates() {
        let a = fin(&[1, 2, 3]);
        let b = Lasso::repeat(vec![10u8]);
        let z = a.zip_with(&b, |x, y| x + y);
        assert_eq!(z, fin(&[11, 12, 13]));
    }

    #[test]
    fn zip_infinite_takes_lcm_period() {
        let a = Lasso::repeat(vec![0u8, 1]); // period 2
        let b = Lasso::repeat(vec![0u8, 0, 1]); // period 3
        let z = a.zip_with(&b, |x, y| x + y);
        // elementwise sums of 010101… and 001001…: 0 1 1 1 0 2 repeating
        assert_eq!(z, Lasso::repeat(vec![0u8, 1, 1, 1, 0, 2]));
    }

    #[test]
    fn take_while_cases() {
        let l = Lasso::lasso(vec![1u8, 1], vec![1, 2]);
        assert_eq!(l.take_while(|&x| x == 1), fin(&[1, 1, 1]));
        let all1 = Lasso::repeat(vec![1u8]);
        assert_eq!(all1.take_while(|&x| x == 1), all1);
        assert_eq!(fin(&[2, 1]).take_while(|&x| x == 1), fin(&[]));
    }

    #[test]
    fn drop_front_rotates_cycle() {
        let l = Lasso::lasso(vec![9u8], vec![1, 2]);
        assert_eq!(l.drop_front(1), Lasso::repeat(vec![1u8, 2]));
        assert_eq!(l.drop_front(2), Lasso::repeat(vec![2u8, 1]));
        assert_eq!(l.drop_front(4), Lasso::repeat(vec![2u8, 1]));
        assert_eq!(fin(&[1, 2]).drop_front(5), fin(&[]));
    }

    #[test]
    fn prefixes_are_ascending() {
        let l = Lasso::repeat(vec![7u8]);
        let ps: Vec<Vec<u8>> = l.prefixes_up_to(3).collect();
        assert_eq!(ps, vec![vec![], vec![7], vec![7, 7], vec![7, 7, 7]]);
        let f = fin(&[1]);
        let ps: Vec<Vec<u8>> = f.prefixes_up_to(5).collect();
        assert_eq!(ps, vec![vec![], vec![1]]);
    }

    #[test]
    fn count_and_position() {
        let l = Lasso::lasso(vec![1u8, 2, 1], vec![3]);
        assert_eq!(l.count_matching(|&x| x == 1), Some(2));
        assert_eq!(l.count_matching(|&x| x == 3), None);
        assert_eq!(l.position(|&x| x == 2), Some(1));
        assert_eq!(l.position(|&x| x == 3), Some(3));
        assert_eq!(l.position(|&x| x == 9), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(fin(&[1, 2]).to_string(), "⟨1 2⟩");
        assert_eq!(
            Lasso::lasso(vec![0u8], vec![1, 2]).to_string(),
            "⟨0 (1 2)^ω⟩"
        );
        assert_eq!(fin(&[]).to_string(), "⟨⟩");
    }

    #[test]
    fn iter_unbounded_finite_stops() {
        let f = fin(&[4, 5]);
        let v: Vec<u8> = f.iter_unbounded().copied().collect();
        assert_eq!(v, vec![4, 5]);
        let w = Lasso::repeat(vec![1u8]);
        let v: Vec<u8> = w.iter_unbounded().take(4).copied().collect();
        assert_eq!(v, vec![1, 1, 1, 1]);
    }

    #[test]
    fn from_iterator_and_default() {
        let l: Lasso<u8> = vec![1, 2].into_iter().collect();
        assert_eq!(l, fin(&[1, 2]));
        assert_eq!(Lasso::<u8>::default(), Lasso::empty());
        assert!(Lasso::<u8>::empty().is_empty());
    }
}
