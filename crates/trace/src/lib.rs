//! Channels, messages, and traces — finite and eventually periodic — for the
//! `eqp` workspace (Misra, *Equational Reasoning About Nondeterministic
//! Processes*, PODC 1989).
//!
//! Section 3.1 of the paper defines a **trace** as a sequence of pairs
//! `(c, m)` — channel `c`, message `m` — possibly infinite (a process that
//! always has something to output has an infinite quiescent trace, e.g. the
//! Ticks process of Section 4.2 whose only trace is `(b, T)^ω`).
//!
//! Infinite sequences do not fit in a `Vec`, and lazy self-referential
//! streams fight Rust's ownership model. Every infinite object the paper
//! actually manipulates, however, is *eventually periodic* — `0^ω`, the
//! tick stream, oracle cycles, fair-merge limits. This crate therefore
//! represents sequences as **lassos**: a finite prefix followed by a
//! (possibly empty) repeating cycle, kept in a canonical normal form so that
//! equality of lassos is exactly equality of the infinite words they denote.
//! Prefix ordering, projection, pointwise maps, filters, and zips are all
//! computed *exactly* on this representation — the limit condition of a
//! description is decided, not approximated.
//!
//! # Contents
//!
//! * [`Value`] / [`Chan`] / [`Event`] — messages, channel identifiers, and
//!   the `(c, m)` pairs of the paper.
//! * [`Lasso`] — canonical eventually-periodic sequences over any element
//!   type, with the algebra the rest of the workspace builds on.
//! * [`Trace`] — lassos of events, with projection (Fact F3), the
//!   `u pre v in t` relation, and per-channel sequence extraction.
//! * [`SeqDomain`] / [`TraceDomain`] — the corresponding cpos (Fact F1),
//!   with prefix ordering.
//! * [`facts`] — executable statements of the paper's Facts F2, F4, F5.
//!
//! # Example
//!
//! ```
//! use eqp_trace::{Chan, Event, Trace, Value};
//!
//! // The Ticks process's only quiescent trace: (b, T)^ω.
//! let b = Chan::new(0);
//! let t = Trace::lasso([], [Event::new(b, Value::tt())]);
//! assert!(t.is_infinite());
//! // Every finite prefix of it is a communication history of Ticks:
//! let p = t.take(3);
//! assert_eq!(p.events().unwrap().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod chan;
pub mod domain;
pub mod event;
pub mod facts;
pub mod lasso;
pub mod trace;
pub mod value;

pub use arena::{ChainArena, ChainHash, ChainId};
pub use chan::{Chan, ChanSet};
pub use domain::{SeqDomain, TraceDomain};
pub use event::Event;
pub use lasso::Lasso;
pub use trace::Trace;
pub use value::Value;

/// A sequence of message values: the per-channel projection of a trace,
/// which is what the paper's channel variables (`b`, `c`, `d`, …) denote.
pub type Seq = Lasso<Value>;
