//! Communication events: the `(c, m)` pairs that traces are made of.

use crate::chan::Chan;
use crate::value::Value;
use std::fmt;

/// One communication: message `value` sent along channel `chan`.
///
/// Per Section 3.1.1, a trace records *sends* only — the receipt of a data
/// item is not shown in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event {
    /// The channel the message was sent on.
    pub chan: Chan,
    /// The message.
    pub value: Value,
}

impl Event {
    /// Creates the event `(chan, value)`.
    pub const fn new(chan: Chan, value: Value) -> Event {
        Event { chan, value }
    }

    /// Convenience: an integer send `(chan, Int(n))`.
    pub const fn int(chan: Chan, n: i64) -> Event {
        Event::new(chan, Value::Int(n))
    }

    /// Convenience: a bit send `(chan, Bit(b))`.
    pub const fn bit(chan: Chan, b: bool) -> Event {
        Event::new(chan, Value::Bit(b))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.chan, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = Chan::new(1);
        assert_eq!(Event::int(c, 5), Event::new(c, Value::Int(5)));
        assert_eq!(Event::bit(c, true), Event::new(c, Value::Bit(true)));
    }

    #[test]
    fn display_matches_paper() {
        let e = Event::int(Chan::new(2), 0);
        assert_eq!(e.to_string(), "(ch2, 0)");
    }
}
