//! Traces: sequences of communication events, with projection and the
//! `u pre v in t` relation.

use crate::chan::{Chan, ChanSet};
use crate::event::Event;
use crate::lasso::{Lasso, Length};
use crate::value::Value;
use std::fmt;

/// A trace: a finite or eventually periodic sequence of events `(c, m)`.
///
/// The traces that *define* a process are its maximal (quiescent) traces
/// (Section 3.1.2, Note); finite prefixes of traces are the communication
/// histories a computation passes through.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Trace {
    events: Lasso<Event>,
}

impl Trace {
    /// The empty trace `⊥`.
    pub fn empty() -> Trace {
        Trace {
            events: Lasso::empty(),
        }
    }

    /// A finite trace from the given events.
    pub fn finite<I: IntoIterator<Item = Event>>(events: I) -> Trace {
        Trace {
            events: Lasso::finite(events),
        }
    }

    /// An eventually periodic trace `prefix · cycle^ω`.
    pub fn lasso<P, C>(prefix: P, cycle: C) -> Trace
    where
        P: IntoIterator<Item = Event>,
        C: IntoIterator<Item = Event>,
    {
        Trace {
            events: Lasso::lasso(prefix, cycle),
        }
    }

    /// Wraps an event lasso as a trace.
    pub fn from_lasso(events: Lasso<Event>) -> Trace {
        Trace { events }
    }

    /// The underlying event lasso.
    pub fn as_lasso(&self) -> &Lasso<Event> {
        &self.events
    }

    /// Length of the trace (finite or ω).
    pub fn len(&self) -> Length {
        self.events.len()
    }

    /// True iff the trace is `⊥`.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True iff the trace is finite.
    pub fn is_finite(&self) -> bool {
        self.events.is_finite()
    }

    /// True iff the trace is infinite.
    pub fn is_infinite(&self) -> bool {
        self.events.is_infinite()
    }

    /// The `i`-th event.
    pub fn get(&self, i: usize) -> Option<Event> {
        self.events.get(i).copied()
    }

    /// The first `n` events as a finite trace.
    pub fn take(&self, n: usize) -> Trace {
        Trace::finite(self.events.take(n))
    }

    /// The finite events of a finite trace; `None` if infinite.
    pub fn events(&self) -> Option<&[Event]> {
        self.is_finite().then(|| self.events.prefix())
    }

    /// Extends a finite trace by one event; `None` if infinite.
    pub fn pushed(&self, e: Event) -> Option<Trace> {
        self.events.pushed(e).map(Trace::from_lasso)
    }

    /// **Projection** `t_L` (Section 3.1.2): the subsequence of events on
    /// channels in `L`. Continuous (Fact F3) — monotone and
    /// lub-preserving, which the property tests verify.
    pub fn project(&self, l: &ChanSet) -> Trace {
        Trace {
            events: self.events.filter(|e| l.contains(e.chan)),
        }
    }

    /// The message sequence carried by channel `c` — the paper's use of a
    /// channel name as the function mapping a trace to "the sequence
    /// associated with c in the trace" (Section 4).
    pub fn seq_on(&self, c: Chan) -> Lasso<Value> {
        self.events.filter(|e| e.chan == c).map(|e| e.value)
    }

    /// The set of channels mentioned in the trace.
    pub fn channels(&self) -> ChanSet {
        let mut s = ChanSet::new();
        for e in self.events.prefix().iter().chain(self.events.cycle()) {
            s.insert(e.chan);
        }
        s
    }

    /// Prefix ordering on traces: `self ⊑ other`.
    pub fn leq(&self, other: &Trace) -> bool {
        self.events.leq(&other.events)
    }

    /// All finite prefixes of length `0..=n`, ascending (Fact F2: they form
    /// a chain whose lub is the trace, when the trace is finite or `n → ω`).
    pub fn prefixes_up_to(&self, n: usize) -> impl Iterator<Item = Trace> + '_ {
        self.events.prefixes_up_to(n).map(Trace::finite)
    }

    /// The pairs `u pre v in t` with `|v| ≤ n` — `u`, `v` finite prefixes
    /// of `t` with `|v| = |u| + 1` (Section 3.1.2). For a finite trace the
    /// built-in bound is its length.
    pub fn pre_pairs_up_to(&self, n: usize) -> impl Iterator<Item = (Trace, Trace)> + '_ {
        let max = match self.len() {
            Length::Finite(m) => m.min(n),
            Length::Infinite => n,
        };
        (1..=max).map(move |k| (self.take(k - 1), self.take(k)))
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::finite(iter)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.events.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Chan {
        Chan::new(0)
    }
    fn c() -> Chan {
        Chan::new(1)
    }
    fn d() -> Chan {
        Chan::new(2)
    }

    /// The dfm history from Section 3.1.1:
    /// (b,0)(c,1)(c,3)(d,0)(d,1)(b,2)
    fn sample() -> Trace {
        Trace::finite(vec![
            Event::int(b(), 0),
            Event::int(c(), 1),
            Event::int(c(), 3),
            Event::int(d(), 0),
            Event::int(d(), 1),
            Event::int(b(), 2),
        ])
    }

    #[test]
    fn projection_keeps_order() {
        let t = sample();
        let l = ChanSet::from_chans([b(), d()]);
        let p = t.project(&l);
        assert_eq!(
            p.events().unwrap(),
            &[
                Event::int(b(), 0),
                Event::int(d(), 0),
                Event::int(d(), 1),
                Event::int(b(), 2)
            ]
        );
    }

    #[test]
    fn seq_on_extracts_values() {
        let t = sample();
        assert_eq!(
            t.seq_on(c()),
            Lasso::finite(vec![Value::Int(1), Value::Int(3)])
        );
        assert_eq!(t.seq_on(Chan::new(9)), Lasso::empty());
    }

    #[test]
    fn channels_of_trace() {
        let t = sample();
        assert_eq!(t.channels(), ChanSet::from_chans([b(), c(), d()]));
        let w = Trace::lasso([], [Event::bit(b(), true)]);
        assert_eq!(w.channels(), ChanSet::from_chans([b()]));
    }

    #[test]
    fn prefix_order_and_take() {
        let t = sample();
        let u = t.take(2);
        assert!(u.leq(&t));
        assert!(!t.leq(&u));
        assert!(Trace::empty().leq(&t));
        assert_eq!(u.len(), Length::Finite(2));
    }

    #[test]
    fn pre_pairs_shapes() {
        let t = sample();
        let pairs: Vec<_> = t.pre_pairs_up_to(100).collect();
        assert_eq!(pairs.len(), 6);
        for (u, v) in &pairs {
            let (Length::Finite(lu), Length::Finite(lv)) = (u.len(), v.len()) else {
                panic!("finite prefixes expected")
            };
            assert_eq!(lu + 1, lv);
            assert!(u.leq(v));
        }
    }

    #[test]
    fn infinite_trace_pre_pairs_bounded() {
        let w = Trace::lasso([], [Event::bit(b(), true)]);
        assert_eq!(w.pre_pairs_up_to(4).count(), 4);
        assert!(w.is_infinite());
    }

    #[test]
    fn pushed_and_events() {
        let t = Trace::empty().pushed(Event::int(b(), 0)).unwrap();
        assert_eq!(t.events().unwrap().len(), 1);
        let w = Trace::lasso([], [Event::bit(b(), true)]);
        assert!(w.pushed(Event::int(b(), 0)).is_none());
        assert!(w.events().is_none());
    }

    #[test]
    fn projection_of_infinite_trace() {
        // ((b,0)(c,1))^ω projected on {b} is (b,0)^ω.
        let t = Trace::lasso([], [Event::int(b(), 0), Event::int(c(), 1)]);
        let p = t.project(&ChanSet::from_chans([b()]));
        assert_eq!(p, Trace::lasso([], [Event::int(b(), 0)]));
    }

    #[test]
    fn display_roundtrip_shape() {
        let t = Trace::finite(vec![Event::int(b(), 0)]);
        assert_eq!(t.to_string(), "⟨(ch0, 0)⟩");
    }
}
