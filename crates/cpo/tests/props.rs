//! Property-based tests for the cpo substrate: order laws, Lemma 1, and the
//! fixpoint theorem on randomly sampled instances.

use eqp_cpo::chain::{lemma1_dominated_lubs, Chain};
use eqp_cpo::domains::{ClampedNat, Flat, FlatElem, NatOmega, NatOrOmega, Powerset, Product};
use eqp_cpo::fixpoint::{is_least_fixpoint_among, kleene, KleeneOptions};
use eqp_cpo::func::{check_monotone_on, FnCont};
use eqp_cpo::laws::check_all_laws;
use eqp_cpo::Cpo;
use proptest::prelude::*;

fn flat_elem() -> impl Strategy<Value = FlatElem<u8>> {
    prop_oneof![
        Just(FlatElem::Bottom),
        any::<u8>().prop_map(FlatElem::Value),
    ]
}

fn nat_or_omega() -> impl Strategy<Value = NatOrOmega> {
    prop_oneof![
        (0u64..100).prop_map(NatOrOmega::Nat),
        Just(NatOrOmega::Omega),
    ]
}

proptest! {
    #[test]
    fn flat_laws(samples in proptest::collection::vec(flat_elem(), 1..12)) {
        prop_assert!(check_all_laws(&Flat::<u8>::new(), &samples).is_ok());
    }

    #[test]
    fn nat_omega_laws(samples in proptest::collection::vec(nat_or_omega(), 1..12)) {
        prop_assert!(check_all_laws(&NatOmega, &samples).is_ok());
    }

    #[test]
    fn powerset_laws(
        samples in proptest::collection::vec(
            proptest::collection::btree_set(0u32..6, 0..6), 1..10)
    ) {
        prop_assert!(check_all_laws(&Powerset::new(6), &samples).is_ok());
    }

    #[test]
    fn product_laws(
        samples in proptest::collection::vec((nat_or_omega(), flat_elem()), 1..10)
    ) {
        let d = Product::new(NatOmega, Flat::<u8>::new());
        prop_assert!(check_all_laws(&d, &samples).is_ok());
    }

    /// Lemma 1: whenever the domination hypothesis holds between two chains,
    /// the lub ordering must follow. On ω+1 we build chains from sorted
    /// random draws.
    #[test]
    fn lemma1_never_falsified(
        mut xs in proptest::collection::vec(0u64..50, 1..8),
        mut ys in proptest::collection::vec(0u64..50, 1..8),
    ) {
        xs.sort_unstable();
        ys.sort_unstable();
        let d = NatOmega;
        let s = Chain::new(&d, xs.into_iter().map(NatOrOmega::Nat).collect()).unwrap();
        let t = Chain::new(&d, ys.into_iter().map(NatOrOmega::Nat).collect()).unwrap();
        // Whenever the hypothesis applies, the conclusion must hold.
        if let Some(ok) = lemma1_dominated_lubs(&d, &s, &t) {
            prop_assert!(ok, "Lemma 1 falsified: {:?} vs {:?}", s, t);
        }
    }

    /// Fixpoint theorem on the finite chain-domain {0..max}: for every
    /// monotone h given by a sorted table, Kleene iteration finds a fixpoint
    /// that is least among all fixpoints of the (exhaustively enumerated)
    /// domain.
    #[test]
    fn kleene_yields_least_fixpoint(table in proptest::collection::vec(0u64..12, 13)) {
        // Sort the table to force monotonicity: h(x) = sorted_table[x].
        let mut t = table;
        t.sort_unstable();
        let d = ClampedNat::new(12);
        let tbl = t.clone();
        let h = FnCont::new("table", move |x: &u64| tbl[*x as usize]);
        // h must satisfy h(x) ≥ ... not necessarily inflationary; Kleene
        // ascends only if h(0) ≥ 0 — always true — and monotone keeps it
        // ascending.
        let r = kleene(&d, &h, KleeneOptions::default());
        let z = r.value.expect("finite domain must converge");
        let all: Vec<u64> = d.enumerate().collect();
        prop_assert!(is_least_fixpoint_among(&d, &h, &z, &all));
    }

    /// Monotone-by-construction table functions pass the monotonicity
    /// checker.
    #[test]
    fn sorted_tables_are_monotone(table in proptest::collection::vec(0u64..12, 13)) {
        let mut t = table;
        t.sort_unstable();
        let d = ClampedNat::new(12);
        let tbl = t.clone();
        let h = FnCont::new("table", move |x: &u64| tbl[*x as usize]);
        let samples: Vec<u64> = d.enumerate().collect();
        prop_assert!(check_monotone_on(&d, &d, &h, &samples).is_none());
    }

    /// lub_finite agrees with the maximum on ascending chains.
    #[test]
    fn lub_finite_is_max_of_chain(mut xs in proptest::collection::vec(0u64..100, 1..10)) {
        xs.sort_unstable();
        let elems: Vec<NatOrOmega> = xs.iter().copied().map(NatOrOmega::Nat).collect();
        let d = NatOmega;
        let lub = d.lub_finite(&elems).unwrap();
        prop_assert_eq!(lub, NatOrOmega::Nat(*xs.last().unwrap()));
    }
}
