//! Partial orders and complete partial orders, with domains as values.
//!
//! A *domain* is a value of a type implementing [`Poset`] (and usually
//! [`Cpo`]). Elements of the domain are values of the associated type
//! [`Poset::Elem`]. Representing domains as values (rather than as bare
//! types) lets a domain carry runtime data: the universe of a powerset
//! domain, the alphabet of a sequence domain, the component domains of a
//! product.

use std::fmt::Debug;

/// A partially ordered set over elements of type [`Poset::Elem`].
///
/// Implementors must guarantee that [`leq`](Poset::leq) is reflexive,
/// antisymmetric (with respect to `Elem`'s `Eq`), and transitive. The
/// [`laws`](crate::laws) module provides checkers that property tests use to
/// validate these guarantees on sampled elements.
pub trait Poset {
    /// The element type of this ordered set.
    type Elem: Clone + Eq + Debug;

    /// Returns `true` iff `a ⊑ b` in this order.
    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool;

    /// Returns `true` iff `a ⊑ b` and `a ≠ b`.
    fn lt(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a != b && self.leq(a, b)
    }

    /// Returns `true` iff `a ⊑ b` or `b ⊑ a` (the pair lies on a chain).
    fn comparable(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.leq(a, b) || self.leq(b, a)
    }
}

/// A complete partial order: a [`Poset`] with a bottom element in which
/// every chain has a least upper bound.
///
/// Rust cannot represent "every chain" of an infinite domain, so the lub
/// obligation is split:
///
/// * [`lub_finite`](Cpo::lub_finite) — the lub of a *finite* chain, which is
///   always its maximum element; the default implementation scans for it and
///   returns `None` when the input is not actually a chain.
/// * ω-limits of non-stabilizing chains are handled per-domain by the
///   extrapolation hooks in [`crate::fixpoint`]; a domain whose infinite
///   elements are representable (e.g. eventually periodic sequences)
///   supplies one, other domains simply never produce such chains in this
///   workspace.
pub trait Cpo: Poset {
    /// The bottom element `⊥`, below every element of the domain.
    fn bottom(&self) -> Self::Elem;

    /// Least upper bound of a finite chain, i.e. its maximum element.
    ///
    /// Returns `None` if `chain` is empty or its elements are not totally
    /// ordered by [`leq`](Poset::leq) (the set is not a chain).
    fn lub_finite(&self, chain: &[Self::Elem]) -> Option<Self::Elem> {
        let mut max: Option<&Self::Elem> = None;
        for x in chain {
            match max {
                None => max = Some(x),
                Some(m) => {
                    if self.leq(m, x) {
                        max = Some(x);
                    } else if !self.leq(x, m) {
                        return None; // incomparable pair: not a chain
                    }
                }
            }
        }
        // `max` dominates everything it was compared against, but scanning
        // keeps only a running maximum; verify domination of all elements.
        let m = max?;
        if chain.iter().all(|x| self.leq(x, m)) {
            Some(m.clone())
        } else {
            None
        }
    }

    /// Returns `true` iff `x` is the bottom element.
    fn is_bottom(&self, x: &Self::Elem) -> bool {
        *x == self.bottom()
    }
}

/// An upper bound check: `z` is an upper bound of `set` iff every element of
/// `set` is `⊑ z`.
pub fn is_upper_bound<D: Poset>(d: &D, set: &[D::Elem], z: &D::Elem) -> bool {
    set.iter().all(|x| d.leq(x, z))
}

/// A least-upper-bound check: `z` is a lub of `set` iff it is an upper bound
/// below every upper bound drawn from `candidates`.
///
/// Since an infinite domain cannot be scanned exhaustively, the caller
/// supplies the candidate upper bounds to compare against; property tests
/// use sampled candidates.
pub fn is_lub_among<D: Poset>(d: &D, set: &[D::Elem], z: &D::Elem, candidates: &[D::Elem]) -> bool {
    is_upper_bound(d, set, z)
        && candidates
            .iter()
            .filter(|y| is_upper_bound(d, set, y))
            .all(|y| d.leq(z, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{Flat, FlatElem};

    fn flat() -> Flat<u8> {
        Flat::new()
    }

    #[test]
    fn lub_finite_of_singleton_is_the_element() {
        let d = flat();
        let x = FlatElem::Value(7u8);
        assert_eq!(d.lub_finite(std::slice::from_ref(&x)), Some(x));
    }

    #[test]
    fn lub_finite_of_empty_is_none() {
        let d = flat();
        assert_eq!(d.lub_finite(&[]), None);
    }

    #[test]
    fn lub_finite_rejects_non_chain() {
        let d = flat();
        let a = FlatElem::Value(1u8);
        let b = FlatElem::Value(2u8);
        assert_eq!(d.lub_finite(&[a, b]), None);
    }

    #[test]
    fn lub_finite_bottom_then_value() {
        let d = flat();
        let chain = [FlatElem::Bottom, FlatElem::Value(3u8)];
        assert_eq!(d.lub_finite(&chain), Some(FlatElem::Value(3u8)));
    }

    #[test]
    fn upper_bound_checks() {
        let d = flat();
        let set = [FlatElem::Bottom, FlatElem::Value(3u8)];
        assert!(is_upper_bound(&d, &set, &FlatElem::Value(3u8)));
        assert!(!is_upper_bound(&d, &set, &FlatElem::Value(4u8)));
        assert!(!is_upper_bound(&d, &set, &FlatElem::Bottom));
    }

    #[test]
    fn lub_among_candidates() {
        let d = flat();
        let set = [FlatElem::Bottom];
        let candidates = [FlatElem::Bottom, FlatElem::Value(1u8), FlatElem::Value(2u8)];
        assert!(is_lub_among(&d, &set, &FlatElem::Bottom, &candidates));
        assert!(!is_lub_among(&d, &set, &FlatElem::Value(1u8), &candidates));
    }

    #[test]
    fn lt_and_comparable() {
        let d = flat();
        assert!(d.lt(&FlatElem::Bottom, &FlatElem::Value(1u8)));
        assert!(!d.lt(&FlatElem::Bottom, &FlatElem::Bottom));
        assert!(d.comparable(&FlatElem::Bottom, &FlatElem::Value(1u8)));
        assert!(!d.comparable(&FlatElem::Value(2u8), &FlatElem::Value(1u8)));
    }
}
