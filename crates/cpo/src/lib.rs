//! Complete partial orders, chains, continuous functions, and Kleene least
//! fixpoints.
//!
//! This crate is the order-theoretic substrate of the `eqp` workspace, which
//! reproduces Misra's *"Equational Reasoning About Nondeterministic
//! Processes"* (PODC 1989). Section 3 of the paper leans on a small number of
//! facts about complete partial orders (cpos) taken from Loeckx & Sieber
//! (1984); this crate implements those facts as executable, testable code:
//!
//! * [`Poset`] and [`Cpo`] — partial orders, bottom elements, and lubs of
//!   chains, with *domains as values* so that domains carrying runtime data
//!   (a powerset over a chosen universe, sequences over a chosen alphabet)
//!   fit the same trait.
//! * [`Chain`] — a validated ascending chain together with lub computation
//!   and the paper's **Lemma 1** (domination of chains implies ordering of
//!   lubs).
//! * [`ContinuousFn`] — monotone, lub-preserving functions, with composition
//!   and identity, plus property-test helpers that *check* monotonicity and
//!   (finite) continuity on sampled chains.
//! * [`fixpoint`] — the **Fixpoint Theorem** (Theorem 3 in the paper):
//!   Kleene iteration `⊥, h(⊥), h²(⊥), …` with convergence detection and a
//!   pluggable ω-limit extrapolation hook for domains (such as eventually
//!   periodic sequences) where the limit of a non-stabilizing chain is
//!   representable and `h(lim) = lim` is decidable.
//! * [`domains`] — concrete cpos used throughout the workspace and in the
//!   Theorem 4 test suite: flat domains, ω+1, finite powersets, products,
//!   and prefix-ordered finite sequences.
//!
//! # Example
//!
//! Computing a least fixpoint by Kleene iteration over the ω+1 cpo:
//!
//! ```
//! use eqp_cpo::domains::NatOmega;
//! use eqp_cpo::fixpoint::{kleene, KleeneOptions};
//! use eqp_cpo::func::FnCont;
//! use eqp_cpo::domains::NatOrOmega;
//!
//! // h(x) = min(x + 1, 3): continuous on ω+1; least fixpoint is 3.
//! let d = NatOmega;
//! let h = FnCont::new("clamp3", |x: &NatOrOmega| match *x {
//!     NatOrOmega::Nat(n) => NatOrOmega::Nat((n + 1).min(3)),
//!     NatOrOmega::Omega => NatOrOmega::Omega,
//! });
//! let r = kleene(&d, &h, KleeneOptions::default());
//! assert_eq!(r.value, Some(NatOrOmega::Nat(3)));
//! assert_eq!(r.iterations, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod domains;
pub mod fixpoint;
pub mod func;
pub mod laws;
pub mod order;

pub use chain::Chain;
pub use fixpoint::{kleene, FixpointResult, KleeneOptions};
pub use func::{Compose, ConstFn, ContinuousFn, FnCont, IdentityFn};
pub use order::{Cpo, Poset};
