//! Law checkers for [`Poset`]/[`Cpo`] implementations.
//!
//! Property tests across the workspace call these with sampled elements to
//! falsify broken order implementations. Each checker returns the first
//! counterexample it finds (`None` means the law held on the sample).

use crate::order::{Cpo, Poset};

/// Reflexivity: `x ⊑ x` for every sample.
pub fn check_reflexive<D: Poset>(d: &D, samples: &[D::Elem]) -> Option<D::Elem> {
    samples.iter().find(|x| !d.leq(x, x)).cloned()
}

/// Antisymmetry: `x ⊑ y ∧ y ⊑ x ⇒ x = y` on all sample pairs.
pub fn check_antisymmetric<D: Poset>(d: &D, samples: &[D::Elem]) -> Option<(D::Elem, D::Elem)> {
    for x in samples {
        for y in samples {
            if d.leq(x, y) && d.leq(y, x) && x != y {
                return Some((x.clone(), y.clone()));
            }
        }
    }
    None
}

/// Transitivity: `x ⊑ y ∧ y ⊑ z ⇒ x ⊑ z` on all sample triples.
pub fn check_transitive<D: Poset>(
    d: &D,
    samples: &[D::Elem],
) -> Option<(D::Elem, D::Elem, D::Elem)> {
    for x in samples {
        for y in samples {
            if !d.leq(x, y) {
                continue;
            }
            for z in samples {
                if d.leq(y, z) && !d.leq(x, z) {
                    return Some((x.clone(), y.clone(), z.clone()));
                }
            }
        }
    }
    None
}

/// Bottom: `⊥ ⊑ x` for every sample.
pub fn check_bottom_least<D: Cpo>(d: &D, samples: &[D::Elem]) -> Option<D::Elem> {
    let bot = d.bottom();
    samples.iter().find(|x| !d.leq(&bot, x)).cloned()
}

/// Runs all four law checkers; returns a description of the first failure.
pub fn check_all_laws<D: Cpo>(d: &D, samples: &[D::Elem]) -> Result<(), String> {
    if let Some(x) = check_reflexive(d, samples) {
        return Err(format!("reflexivity failed at {x:?}"));
    }
    if let Some((x, y)) = check_antisymmetric(d, samples) {
        return Err(format!("antisymmetry failed at {x:?}, {y:?}"));
    }
    if let Some((x, y, z)) = check_transitive(d, samples) {
        return Err(format!("transitivity failed at {x:?}, {y:?}, {z:?}"));
    }
    if let Some(x) = check_bottom_least(d, samples) {
        return Err(format!("bottom not least at {x:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{Flat, FlatElem, NatOmega, NatOrOmega, Powerset};

    #[test]
    fn flat_satisfies_all_laws() {
        let d = Flat::<u8>::new();
        let samples = vec![
            FlatElem::Bottom,
            FlatElem::Value(1),
            FlatElem::Value(2),
            FlatElem::Value(3),
        ];
        assert!(check_all_laws(&d, &samples).is_ok());
    }

    #[test]
    fn nat_omega_satisfies_all_laws() {
        let samples = vec![
            NatOrOmega::Nat(0),
            NatOrOmega::Nat(1),
            NatOrOmega::Nat(10),
            NatOrOmega::Omega,
        ];
        assert!(check_all_laws(&NatOmega, &samples).is_ok());
    }

    #[test]
    fn powerset_satisfies_all_laws() {
        let d = Powerset::new(3);
        assert!(check_all_laws(&d, &d.enumerate()).is_ok());
    }

    #[test]
    fn broken_order_is_caught() {
        // An intentionally broken "poset" where leq is `<` (not reflexive).
        struct Strict;
        impl Poset for Strict {
            type Elem = u8;
            fn leq(&self, a: &u8, b: &u8) -> bool {
                a < b
            }
        }
        impl Cpo for Strict {
            fn bottom(&self) -> u8 {
                0
            }
        }
        let err = check_all_laws(&Strict, &[0, 1, 2]).unwrap_err();
        assert!(err.contains("reflexivity"));
    }
}
