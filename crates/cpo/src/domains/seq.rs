//! Finite sequences under prefix ordering.

use crate::order::{Cpo, Poset};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Finite sequences over `T` ordered by *prefix*: `u ⊑ v` iff `u` is a
/// prefix of `v`.
///
/// Strictly, finite sequences alone form a cpo only for chains that
/// stabilize; the genuine cpo of the paper adjoins infinite sequences as
/// limits. The `eqp-trace` crate supplies those limits as eventually
/// periodic *lassos*; this domain is the finite skeleton, and it is all that
/// a finite computation (or a finite prefix check) ever observes. The
/// [`Cpo`] impl here is therefore sound for every chain that arises in this
/// workspace's finite-chain APIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiniteSeq<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> FiniteSeq<T> {
    /// Creates the prefix-ordered domain of finite sequences over `T`.
    pub fn new() -> Self {
        FiniteSeq {
            _marker: PhantomData,
        }
    }

    /// Returns `true` iff `u` is a prefix of `v`.
    pub fn is_prefix(u: &[T], v: &[T]) -> bool
    where
        T: Eq,
    {
        u.len() <= v.len() && u.iter().zip(v).all(|(a, b)| a == b)
    }
}

impl<T: Clone + Eq + Debug> Poset for FiniteSeq<T> {
    type Elem = Vec<T>;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        Self::is_prefix(a, b)
    }
}

impl<T: Clone + Eq + Debug> Cpo for FiniteSeq<T> {
    fn bottom(&self) -> Self::Elem {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_order_basics() {
        let d = FiniteSeq::<u8>::new();
        assert!(d.leq(&vec![], &vec![1, 2]));
        assert!(d.leq(&vec![1], &vec![1, 2]));
        assert!(!d.leq(&vec![2], &vec![1, 2]));
        assert!(!d.leq(&vec![1, 2, 3], &vec![1, 2]));
        assert!(d.leq(&vec![1, 2], &vec![1, 2]));
    }

    #[test]
    fn bottom_is_empty() {
        let d = FiniteSeq::<u8>::new();
        assert_eq!(d.bottom(), Vec::<u8>::new());
        assert!(d.is_bottom(&vec![]));
    }

    #[test]
    fn incomparable_branches() {
        let d = FiniteSeq::<u8>::new();
        assert!(!d.comparable(&vec![1, 2], &vec![1, 3]));
    }

    #[test]
    fn lub_finite_of_prefix_chain() {
        let d = FiniteSeq::<u8>::new();
        let chain = vec![vec![], vec![5], vec![5, 6]];
        assert_eq!(d.lub_finite(&chain), Some(vec![5, 6]));
    }
}
