//! A clamped-naturals lattice `{0, …, n}` under `≤` — the simplest family of
//! finite linear cpos, convenient for exhaustively checking fixpoint
//! statements (Theorem 4) because every monotone endofunction can be tested.

use crate::order::{Cpo, Poset};

/// An element of [`ClampedNat`]: a natural `≤ max`.
pub type ClampedNatElem = u64;

/// The finite linear cpo `{0, 1, …, max}` under the usual `≤`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClampedNat {
    max: u64,
}

impl ClampedNat {
    /// Creates the chain-domain `{0, …, max}`.
    pub fn new(max: u64) -> Self {
        ClampedNat { max }
    }

    /// Largest element of the domain.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Enumerates the whole (small) domain.
    pub fn enumerate(&self) -> impl Iterator<Item = u64> + '_ {
        0..=self.max
    }

    /// Returns `true` iff `x` is in the domain.
    pub fn contains_elem(&self, x: u64) -> bool {
        x <= self.max
    }
}

impl Poset for ClampedNat {
    type Elem = ClampedNatElem;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a <= b
    }
}

impl Cpo for ClampedNat {
    fn bottom(&self) -> Self::Elem {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_order() {
        let d = ClampedNat::new(5);
        assert!(d.leq(&0, &5));
        assert!(!d.leq(&5, &4));
        assert_eq!(d.bottom(), 0);
        assert_eq!(d.max(), 5);
    }

    #[test]
    fn enumeration_and_membership() {
        let d = ClampedNat::new(3);
        let all: Vec<u64> = d.enumerate().collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(d.contains_elem(3));
        assert!(!d.contains_elem(4));
    }
}
