//! Finite powerset cpos ordered by inclusion.

use crate::order::{Cpo, Poset};
use std::collections::BTreeSet;

/// An element of a powerset domain: a subset of the universe, kept sorted
/// for canonical equality.
pub type PowersetElem = BTreeSet<u32>;

/// The powerset of a finite universe `{0, 1, …, n-1}` ordered by `⊆`.
///
/// This is a complete lattice, hence a cpo, and — unlike the sequence
/// domains the paper works in — it is *not* linearly ordered, which makes it
/// a useful stress domain for Theorem 4 (least fixpoint as the unique smooth
/// solution of `id ⟸ h` must hold in any cpo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Powerset {
    universe_size: u32,
}

impl Powerset {
    /// Creates the powerset domain over `{0, …, universe_size - 1}`.
    pub fn new(universe_size: u32) -> Self {
        Powerset { universe_size }
    }

    /// Size of the underlying universe.
    pub fn universe_size(&self) -> u32 {
        self.universe_size
    }

    /// Returns `true` iff `s` only mentions universe members.
    pub fn contains_elem(&self, s: &PowersetElem) -> bool {
        s.iter().all(|&x| x < self.universe_size)
    }

    /// The top element: the full universe.
    pub fn top(&self) -> PowersetElem {
        (0..self.universe_size).collect()
    }

    /// Enumerates every element of the domain (2^n subsets). Intended for
    /// exhaustive checks with small universes.
    ///
    /// # Panics
    ///
    /// Panics if the universe has more than 20 members (enumeration would
    /// exceed 2²⁰ subsets).
    pub fn enumerate(&self) -> Vec<PowersetElem> {
        assert!(
            self.universe_size <= 20,
            "refusing to enumerate 2^{} subsets",
            self.universe_size
        );
        let n = self.universe_size;
        (0u32..(1 << n))
            .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
            .collect()
    }
}

impl Poset for Powerset {
    type Elem = PowersetElem;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a.is_subset(b)
    }
}

impl Cpo for Powerset {
    fn bottom(&self) -> Self::Elem {
        BTreeSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[u32]) -> PowersetElem {
        xs.iter().copied().collect()
    }

    #[test]
    fn inclusion_order() {
        let d = Powerset::new(4);
        assert!(d.leq(&set(&[1]), &set(&[1, 2])));
        assert!(!d.leq(&set(&[1, 3]), &set(&[1, 2])));
        assert!(d.leq(&d.bottom(), &set(&[0, 1, 2, 3])));
    }

    #[test]
    fn top_and_membership() {
        let d = Powerset::new(3);
        assert_eq!(d.top(), set(&[0, 1, 2]));
        assert!(d.contains_elem(&set(&[2])));
        assert!(!d.contains_elem(&set(&[3])));
        assert_eq!(d.universe_size(), 3);
    }

    #[test]
    fn enumeration_is_complete_and_distinct() {
        let d = Powerset::new(3);
        let all = d.enumerate();
        assert_eq!(all.len(), 8);
        let distinct: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn incomparable_elements_exist() {
        let d = Powerset::new(2);
        assert!(!d.comparable(&set(&[0]), &set(&[1])));
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn enumerate_refuses_large_universe() {
        Powerset::new(25).enumerate();
    }
}
