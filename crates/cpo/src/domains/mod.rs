//! Concrete cpos used across the workspace and in the Theorem 4 test suite.
//!
//! * [`Flat`] — the flat domain `⊥ ⊑ v` for incomparable values `v` (the
//!   paper's `{T, F, ⊥}` in Section 4.3 is `Flat<Bit>`).
//! * [`NatOmega`] — the ordinal ω+1: naturals under `≤` with a top `ω`; a
//!   linearly ordered cpo with a genuinely infinite chain.
//! * [`Powerset`] — finite powersets ordered by inclusion; a non-linear cpo
//!   exercising Theorem 4 away from sequence-like domains.
//! * [`Product`] — the componentwise product of two cpos (the paper's note
//!   in Section 4 on combining multiple descriptions into one uses exactly
//!   this ordering on pairs).
//! * [`VecProduct`] — an n-ary homogeneous product, used for tuple-valued
//!   descriptions.
//! * [`Lift`] — adjoins a fresh bottom below any poset.
//! * [`FiniteSeq`] — finite sequences under prefix ordering (a cpo once the
//!   eventually-periodic limits of `eqp-trace` are adjoined; on its own it
//!   is the finite skeleton every computation observes).

mod flat;
mod lattice_interval;
mod lift;
mod nat;
mod powerset;
mod product;
mod seq;

pub use flat::{Flat, FlatElem};
pub use lattice_interval::{ClampedNat, ClampedNatElem};
pub use lift::{Lift, Lifted};
pub use nat::{NatOmega, NatOrOmega};
pub use powerset::{Powerset, PowersetElem};
pub use product::{Product, VecProduct};
pub use seq::FiniteSeq;
