//! Lifting: adjoining a fresh bottom below an existing poset.
//!
//! `Lift<D>` turns any poset into a cpo-with-⊥ (the classic construction
//! that makes flat domains out of discrete sets: `Flat<T>` is
//! `Lift<Discrete<T>>` conceptually). Used by tests that need a cpo whose
//! bottom is *not* an element of the original order.

use crate::order::{Cpo, Poset};

/// An element of the lifted domain: the new bottom, or an injected
/// element of the base poset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Lifted<E> {
    /// The adjoined bottom, strictly below every injected element.
    Bottom,
    /// An element of the base poset, ordered as before.
    Up(E),
}

impl<E> Lifted<E> {
    /// Returns the injected element, or `None` for the new bottom.
    pub fn up(&self) -> Option<&E> {
        match self {
            Lifted::Bottom => None,
            Lifted::Up(e) => Some(e),
        }
    }
}

/// The lift of a poset `D`: same order on injected elements, plus a fresh
/// least element.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lift<D> {
    base: D,
}

impl<D> Lift<D> {
    /// Lifts `base`.
    pub fn new(base: D) -> Lift<D> {
        Lift { base }
    }

    /// The base poset.
    pub fn base(&self) -> &D {
        &self.base
    }
}

impl<D: Poset> Poset for Lift<D> {
    type Elem = Lifted<D::Elem>;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        match (a, b) {
            (Lifted::Bottom, _) => true,
            (Lifted::Up(_), Lifted::Bottom) => false,
            (Lifted::Up(x), Lifted::Up(y)) => self.base.leq(x, y),
        }
    }
}

impl<D: Poset> Cpo for Lift<D> {
    fn bottom(&self) -> Self::Elem {
        Lifted::Bottom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Powerset;
    use crate::laws::check_all_laws;

    #[test]
    fn lift_of_powerset_laws() {
        let d = Lift::new(Powerset::new(3));
        let mut samples: Vec<Lifted<_>> = Powerset::new(3)
            .enumerate()
            .into_iter()
            .map(Lifted::Up)
            .collect();
        samples.push(Lifted::Bottom);
        assert!(check_all_laws(&d, &samples).is_ok());
    }

    #[test]
    fn new_bottom_strictly_below_old_bottom() {
        let d = Lift::new(Powerset::new(2));
        let old_bot = Lifted::Up(Powerset::new(2).bottom());
        assert!(d.lt(&Lifted::Bottom, &old_bot));
        assert!(!d.leq(&old_bot, &Lifted::Bottom));
        assert_eq!(d.bottom(), Lifted::Bottom);
    }

    #[test]
    fn up_accessor() {
        let e: Lifted<u8> = Lifted::Up(5);
        assert_eq!(e.up(), Some(&5));
        assert_eq!(Lifted::<u8>::Bottom.up(), None);
        let d = Lift::new(Powerset::new(2));
        assert_eq!(d.base().universe_size(), 2);
    }
}
