//! The ordinal ω+1 as a cpo: naturals under `≤` with a top element ω.

use crate::order::{Cpo, Poset};

/// An element of ω+1: a natural number or the limit ordinal ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NatOrOmega {
    /// A finite natural number.
    Nat(u64),
    /// The limit ω, above every natural.
    Omega,
}

impl NatOrOmega {
    /// Successor, saturating at ω (which is its own successor here only in
    /// the sense that ω has no finite successor; `succ(ω) = ω`).
    pub fn succ(self) -> Self {
        match self {
            NatOrOmega::Nat(n) => NatOrOmega::Nat(n + 1),
            NatOrOmega::Omega => NatOrOmega::Omega,
        }
    }

    /// Returns the natural number, or `None` for ω.
    pub fn as_nat(self) -> Option<u64> {
        match self {
            NatOrOmega::Nat(n) => Some(n),
            NatOrOmega::Omega => None,
        }
    }
}

impl PartialOrd for NatOrOmega {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NatOrOmega {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use NatOrOmega::*;
        match (self, other) {
            (Nat(a), Nat(b)) => a.cmp(b),
            (Nat(_), Omega) => std::cmp::Ordering::Less,
            (Omega, Nat(_)) => std::cmp::Ordering::Greater,
            (Omega, Omega) => std::cmp::Ordering::Equal,
        }
    }
}

impl From<u64> for NatOrOmega {
    fn from(n: u64) -> Self {
        NatOrOmega::Nat(n)
    }
}

/// The cpo ω+1. Linearly ordered; every chain has a lub (a maximum if the
/// chain is finite or stabilizes, ω otherwise).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NatOmega;

impl Poset for NatOmega {
    type Elem = NatOrOmega;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a <= b
    }
}

impl Cpo for NatOmega {
    fn bottom(&self) -> Self::Elem {
        NatOrOmega::Nat(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_order() {
        let d = NatOmega;
        assert!(d.leq(&NatOrOmega::Nat(1), &NatOrOmega::Nat(2)));
        assert!(!d.leq(&NatOrOmega::Nat(2), &NatOrOmega::Nat(1)));
        assert!(d.leq(&NatOrOmega::Nat(1_000_000), &NatOrOmega::Omega));
        assert!(!d.leq(&NatOrOmega::Omega, &NatOrOmega::Nat(1_000_000)));
        assert!(d.leq(&NatOrOmega::Omega, &NatOrOmega::Omega));
    }

    #[test]
    fn bottom_is_zero() {
        assert_eq!(NatOmega.bottom(), NatOrOmega::Nat(0));
    }

    #[test]
    fn succ_behaviour() {
        assert_eq!(NatOrOmega::Nat(3).succ(), NatOrOmega::Nat(4));
        assert_eq!(NatOrOmega::Omega.succ(), NatOrOmega::Omega);
        assert_eq!(NatOrOmega::from(2u64).as_nat(), Some(2));
        assert_eq!(NatOrOmega::Omega.as_nat(), None);
    }

    #[test]
    fn lub_finite_is_max() {
        let d = NatOmega;
        let chain = vec![
            NatOrOmega::Nat(0),
            NatOrOmega::Nat(3),
            NatOrOmega::Nat(3),
            NatOrOmega::Omega,
        ];
        assert_eq!(d.lub_finite(&chain), Some(NatOrOmega::Omega));
    }
}
