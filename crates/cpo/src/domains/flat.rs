//! Flat domains: `⊥` below pairwise-incomparable values.

use crate::order::{Cpo, Poset};
use std::fmt::Debug;
use std::marker::PhantomData;

/// An element of a flat domain: either `⊥` or an injected value.
///
/// In the paper's Random Bit process (Section 4.3) the domain of `R` is the
/// flat domain over `{T, F}`: `⊥ ⊑ T`, `⊥ ⊑ F`, and `T`, `F` incomparable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlatElem<T> {
    /// The bottom element `⊥`.
    Bottom,
    /// An injected value, incomparable with every other injected value.
    Value(T),
}

impl<T> FlatElem<T> {
    /// Returns the injected value, or `None` for `⊥`.
    pub fn value(&self) -> Option<&T> {
        match self {
            FlatElem::Bottom => None,
            FlatElem::Value(v) => Some(v),
        }
    }
}

impl<T> From<T> for FlatElem<T> {
    fn from(v: T) -> Self {
        FlatElem::Value(v)
    }
}

/// The flat domain over values of type `T`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flat<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Flat<T> {
    /// Creates the flat domain over `T`.
    pub fn new() -> Self {
        Flat {
            _marker: PhantomData,
        }
    }
}

impl<T: Clone + Eq + Debug> Poset for Flat<T> {
    type Elem = FlatElem<T>;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        matches!(a, FlatElem::Bottom) || a == b
    }
}

impl<T: Clone + Eq + Debug> Cpo for Flat<T> {
    fn bottom(&self) -> Self::Elem {
        FlatElem::Bottom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_below_everything() {
        let d = Flat::<char>::new();
        assert!(d.leq(&FlatElem::Bottom, &FlatElem::Value('x')));
        assert!(d.leq(&FlatElem::Bottom, &FlatElem::Bottom));
    }

    #[test]
    fn values_incomparable() {
        let d = Flat::<char>::new();
        assert!(!d.leq(&FlatElem::Value('x'), &FlatElem::Value('y')));
        assert!(!d.leq(&FlatElem::Value('y'), &FlatElem::Value('x')));
        assert!(d.leq(&FlatElem::Value('x'), &FlatElem::Value('x')));
    }

    #[test]
    fn value_not_below_bottom() {
        let d = Flat::<char>::new();
        assert!(!d.leq(&FlatElem::Value('x'), &FlatElem::Bottom));
    }

    #[test]
    fn value_accessor_and_from() {
        let e: FlatElem<u8> = 5u8.into();
        assert_eq!(e.value(), Some(&5));
        assert_eq!(FlatElem::<u8>::Bottom.value(), None);
    }
}
