//! Product cpos: pairs and homogeneous n-tuples ordered componentwise.

use crate::order::{Cpo, Poset};

/// The product of two cpos ordered componentwise:
/// `(a₁, b₁) ⊑ (a₂, b₂)` iff `a₁ ⊑ a₂` and `b₁ ⊑ b₂`.
///
/// The paper uses exactly this construction in its "Note on Multiple
/// Descriptions" (Section 4): two descriptions `f' ⟸ g'` and `f'' ⟸ g''`
/// combine into one description whose sides are pairs, with
/// `f(v) ⊑ g(u) ≡ f'(v) ⊑ g'(u) ∧ f''(v) ⊑ g''(u)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Product<A, B> {
    /// Left component domain.
    pub left: A,
    /// Right component domain.
    pub right: B,
}

impl<A, B> Product<A, B> {
    /// Creates the product of `left` and `right`.
    pub fn new(left: A, right: B) -> Self {
        Product { left, right }
    }
}

impl<A: Poset, B: Poset> Poset for Product<A, B> {
    type Elem = (A::Elem, B::Elem);

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.left.leq(&a.0, &b.0) && self.right.leq(&a.1, &b.1)
    }
}

impl<A: Cpo, B: Cpo> Cpo for Product<A, B> {
    fn bottom(&self) -> Self::Elem {
        (self.left.bottom(), self.right.bottom())
    }
}

/// A homogeneous n-ary product `Dⁿ` ordered componentwise.
///
/// Elements are `Vec`s of length `n`; comparing elements of differing
/// lengths yields `false` (they live in different domains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecProduct<D> {
    component: D,
    arity: usize,
}

impl<D> VecProduct<D> {
    /// Creates the `arity`-fold product of `component`.
    pub fn new(component: D, arity: usize) -> Self {
        VecProduct { component, arity }
    }

    /// The shared component domain.
    pub fn component(&self) -> &D {
        &self.component
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl<D: Poset> Poset for VecProduct<D> {
    type Elem = Vec<D::Elem>;

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a.len() == self.arity
            && b.len() == self.arity
            && a.iter().zip(b).all(|(x, y)| self.component.leq(x, y))
    }
}

impl<D: Cpo> Cpo for VecProduct<D> {
    fn bottom(&self) -> Self::Elem {
        (0..self.arity).map(|_| self.component.bottom()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{Flat, FlatElem, NatOmega, NatOrOmega};

    #[test]
    fn pair_order_is_componentwise() {
        let d = Product::new(NatOmega, Flat::<char>::new());
        let lo = (NatOrOmega::Nat(1), FlatElem::Bottom);
        let hi = (NatOrOmega::Nat(2), FlatElem::Value('a'));
        assert!(d.leq(&lo, &hi));
        assert!(!d.leq(&hi, &lo));
    }

    #[test]
    fn pair_incomparable_when_components_disagree() {
        let d = Product::new(NatOmega, NatOmega);
        let a = (NatOrOmega::Nat(1), NatOrOmega::Nat(5));
        let b = (NatOrOmega::Nat(2), NatOrOmega::Nat(3));
        assert!(!d.comparable(&a, &b));
    }

    #[test]
    fn pair_bottom() {
        let d = Product::new(NatOmega, Flat::<char>::new());
        assert_eq!(d.bottom(), (NatOrOmega::Nat(0), FlatElem::Bottom));
    }

    #[test]
    fn vec_product_order_and_bottom() {
        let d = VecProduct::new(NatOmega, 3);
        let bot = d.bottom();
        assert_eq!(bot.len(), 3);
        let mid = vec![NatOrOmega::Nat(1), NatOrOmega::Nat(0), NatOrOmega::Omega];
        assert!(d.leq(&bot, &mid));
        assert!(!d.leq(&mid, &bot));
        assert_eq!(d.arity(), 3);
    }

    #[test]
    fn vec_product_rejects_wrong_arity() {
        let d = VecProduct::new(NatOmega, 2);
        let wrong = vec![NatOrOmega::Nat(0)];
        assert!(!d.leq(&wrong, &d.bottom()));
        assert!(!d.leq(&d.bottom(), &wrong));
    }
}
