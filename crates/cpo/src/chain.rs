//! Validated ascending chains and the paper's Lemma 1.

use crate::order::{Cpo, Poset};

/// A finite ascending chain `x⁰ ⊑ x¹ ⊑ … ⊑ xⁿ` in some domain, validated at
/// construction.
///
/// The paper (Section 6) works with *countable* chains indexed by the
/// naturals with `x⁰ = ⊥`; [`Chain::countable`] enforces that shape, while
/// [`Chain::new`] accepts any finite ascending sequence. Elements may
/// repeat (`⊑` is reflexive), matching the paper's use of chains that
/// stabilize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain<E> {
    elems: Vec<E>,
}

impl<E: Clone + Eq + std::fmt::Debug> Chain<E> {
    /// Builds a chain from `elems`, verifying that consecutive elements are
    /// ascending under `d`'s order. Returns `None` if they are not, or if
    /// `elems` is empty.
    pub fn new<D: Poset<Elem = E>>(d: &D, elems: Vec<E>) -> Option<Self> {
        if elems.is_empty() {
            return None;
        }
        if elems.windows(2).all(|w| d.leq(&w[0], &w[1])) {
            Some(Chain { elems })
        } else {
            None
        }
    }

    /// Builds a *countable-style* chain: ascending and starting at `⊥`
    /// (Section 6 of the paper). Returns `None` otherwise.
    pub fn countable<D: Cpo<Elem = E>>(d: &D, elems: Vec<E>) -> Option<Self> {
        if elems.first() != Some(&d.bottom()) {
            return None;
        }
        Self::new(d, elems)
    }

    /// The elements of the chain, in ascending order.
    pub fn elems(&self) -> &[E] {
        &self.elems
    }

    /// Number of elements in the chain.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the chain is empty (never true for a constructed chain).
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The lub of this finite chain: its last (maximum) element.
    pub fn lub(&self) -> &E {
        self.elems.last().expect("chains are nonempty")
    }

    /// Iterates over consecutive pairs `(xⁿ, xⁿ⁺¹)` — the paper's
    /// `u pre v in S` relation for chains (Section 6).
    pub fn pre_pairs(&self) -> impl Iterator<Item = (&E, &E)> {
        self.elems.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Applies `f` pointwise, producing the image chain `f(S)`.
    ///
    /// By monotonicity of `f` the image of a chain is a chain (the paper
    /// notes this under the definition of continuity); this method trusts
    /// the caller's `f` and re-validates in debug builds only via the
    /// returned chain's invariant being checked by [`Chain::new`] in tests.
    pub fn map<F: Fn(&E) -> E2, E2: Clone + Eq + std::fmt::Debug>(&self, f: F) -> Chain<E2> {
        Chain {
            elems: self.elems.iter().map(f).collect(),
        }
    }
}

/// **Lemma 1** (Loeckx & Sieber 4.11, as quoted in the paper): if for every
/// `x` in chain `S` there is a `y` in chain `T` with `x ⊑ y`, then
/// `lub(S) ⊑ lub(T)`.
///
/// For the finite chains this crate manipulates, the lemma is directly
/// checkable; this function verifies the hypothesis and, when it holds,
/// asserts (and returns) the conclusion. It returns:
///
/// * `Some(true)` — hypothesis holds and `lub(S) ⊑ lub(T)` (the lemma's
///   guarantee; always the case when the hypothesis holds).
/// * `Some(false)` — hypothesis holds but the conclusion fails, which would
///   falsify the lemma (never observed; a test asserts this is impossible).
/// * `None` — the hypothesis fails, so the lemma does not apply.
pub fn lemma1_dominated_lubs<D: Cpo>(
    d: &D,
    s: &Chain<D::Elem>,
    t: &Chain<D::Elem>,
) -> Option<bool> {
    let hypothesis = s
        .elems()
        .iter()
        .all(|x| t.elems().iter().any(|y| d.leq(x, y)));
    if !hypothesis {
        return None;
    }
    Some(d.leq(s.lub(), t.lub()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{FiniteSeq, NatOmega, NatOrOmega};

    #[test]
    fn chain_construction_validates_order() {
        let d = FiniteSeq::<u8>::new();
        let ok = Chain::new(&d, vec![vec![], vec![1], vec![1, 2]]);
        assert!(ok.is_some());
        let bad = Chain::new(&d, vec![vec![1], vec![2]]);
        assert!(bad.is_none());
        let empty: Option<Chain<Vec<u8>>> = Chain::new(&d, vec![]);
        assert!(empty.is_none());
    }

    #[test]
    fn countable_chain_requires_bottom_start() {
        let d = FiniteSeq::<u8>::new();
        assert!(Chain::countable(&d, vec![vec![1]]).is_none());
        assert!(Chain::countable(&d, vec![vec![], vec![1]]).is_some());
    }

    #[test]
    fn lub_is_last_element() {
        let d = FiniteSeq::<u8>::new();
        let c = Chain::new(&d, vec![vec![], vec![9], vec![9, 9]]).unwrap();
        assert_eq!(c.lub(), &vec![9u8, 9]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn pre_pairs_are_consecutive() {
        let d = NatOmega;
        let c = Chain::new(
            &d,
            vec![NatOrOmega::Nat(0), NatOrOmega::Nat(1), NatOrOmega::Nat(2)],
        )
        .unwrap();
        let pairs: Vec<_> = c.pre_pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (&NatOrOmega::Nat(0), &NatOrOmega::Nat(1)));
    }

    #[test]
    fn lemma1_applies_when_dominated() {
        let d = FiniteSeq::<u8>::new();
        let s = Chain::new(&d, vec![vec![], vec![1]]).unwrap();
        let t = Chain::new(&d, vec![vec![], vec![1], vec![1, 2]]).unwrap();
        assert_eq!(lemma1_dominated_lubs(&d, &s, &t), Some(true));
    }

    #[test]
    fn lemma1_hypothesis_can_fail() {
        let d = FiniteSeq::<u8>::new();
        let s = Chain::new(&d, vec![vec![3u8]]).unwrap();
        let t = Chain::new(&d, vec![vec![4u8]]).unwrap();
        assert_eq!(lemma1_dominated_lubs(&d, &s, &t), None);
    }

    #[test]
    fn chain_map_preserves_shape() {
        let d = NatOmega;
        let c = Chain::new(&d, vec![NatOrOmega::Nat(0), NatOrOmega::Nat(2)]).unwrap();
        let mapped = c.map(|x| match x {
            NatOrOmega::Nat(n) => NatOrOmega::Nat(n + 1),
            NatOrOmega::Omega => NatOrOmega::Omega,
        });
        assert_eq!(mapped.elems(), &[NatOrOmega::Nat(1), NatOrOmega::Nat(3)]);
    }
}
