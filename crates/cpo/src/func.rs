//! Continuous functions between cpos.
//!
//! A function `f : D → E` between cpos is *continuous* iff it is monotone
//! and preserves lubs of chains (paper, Section 3). Continuity of a Rust
//! closure cannot be checked statically, so this module takes the standard
//! shallow-embedding approach:
//!
//! * [`ContinuousFn`] is the trait contract — implementors *assert*
//!   continuity;
//! * [`check_monotone_on`] and [`check_preserves_finite_lubs`] are runtime
//!   validators used by unit and property tests to falsify bogus
//!   implementations on sampled inputs;
//! * the `eqp-seqfn` crate builds continuous functions *by construction*
//!   from a combinator algebra, so the trusted base stays small.

use crate::chain::Chain;
use crate::order::{Cpo, Poset};
use std::fmt;
use std::sync::Arc;

/// A (asserted-)continuous function from domain `D` to domain `E`.
///
/// Implementations must be monotone and preserve lubs of chains. The
/// checkers in this module falsify violations on sampled data; the
/// combinator algebra in `eqp-seqfn` guarantees the property structurally.
pub trait ContinuousFn<D: Poset, E: Poset> {
    /// Applies the function to an element of `D`.
    fn apply(&self, x: &D::Elem) -> E::Elem;

    /// A short human-readable name, used in diagnostics.
    fn name(&self) -> &str {
        "<anonymous>"
    }
}

/// A continuous function wrapped from a closure, with a diagnostic name.
///
/// The caller asserts continuity; tests should validate with
/// [`check_monotone_on`].
#[derive(Clone)]
pub struct FnCont<A, B> {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&A) -> B + Send + Sync>,
}

impl<A, B> FnCont<A, B> {
    /// Wraps `f` under diagnostic name `name`.
    pub fn new(name: impl Into<String>, f: impl Fn(&A) -> B + Send + Sync + 'static) -> Self {
        FnCont {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// Applies the wrapped closure directly.
    pub fn call(&self, x: &A) -> B {
        (self.f)(x)
    }
}

impl<A, B> fmt::Debug for FnCont<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnCont({})", self.name)
    }
}

impl<D, E> ContinuousFn<D, E> for FnCont<D::Elem, E::Elem>
where
    D: Poset,
    E: Poset,
{
    fn apply(&self, x: &D::Elem) -> E::Elem {
        (self.f)(x)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The identity function on a domain — the `id` of the paper's Theorem 4
/// (`id ⟸ h` has the least fixpoint of `h` as its unique smooth solution).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityFn;

impl<D: Poset> ContinuousFn<D, D> for IdentityFn {
    fn apply(&self, x: &D::Elem) -> D::Elem {
        x.clone()
    }

    fn name(&self) -> &str {
        "id"
    }
}

/// A constant function — continuous for any constant; `K ⟸ K` is the
/// paper's description of CHAOS (Section 4.1).
#[derive(Debug, Clone)]
pub struct ConstFn<B> {
    value: B,
}

impl<B> ConstFn<B> {
    /// Creates the constant function returning `value`.
    pub fn new(value: B) -> Self {
        ConstFn { value }
    }

    /// The constant value.
    pub fn value(&self) -> &B {
        &self.value
    }
}

impl<D: Poset, E: Poset> ContinuousFn<D, E> for ConstFn<E::Elem> {
    fn apply(&self, _x: &D::Elem) -> E::Elem {
        self.value.clone()
    }

    fn name(&self) -> &str {
        "const"
    }
}

/// Composition `g ∘ f` of continuous functions — continuous because
/// continuity is closed under composition.
///
/// The middle domain `Mid` appears as a type parameter so the compiler can
/// relate `F : D → Mid` and `G : Mid → R`.
pub struct Compose<F, G, Mid> {
    first: F,
    second: G,
    name: String,
    _mid: std::marker::PhantomData<fn() -> Mid>,
}

impl<F, G, Mid> Compose<F, G, Mid> {
    /// Creates `second ∘ first` (apply `first`, then `second`).
    pub fn new(first: F, second: G) -> Self {
        Compose {
            first,
            second,
            name: String::from("compose"),
            _mid: std::marker::PhantomData,
        }
    }
}

impl<D, Mid, R, F, G> ContinuousFn<D, R> for Compose<F, G, Mid>
where
    D: Poset,
    Mid: Poset,
    R: Poset,
    F: ContinuousFn<D, Mid>,
    G: ContinuousFn<Mid, R>,
{
    fn apply(&self, x: &D::Elem) -> R::Elem {
        self.second.apply(&self.first.apply(x))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Checks monotonicity of `f` on every ordered pair drawn from `samples`:
/// whenever `x ⊑ y`, require `f(x) ⊑ f(y)`. Returns the first violating
/// pair, or `None` if monotone on the sample.
pub fn check_monotone_on<D: Poset, E: Poset, F: ContinuousFn<D, E>>(
    d: &D,
    e: &E,
    f: &F,
    samples: &[D::Elem],
) -> Option<(D::Elem, D::Elem)> {
    for x in samples {
        for y in samples {
            if d.leq(x, y) && !e.leq(&f.apply(x), &f.apply(y)) {
                return Some((x.clone(), y.clone()));
            }
        }
    }
    None
}

/// Checks that `f` preserves the lub of a finite chain:
/// `f(lub S) = lub f(S)`. Returns `false` on violation.
///
/// For finite chains the lub is the maximum, so this validates the finite
/// shadow of continuity (full continuity additionally needs ω-chains, which
/// the lasso-based tests in `eqp-trace`/`eqp-seqfn` cover).
pub fn check_preserves_finite_lubs<D: Cpo, E: Cpo, F: ContinuousFn<D, E>>(
    d: &D,
    e: &E,
    f: &F,
    chain: &Chain<D::Elem>,
) -> bool {
    let _ = d;
    let image = chain.map(|x| f.apply(x));
    // the image of a chain under a monotone f must itself be ascending
    let ascending = image.elems().windows(2).all(|w| e.leq(&w[0], &w[1]));
    let lhs = f.apply(chain.lub());
    ascending && e.lub_finite(image.elems()) == Some(lhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{NatOmega, NatOrOmega};

    fn inc() -> FnCont<NatOrOmega, NatOrOmega> {
        FnCont::new("inc", |x: &NatOrOmega| x.succ())
    }

    #[test]
    fn identity_applies() {
        let id = IdentityFn;
        let x = NatOrOmega::Nat(4);
        assert_eq!(
            <IdentityFn as ContinuousFn<NatOmega, NatOmega>>::apply(&id, &x),
            x
        );
        assert_eq!(
            <IdentityFn as ContinuousFn<NatOmega, NatOmega>>::name(&id),
            "id"
        );
    }

    #[test]
    fn const_ignores_input() {
        let k = ConstFn::new(NatOrOmega::Nat(9));
        assert_eq!(
            <ConstFn<_> as ContinuousFn<NatOmega, NatOmega>>::apply(&k, &NatOrOmega::Omega),
            NatOrOmega::Nat(9)
        );
        assert_eq!(k.value(), &NatOrOmega::Nat(9));
    }

    #[test]
    fn compose_applies_in_order() {
        let c = Compose::new(inc(), inc());
        let out = <Compose<_, _, NatOmega> as ContinuousFn<NatOmega, NatOmega>>::apply(
            &c,
            &NatOrOmega::Nat(0),
        );
        assert_eq!(out, NatOrOmega::Nat(2));
    }

    #[test]
    fn monotone_checker_accepts_inc() {
        let samples = vec![
            NatOrOmega::Nat(0),
            NatOrOmega::Nat(1),
            NatOrOmega::Nat(5),
            NatOrOmega::Omega,
        ];
        assert!(check_monotone_on(&NatOmega, &NatOmega, &inc(), &samples).is_none());
    }

    #[test]
    fn monotone_checker_rejects_decreasing() {
        let dec = FnCont::new("dec-ish", |x: &NatOrOmega| match x {
            NatOrOmega::Nat(n) => NatOrOmega::Nat(100u64.saturating_sub(*n)),
            NatOrOmega::Omega => NatOrOmega::Nat(0),
        });
        let samples = vec![NatOrOmega::Nat(0), NatOrOmega::Nat(1)];
        assert!(check_monotone_on(&NatOmega, &NatOmega, &dec, &samples).is_some());
    }

    #[test]
    fn finite_lub_preservation_for_inc() {
        let chain = Chain::new(
            &NatOmega,
            vec![NatOrOmega::Nat(0), NatOrOmega::Nat(2), NatOrOmega::Nat(7)],
        )
        .unwrap();
        assert!(check_preserves_finite_lubs(
            &NatOmega,
            &NatOmega,
            &inc(),
            &chain
        ));
    }

    #[test]
    fn fncont_debug_shows_name() {
        let f = inc();
        assert_eq!(format!("{f:?}"), "FnCont(inc)");
        assert_eq!(f.call(&NatOrOmega::Nat(1)), NatOrOmega::Nat(2));
    }
}
