//! The Fixpoint Theorem (paper's Theorem 3): Kleene iteration.
//!
//! For a continuous `h : D → D`, the chain `T = {hⁱ(⊥) | i ≥ 0}` is
//! ascending and `lub(T)` is the least fixpoint of `h`. [`kleene`] computes
//! that chain, detecting stabilization; for domains whose infinite limits
//! are representable (eventually periodic sequences in `eqp-trace`), an
//! [`Extrapolate`] hook conjectures the ω-limit from the chain's shape and
//! *verifies* `h(lim) = lim` before accepting it, keeping the result sound.

use crate::func::ContinuousFn;
use crate::order::Cpo;

/// Options controlling Kleene iteration.
#[derive(Debug, Clone, Copy)]
pub struct KleeneOptions {
    /// Maximum number of applications of `h` before giving up (or invoking
    /// the extrapolation hook).
    pub max_iter: usize,
}

impl Default for KleeneOptions {
    fn default() -> Self {
        KleeneOptions { max_iter: 10_000 }
    }
}

/// Outcome of a Kleene iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixpointResult<E> {
    /// The least fixpoint, if found (stabilized or verified extrapolation).
    pub value: Option<E>,
    /// Number of applications of `h` performed.
    pub iterations: usize,
    /// The recorded ascent `⊥, h(⊥), …` (truncated to what was computed).
    pub chain: Vec<E>,
    /// True iff the chain stabilized exactly (as opposed to a verified
    /// ω-limit extrapolation).
    pub stabilized: bool,
}

/// Computes the least fixpoint of `h` by Kleene iteration from `⊥`.
///
/// Iterates until `h(x) = x` (stabilization) or `opts.max_iter` steps. The
/// ascent chain is recorded in the result; on non-convergence `value` is
/// `None` and the caller may inspect the chain (e.g. to extrapolate an
/// ω-limit with [`kleene_extrapolated`]).
///
/// # Panics
///
/// Panics if the iteration ever *descends* — that would mean `h` is not
/// monotone on the ascent, violating the continuity contract.
pub fn kleene<D, H>(d: &D, h: &H, opts: KleeneOptions) -> FixpointResult<D::Elem>
where
    D: Cpo,
    H: ContinuousFn<D, D>,
{
    let mut chain = vec![d.bottom()];
    let mut x = d.bottom();
    for i in 0..opts.max_iter {
        let next = h.apply(&x);
        assert!(
            d.leq(&x, &next),
            "Kleene ascent violated at step {i}: h is not monotone (h named {:?})",
            h.name()
        );
        if next == x {
            return FixpointResult {
                value: Some(x),
                iterations: i + 1,
                chain,
                stabilized: true,
            };
        }
        chain.push(next.clone());
        x = next;
    }
    FixpointResult {
        value: None,
        iterations: opts.max_iter,
        chain,
        stabilized: false,
    }
}

/// A hook that conjectures the ω-limit of a non-stabilizing ascent chain.
///
/// Implementations inspect the recorded prefix of `{hⁱ(⊥)}` and propose a
/// candidate limit element (e.g. a lasso for sequence domains).
/// [`kleene_extrapolated`] only accepts the candidate after verifying
/// `h(candidate) = candidate` *and* that it dominates the computed chain, so
/// a wrong conjecture can cause a miss but never an unsound answer.
pub trait Extrapolate<D: Cpo> {
    /// Conjectures a limit for the ascending `chain`, or `None`.
    fn extrapolate(&self, chain: &[D::Elem]) -> Option<D::Elem>;
}

/// Kleene iteration with ω-limit extrapolation for productive (never
/// stabilizing) functions such as `h(x) = 0; x`, whose least fixpoint is the
/// infinite sequence `0^ω`.
///
/// Returns a stabilized result when plain iteration converges; otherwise
/// asks `extra` for a candidate limit and verifies both `h(lim) = lim` and
/// that the limit is an upper bound of the computed ascent. The result's
/// `stabilized` flag is `false` for an extrapolated limit.
pub fn kleene_extrapolated<D, H, X>(
    d: &D,
    h: &H,
    extra: &X,
    opts: KleeneOptions,
) -> FixpointResult<D::Elem>
where
    D: Cpo,
    H: ContinuousFn<D, D>,
    X: Extrapolate<D>,
{
    let mut result = kleene(d, h, opts);
    if result.value.is_some() {
        return result;
    }
    if let Some(candidate) = extra.extrapolate(&result.chain) {
        let fixed = h.apply(&candidate) == candidate;
        let dominates = result.chain.iter().all(|x| d.leq(x, &candidate));
        if fixed && dominates {
            result.value = Some(candidate);
        }
    }
    result
}

/// Verifies the defining property of a least fixpoint against a set of
/// candidate fixpoints: `z` is a fixpoint and `z ⊑ y` for every fixpoint
/// `y` among `candidates`. Used by Theorem 4 tests.
pub fn is_least_fixpoint_among<D, H>(d: &D, h: &H, z: &D::Elem, candidates: &[D::Elem]) -> bool
where
    D: Cpo,
    H: ContinuousFn<D, D>,
{
    h.apply(z) == *z
        && candidates
            .iter()
            .filter(|y| h.apply(y) == **y)
            .all(|y| d.leq(z, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{ClampedNat, NatOmega, NatOrOmega, Powerset};
    use crate::func::FnCont;

    #[test]
    fn kleene_converges_on_clamped_increment() {
        let d = ClampedNat::new(10);
        let h = FnCont::new("inc-clamped", |x: &u64| (x + 1).min(10));
        let r = kleene(&d, &h, KleeneOptions::default());
        assert_eq!(r.value, Some(10));
        assert!(r.stabilized);
        assert_eq!(r.chain.first(), Some(&0));
        assert_eq!(r.iterations, 11);
    }

    #[test]
    fn kleene_finds_identity_fixpoint_at_bottom() {
        let d = NatOmega;
        let h = FnCont::new("id", |x: &NatOrOmega| *x);
        let r = kleene(&d, &h, KleeneOptions::default());
        assert_eq!(r.value, Some(NatOrOmega::Nat(0)));
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn kleene_gives_up_on_unbounded_ascent() {
        let d = NatOmega;
        let h = FnCont::new("succ", |x: &NatOrOmega| x.succ());
        let r = kleene(&d, &h, KleeneOptions { max_iter: 50 });
        assert_eq!(r.value, None);
        assert!(!r.stabilized);
        assert_eq!(r.chain.len(), 51);
    }

    struct OmegaExtra;

    impl Extrapolate<NatOmega> for OmegaExtra {
        fn extrapolate(&self, chain: &[NatOrOmega]) -> Option<NatOrOmega> {
            // Strictly increasing naturals conjecture ω.
            chain
                .windows(2)
                .all(|w| w[0] < w[1])
                .then_some(NatOrOmega::Omega)
        }
    }

    #[test]
    fn extrapolation_reaches_omega() {
        let d = NatOmega;
        let h = FnCont::new("succ", |x: &NatOrOmega| x.succ());
        let r = kleene_extrapolated(&d, &h, &OmegaExtra, KleeneOptions { max_iter: 20 });
        assert_eq!(r.value, Some(NatOrOmega::Omega));
        assert!(!r.stabilized);
    }

    #[test]
    fn extrapolation_rejects_non_fixpoint_candidate() {
        struct Bad;
        impl Extrapolate<NatOmega> for Bad {
            fn extrapolate(&self, _chain: &[NatOrOmega]) -> Option<NatOrOmega> {
                Some(NatOrOmega::Nat(7)) // h(7) = 8 ≠ 7, must be rejected
            }
        }
        let d = NatOmega;
        let h = FnCont::new("succ", |x: &NatOrOmega| x.succ());
        let r = kleene_extrapolated(&d, &h, &Bad, KleeneOptions { max_iter: 20 });
        assert_eq!(r.value, None);
    }

    #[test]
    fn least_fixpoint_on_powerset_closure() {
        // h(S) = S ∪ {0} ∪ {x+1 | x ∈ S, x+1 < 4} over universe {0..5}:
        // least fixpoint is {0,1,2,3}, even though {0,..,4} etc. are also
        // fixpoints-dominating sets.
        let d = Powerset::new(6);
        let h = FnCont::new("closure", |s: &std::collections::BTreeSet<u32>| {
            let mut out = s.clone();
            out.insert(0);
            for &x in s {
                if x + 1 < 4 {
                    out.insert(x + 1);
                }
            }
            out
        });
        let r = kleene(&d, &h, KleeneOptions::default());
        let expect: std::collections::BTreeSet<u32> = (0..4).collect();
        assert_eq!(r.value, Some(expect.clone()));
        // check minimality among all fixpoints of the (small) domain
        let all = d.enumerate();
        assert!(is_least_fixpoint_among(&d, &h, &expect, &all));
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn non_monotone_ascent_panics() {
        let d = NatOmega;
        let h = FnCont::new("oscillate", |x: &NatOrOmega| match x {
            NatOrOmega::Nat(0) => NatOrOmega::Nat(5),
            NatOrOmega::Nat(5) => NatOrOmega::Nat(1),
            other => *other,
        });
        let _ = kleene(&d, &h, KleeneOptions::default());
    }
}
