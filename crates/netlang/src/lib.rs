//! `eqp-netlang`: a hardened textual network-definition language at the
//! trust boundary.
//!
//! Tenants of the `eqpd` certification service describe a Kahn network in
//! a small line-oriented language — channels, processes drawn from a safe
//! combinator vocabulary (const/lasso sources, copy, map, filter, merge,
//! delay, zip, and `expr` processes compiled from the [`SeqExpr`] grammar),
//! and equational descriptions `lhs ⟸ rhs` over the same grammar. The
//! daemon [`parse`]s the program with a **total, recursion-bounded
//! parser**, enforces hard resource budgets ([`NetLimits`]) — channel and
//! process counts, alphabet and expression sizes, compiled-IR instruction
//! caps — and rejects every malformed or over-budget program with a typed,
//! field-naming [`NetError`], never a panic. Accepted programs lower
//! through [`eqp_seqfn::SeqExpr::compile`] into runnable
//! [`Network`](eqp_kahn::Network)s whose processes all participate in
//! snapshot/restore, so tenant networks ride the entire existing stack:
//! checkpointing, supervision, ARQ, monitoring, sharding, and the `eqpd`
//! evict-resume journal.
//!
//! # Example
//!
//! ```
//! use eqp_netlang::{parse, NetLimits};
//!
//! let program = parse(
//!     "net doubler\n\
//!      steps 200\n\
//!      chan b = 0\n\
//!      chan c = 1\n\
//!      proc src = const b [1 2 3]\n\
//!      proc dbl = map affine(2,0) b -> c\n\
//!      eq c <= map(affine(2,0), b)\n",
//!     &NetLimits::default(),
//! )
//! .expect("valid program");
//! let net = program.build(7);
//! assert_eq!(net.len(), 2);
//! assert_eq!(program.description().name(), "doubler");
//! ```
//!
//! [`SeqExpr`]: eqp_seqfn::SeqExpr

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod limits;
mod parse;
mod program;

pub use gen::random_program;
pub use limits::{NetError, NetLimits};
pub use parse::parse;
pub use program::{NetProgram, ProcDecl, ProcKind};
