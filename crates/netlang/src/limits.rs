//! Resource budgets and the typed rejection error for the trust boundary.

use std::fmt;

/// Hard resource budgets enforced while parsing and validating a tenant
/// program.
///
/// Every limit names the field it protects; exceeding one produces a
/// typed [`NetError`] naming that field, never a panic. The defaults are
/// deliberately generous for honest programs and deliberately hostile to
/// resource bombs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLimits {
    /// Maximum program text size in bytes.
    pub max_source_bytes: usize,
    /// Maximum number of declared channels.
    pub max_channels: usize,
    /// Maximum channel index a declaration may use. Kept well below the
    /// point where wide support masks get expensive; the runtime itself
    /// handles >128-channel networks, but tenants don't get to allocate
    /// sparse index space for free.
    pub max_chan_index: u32,
    /// Maximum number of declared processes.
    pub max_processes: usize,
    /// Maximum number of `eq` description equations.
    pub max_equations: usize,
    /// Maximum AST node count for any single expression.
    pub max_expr_nodes: usize,
    /// Maximum expression nesting depth the parser will recurse into.
    pub max_depth: usize,
    /// Maximum number of literal values in any one list (`[...]`).
    pub max_seq_values: usize,
    /// Maximum compiled-IR instruction count per expression.
    pub max_ir_insts: usize,
    /// Maximum `merge(K)` fairness bound.
    pub max_merge_bound: usize,
    /// Maximum session step budget a `steps` directive may request. The
    /// daemon clamps this to its own per-session ceiling.
    pub max_steps: u64,
}

impl Default for NetLimits {
    fn default() -> NetLimits {
        NetLimits {
            max_source_bytes: 64 * 1024,
            max_channels: 128,
            max_chan_index: 4096,
            max_processes: 64,
            max_equations: 32,
            max_expr_nodes: 512,
            max_depth: 24,
            max_seq_values: 256,
            max_ir_insts: 4096,
            max_merge_bound: 64,
            max_steps: 200_000,
        }
    }
}

/// Typed rejection produced at the trust boundary.
///
/// Every variant names the offending line and/or field so a tenant can
/// fix their program without access to daemon logs. The parser and
/// validator are total: hostile input yields one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The program (or one of its components) exceeded a size budget.
    Oversized {
        /// Which [`NetLimits`] field was exceeded.
        field: &'static str,
        /// The configured limit.
        limit: usize,
        /// What the program asked for.
        got: usize,
    },
    /// A line failed to parse.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        why: String,
    },
    /// An expression or statement referenced an undeclared channel.
    UnknownChannel {
        /// 1-based source line.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// A channel or process name collides with a language keyword.
    Reserved {
        /// 1-based source line.
        line: usize,
        /// The reserved word.
        name: String,
    },
    /// A duplicate declaration (channel name, channel index, process
    /// name).
    Duplicate {
        /// 1-based source line.
        line: usize,
        /// What kind of declaration collided.
        what: &'static str,
        /// The colliding name or index.
        name: String,
    },
    /// Two processes produce (or consume) the same channel — Kahn wiring
    /// requires a unique producer and a unique consumer per channel.
    WiringConflict {
        /// `"producer"` or `"consumer"`.
        role: &'static str,
        /// The channel name.
        chan: String,
        /// The first process claiming the role.
        first: String,
        /// The second process claiming the role.
        second: String,
    },
    /// Expression nesting exceeded `max_depth`.
    TooDeep {
        /// 1-based source line.
        line: usize,
        /// The configured depth limit.
        limit: usize,
    },
    /// A numeric literal was outside its field's admissible range.
    OutOfRange {
        /// 1-based source line.
        line: usize,
        /// The field being parsed.
        field: &'static str,
        /// Human-readable bound, e.g. `"1..=4096"`.
        bound: String,
    },
    /// An `expr` process's expression cannot run incrementally (it never
    /// produces output from finite input, e.g. an infinite constant fed
    /// nowhere).
    NotIncremental {
        /// 1-based source line.
        line: usize,
        /// Why the expression was refused.
        why: String,
    },
    /// The program declared no processes (nothing to run).
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Oversized { field, limit, got } => {
                write!(
                    f,
                    "over budget: {field} allows {limit}, program needs {got}"
                )
            }
            NetError::Parse { line, why } => write!(f, "parse error at line {line}: {why}"),
            NetError::UnknownChannel { line, name } => {
                write!(f, "line {line}: unknown channel `{name}`")
            }
            NetError::Reserved { line, name } => {
                write!(f, "line {line}: `{name}` is a reserved word")
            }
            NetError::Duplicate { line, what, name } => {
                write!(f, "line {line}: duplicate {what} `{name}`")
            }
            NetError::WiringConflict {
                role,
                chan,
                first,
                second,
            } => write!(
                f,
                "wiring conflict: channel `{chan}` has two {role}s (`{first}` and `{second}`)"
            ),
            NetError::TooDeep { line, limit } => {
                write!(
                    f,
                    "line {line}: expression nests deeper than max_depth = {limit}"
                )
            }
            NetError::OutOfRange { line, field, bound } => {
                write!(f, "line {line}: {field} out of range (expected {bound})")
            }
            NetError::NotIncremental { line, why } => {
                write!(
                    f,
                    "line {line}: expression is not incrementally runnable: {why}"
                )
            }
            NetError::Empty => write!(f, "program declares no processes"),
        }
    }
}

impl std::error::Error for NetError {}
