//! The validated in-memory form of a tenant program, and its lowering to
//! a runnable [`Network`] plus an equational [`Description`].

use eqp_core::Description;
use eqp_kahn::procs::{Apply, Copy, Delay, Merge2, Source, Zip2};
use eqp_kahn::{ExprProc, FilterStep, Network, Oracle};
use eqp_seqfn::{SeqExpr, ValueMap, ValuePred, ValueZip};
use eqp_trace::{Chan, Lasso, Value};

/// One process declaration, drawn from the safe combinator vocabulary.
///
/// Every kind lowers to an existing, snapshot-capable process from
/// `eqp_kahn::procs` (or the [`ExprProc`]/[`FilterStep`] pair added for
/// this language), so tenant networks checkpoint, evict, resume, and
/// migrate exactly like built-in workloads.
#[derive(Debug, Clone)]
pub enum ProcKind {
    /// `const OUT [v...]` — emit a finite sequence, then quiesce.
    Const {
        /// Output channel.
        out: Chan,
        /// The values emitted, in order.
        values: Vec<Value>,
    },
    /// `lasso OUT [prefix...] [cycle...]` — emit the prefix, then the
    /// cycle forever (empty cycle means a finite source).
    Lasso {
        /// Output channel.
        out: Chan,
        /// Finite prefix.
        prefix: Vec<Value>,
        /// Repeated cycle.
        cycle: Vec<Value>,
    },
    /// `copy IN -> OUT` — the paper's Fig. 1 repeater.
    Copy {
        /// Input channel.
        input: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `prelude [v...] IN -> OUT` — copy, after first emitting a seed.
    Prelude {
        /// Values emitted before copying begins.
        values: Vec<Value>,
        /// Input channel.
        input: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `map SPEC IN -> OUT` — pointwise [`ValueMap`].
    Map {
        /// The map applied to each value.
        map: ValueMap,
        /// Input channel.
        input: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `filter SPEC IN -> OUT` — drop values failing the predicate.
    Filter {
        /// The predicate values must satisfy.
        pred: ValuePred,
        /// Input channel.
        input: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `merge L R -> OUT` / `merge(K) L R -> OUT` — fair merge steered by
    /// a seeded oracle with fairness bound `K`.
    Merge {
        /// Oracle fairness bound (max run of one side).
        bound: usize,
        /// Left input.
        left: Chan,
        /// Right input.
        right: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `delay [v...] IN -> OUT` — emit initial values, then copy;
    /// the unit-delay of feedback networks.
    Delay {
        /// Initial values emitted before the first input.
        initial: Vec<Value>,
        /// Input channel.
        input: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `zip SPEC A B -> OUT` — strict pointwise [`ValueZip`].
    Zip {
        /// The binary combination.
        zip: ValueZip,
        /// Left input.
        left: Chan,
        /// Right input.
        right: Chan,
        /// Output channel.
        output: Chan,
    },
    /// `expr OUT := EXPR` — a process computing a whole [`SeqExpr`]
    /// incrementally via the compiled delta evaluator. Its inputs are the
    /// expression's channels.
    Expr {
        /// Output channel (must not appear in the expression).
        output: Chan,
        /// The sequence function the process computes.
        expr: SeqExpr,
    },
}

impl ProcKind {
    /// The channel this process produces.
    pub fn output(&self) -> Chan {
        match self {
            ProcKind::Const { out, .. } | ProcKind::Lasso { out, .. } => *out,
            ProcKind::Copy { output, .. }
            | ProcKind::Prelude { output, .. }
            | ProcKind::Map { output, .. }
            | ProcKind::Filter { output, .. }
            | ProcKind::Merge { output, .. }
            | ProcKind::Delay { output, .. }
            | ProcKind::Zip { output, .. }
            | ProcKind::Expr { output, .. } => *output,
        }
    }

    /// The channels this process consumes.
    pub fn inputs(&self) -> Vec<Chan> {
        match self {
            ProcKind::Const { .. } | ProcKind::Lasso { .. } => Vec::new(),
            ProcKind::Copy { input, .. }
            | ProcKind::Prelude { input, .. }
            | ProcKind::Map { input, .. }
            | ProcKind::Filter { input, .. }
            | ProcKind::Delay { input, .. } => vec![*input],
            ProcKind::Merge { left, right, .. } | ProcKind::Zip { left, right, .. } => {
                vec![*left, *right]
            }
            ProcKind::Expr { expr, .. } => expr.channels().iter().collect(),
        }
    }
}

/// A named process declaration.
#[derive(Debug, Clone)]
pub struct ProcDecl {
    /// Process name (unique within the program).
    pub name: String,
    /// What the process does.
    pub kind: ProcKind,
    /// 1-based source line of the declaration (for diagnostics).
    pub line: usize,
}

/// A parsed, validated tenant program.
///
/// Only [`parse`](crate::parse) constructs these, so holding a
/// `NetProgram` is proof the program passed every [`NetLimits`] budget:
/// [`build`](NetProgram::build) and [`description`](NetProgram::description)
/// cannot panic on it.
///
/// [`NetLimits`]: crate::NetLimits
#[derive(Debug, Clone)]
pub struct NetProgram {
    pub(crate) name: String,
    pub(crate) steps: u64,
    pub(crate) source: String,
    pub(crate) chans: Vec<(String, Chan)>,
    pub(crate) procs: Vec<ProcDecl>,
    pub(crate) equations: Vec<(SeqExpr, SeqExpr)>,
}

impl PartialEq for NetProgram {
    /// Programs compare by source text: parsing is deterministic, so
    /// equal sources mean equal programs.
    fn eq(&self, other: &NetProgram) -> bool {
        self.source == other.source
    }
}

impl Eq for NetProgram {}

impl NetProgram {
    /// The program name from the `net` directive (or `"net"` if omitted).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The requested step budget from the `steps` directive (or the
    /// language default of 10 000). The daemon clamps this further.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The original program text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Declared channels, in declaration order.
    pub fn channels(&self) -> &[(String, Chan)] {
        &self.chans
    }

    /// Declared processes, in declaration order (also the network's
    /// scheduling order).
    pub fn procs(&self) -> &[ProcDecl] {
        &self.procs
    }

    /// The description equations, in declaration order.
    pub fn equations(&self) -> &[(SeqExpr, SeqExpr)] {
        &self.equations
    }

    /// Lowers the program to a runnable [`Network`].
    ///
    /// Processes are added in declaration order, so scheduling (and hence
    /// traces, for a fixed scheduler) is a pure function of the program
    /// text and `seed`. The seed steers every `merge` oracle, exactly as
    /// the built-in zoo builders use it.
    pub fn build(&self, seed: u64) -> Network {
        let mut net = Network::new();
        for p in &self.procs {
            match &p.kind {
                ProcKind::Const { out, values } => {
                    net.add(Source::new(&p.name, *out, values.clone()));
                }
                ProcKind::Lasso { out, prefix, cycle } => {
                    net.add(Source::lasso(
                        &p.name,
                        *out,
                        Lasso::lasso(prefix.clone(), cycle.clone()),
                    ));
                }
                ProcKind::Copy { input, output } => {
                    net.add(Copy::new(&p.name, *input, *output));
                }
                ProcKind::Prelude {
                    values,
                    input,
                    output,
                } => {
                    net.add(Copy::with_prelude(&p.name, *input, *output, values.clone()));
                }
                ProcKind::Map { map, input, output } => {
                    let m = *map;
                    net.add(Apply::new(&p.name, *input, *output, move |v| m.apply(&v)));
                }
                ProcKind::Filter {
                    pred,
                    input,
                    output,
                } => {
                    net.add(FilterStep::new(&p.name, *input, *output, *pred));
                }
                ProcKind::Merge {
                    bound,
                    left,
                    right,
                    output,
                } => {
                    net.add(Merge2::new(
                        &p.name,
                        *left,
                        *right,
                        *output,
                        Oracle::fair(seed, *bound),
                    ));
                }
                ProcKind::Delay {
                    initial,
                    input,
                    output,
                } => {
                    net.add(Delay::new(&p.name, *input, *output, initial.clone()));
                }
                ProcKind::Zip {
                    zip,
                    left,
                    right,
                    output,
                } => {
                    let z = *zip;
                    net.add(Zip2::new(&p.name, *left, *right, *output, move |a, b| {
                        z.apply(&a, &b)
                    }));
                }
                ProcKind::Expr { output, expr } => {
                    net.add(ExprProc::new(&p.name, *output, expr));
                }
            }
        }
        net
    }

    /// The program's equational [`Description`] (`lhs ⟸ rhs` per `eq`
    /// line), ready for conformance checking against a run's trace.
    pub fn description(&self) -> Description {
        let mut d = Description::new(self.name.clone());
        for (lhs, rhs) in &self.equations {
            d = d.equation(lhs.clone(), rhs.clone());
        }
        d
    }
}
