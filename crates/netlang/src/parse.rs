//! The total, recursion-bounded parser and validation pass.
//!
//! Parsing is line-oriented: every statement fits on one line, `#` starts
//! a comment, blank lines are ignored. The statement forms:
//!
//! ```text
//! net NAME                               # program name (optional)
//! steps N                                # requested step budget (optional)
//! chan NAME = INDEX                      # declare a channel
//! proc NAME = const OUT [v ...]          # finite source
//! proc NAME = lasso OUT [pre ...] [cyc ...]
//! proc NAME = copy IN -> OUT
//! proc NAME = prelude [v ...] IN -> OUT
//! proc NAME = map MAPSPEC IN -> OUT      # affine(a,b) | r | tag(t) | untag
//! proc NAME = filter PRED IN -> OUT      # even|odd|true|false|tagis(t)|intis(n)
//! proc NAME = merge L R -> OUT           # merge(K) for fairness bound K
//! proc NAME = delay [v ...] IN -> OUT
//! proc NAME = zip ZIPSPEC A B -> OUT     # and | add
//! proc NAME = expr OUT := EXPR           # compiled SeqExpr process
//! eq EXPR <= EXPR                        # description equation lhs ⟸ rhs
//! ```
//!
//! Expressions: `CHAN`, `[v ...]`, `loop([pre],[cyc])`, `concat([v],E)`,
//! `map(M,E)`, `filter(P,E)`, `zip(Z,E,E)`, `takewhile(P,E)`,
//! `skip(N,E)`, `count(E)`. Values: integers, `T`, `F`, pairs `(tag,n)`.
//!
//! Every budget in [`NetLimits`] is enforced *during* the single pass, so
//! work is bounded by the source-size cap before anything else is
//! inspected; recursion is bounded by an explicit depth counter. Every
//! rejection is a typed [`NetError`]; no input can cause a panic.

use std::collections::{HashMap, HashSet};

use eqp_seqfn::{SeqExpr, ValueMap, ValuePred, ValueZip};
use eqp_trace::{Chan, Lasso, Value};

use crate::limits::{NetError, NetLimits};
use crate::program::{NetProgram, ProcDecl, ProcKind};

/// Words with grammatical meaning; channels and processes may not shadow
/// them.
const RESERVED: &[&str] = &[
    "net",
    "steps",
    "chan",
    "proc",
    "eq",
    "const",
    "lasso",
    "copy",
    "prelude",
    "map",
    "filter",
    "merge",
    "delay",
    "zip",
    "expr",
    "loop",
    "concat",
    "takewhile",
    "skip",
    "count",
    "affine",
    "r",
    "tag",
    "untag",
    "even",
    "odd",
    "true",
    "false",
    "tagis",
    "intis",
    "and",
    "add",
    "T",
    "F",
];

/// Default session step budget when the program omits a `steps` line.
const DEFAULT_STEPS: u64 = 10_000;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    LParen,
    RParen,
    LBrack,
    RBrack,
    Comma,
    Arrow,  // ->
    LeEq,   // <=
    Define, // :=
    Equals, // =
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrack => "`[`".into(),
            Tok::RBrack => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::LeEq => "`<=`".into(),
            Tok::Define => "`:=`".into(),
            Tok::Equals => "`=`".into(),
        }
    }
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '+' | '-')
}

/// Tokenizes one line. Total: any byte sequence either tokenizes or
/// yields a typed parse error.
fn tokenize(raw: &str, line: usize) -> Result<Vec<Tok>, NetError> {
    let mut toks = Vec::new();
    let mut chars = raw.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => break,
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBrack);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBrack);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::LeEq);
                } else {
                    return Err(NetError::Parse {
                        line,
                        why: "stray `<` (expected `<=`)".into(),
                    });
                }
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Define);
                } else {
                    return Err(NetError::Parse {
                        line,
                        why: "stray `:` (expected `:=`)".into(),
                    });
                }
            }
            '=' => {
                chars.next();
                toks.push(Tok::Equals);
            }
            '-' if {
                let mut ahead = chars.clone();
                ahead.next();
                ahead.peek() == Some(&'>')
            } =>
            {
                chars.next();
                chars.next();
                toks.push(Tok::Arrow);
            }
            c if is_word_char(c) => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '-' {
                        // `->` terminates a word; a plain `-` (negative
                        // numbers, hyphenated names) continues it.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek() == Some(&'>') {
                            break;
                        }
                        w.push(c);
                        chars.next();
                    } else if is_word_char(c) {
                        w.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // `->` at word start is handled by the arm above, so `w`
                // is nonempty here; still, guard totality.
                if w.is_empty() {
                    return Err(NetError::Parse {
                        line,
                        why: "empty word".into(),
                    });
                }
                toks.push(Tok::Word(w));
            }
            other => {
                return Err(NetError::Parse {
                    line,
                    why: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(toks)
}

/// A cursor over one line's tokens.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok], line: usize) -> Cursor<'a> {
        Cursor { toks, pos: 0, line }
    }

    fn err(&self, why: impl Into<String>) -> NetError {
        NetError::Parse {
            line: self.line,
            why: why.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn word(&mut self, what: &str) -> Result<String, NetError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            Some(other) => Err(self.err(format!("expected {what}, found {}", other.describe()))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), NetError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            Some(other) => Err(self.err(format!(
                "expected {}, found {}",
                t.describe(),
                other.describe()
            ))),
            None => Err(self.err(format!("expected {}, found end of line", t.describe()))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn end(&self) -> Result<(), NetError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("trailing {} after statement", t.describe()))),
        }
    }
}

/// Parser state threaded through the single pass.
struct Ctx<'l> {
    limits: &'l NetLimits,
    name: Option<String>,
    steps: Option<u64>,
    chans: Vec<(String, Chan)>,
    chan_by_name: HashMap<String, Chan>,
    chan_indices: HashSet<u32>,
    procs: Vec<ProcDecl>,
    proc_names: HashSet<String>,
    equations: Vec<(SeqExpr, SeqExpr)>,
}

impl Ctx<'_> {
    fn chan_ref(&self, cur: &mut Cursor<'_>) -> Result<Chan, NetError> {
        let w = cur.word("a channel name")?;
        match self.chan_by_name.get(&w) {
            Some(&c) => Ok(c),
            None => Err(NetError::UnknownChannel {
                line: cur.line,
                name: w,
            }),
        }
    }

    /// Parses `[v v ...]` with the alphabet-size cap.
    fn value_list(&self, cur: &mut Cursor<'_>) -> Result<Vec<Value>, NetError> {
        cur.expect(Tok::LBrack)?;
        let mut vals = Vec::new();
        loop {
            if cur.eat(&Tok::RBrack) {
                return Ok(vals);
            }
            if vals.len() == self.limits.max_seq_values {
                return Err(NetError::Oversized {
                    field: "max_seq_values",
                    limit: self.limits.max_seq_values,
                    got: vals.len() + 1,
                });
            }
            vals.push(self.value(cur)?);
        }
    }

    /// Parses one value: an integer, `T`, `F`, or a pair `(tag,n)`.
    fn value(&self, cur: &mut Cursor<'_>) -> Result<Value, NetError> {
        if cur.eat(&Tok::LParen) {
            let tag = parse_int::<u8>(cur, "pair tag", "0..=255")?;
            cur.expect(Tok::Comma)?;
            let n = parse_int::<i64>(cur, "pair payload", "an i64")?;
            cur.expect(Tok::RParen)?;
            return Ok(Value::Pair(tag, n));
        }
        let w = cur.word("a value")?;
        w.parse::<Value>()
            .map_err(|_| cur.err(format!("`{w}` is not a value (int, T, F, or (tag,n))")))
    }

    fn map_spec(&self, cur: &mut Cursor<'_>) -> Result<ValueMap, NetError> {
        let w = cur.word("a map spec (affine(a,b) | r | tag(t) | untag)")?;
        match w.as_str() {
            "affine" => {
                cur.expect(Tok::LParen)?;
                let a = parse_int::<i64>(cur, "affine multiplier", "an i64")?;
                cur.expect(Tok::Comma)?;
                let b = parse_int::<i64>(cur, "affine offset", "an i64")?;
                cur.expect(Tok::RParen)?;
                Ok(ValueMap::Affine { a, b })
            }
            "r" => Ok(ValueMap::R),
            "tag" => {
                cur.expect(Tok::LParen)?;
                let t = parse_int::<u8>(cur, "tag", "0..=255")?;
                cur.expect(Tok::RParen)?;
                Ok(ValueMap::Tag(t))
            }
            "untag" => Ok(ValueMap::Untag),
            other => Err(cur.err(format!("unknown map spec `{other}`"))),
        }
    }

    fn pred_spec(&self, cur: &mut Cursor<'_>) -> Result<ValuePred, NetError> {
        let w = cur.word("a predicate (even|odd|true|false|tagis(t)|intis(n))")?;
        match w.as_str() {
            "even" => Ok(ValuePred::IsEvenInt),
            "odd" => Ok(ValuePred::IsOddInt),
            "true" => Ok(ValuePred::IsTrue),
            "false" => Ok(ValuePred::IsFalse),
            "tagis" => {
                cur.expect(Tok::LParen)?;
                let t = parse_int::<u8>(cur, "tag", "0..=255")?;
                cur.expect(Tok::RParen)?;
                Ok(ValuePred::TagIs(t))
            }
            "intis" => {
                cur.expect(Tok::LParen)?;
                let n = parse_int::<i64>(cur, "intis constant", "an i64")?;
                cur.expect(Tok::RParen)?;
                Ok(ValuePred::IntIs(n))
            }
            other => Err(cur.err(format!("unknown predicate `{other}`"))),
        }
    }

    fn zip_spec(&self, cur: &mut Cursor<'_>) -> Result<ValueZip, NetError> {
        let w = cur.word("a zip spec (and | add)")?;
        match w.as_str() {
            "and" => Ok(ValueZip::And),
            "add" => Ok(ValueZip::AddInts),
            other => Err(cur.err(format!("unknown zip spec `{other}`"))),
        }
    }

    /// Recursion-bounded expression parser.
    fn expr(&self, cur: &mut Cursor<'_>, depth: usize) -> Result<SeqExpr, NetError> {
        if depth == 0 {
            return Err(NetError::TooDeep {
                line: cur.line,
                limit: self.limits.max_depth,
            });
        }
        if cur.peek() == Some(&Tok::LBrack) {
            let vals = self.value_list(cur)?;
            return Ok(SeqExpr::Const(Lasso::finite(vals)));
        }
        let w = cur.word("an expression")?;
        match w.as_str() {
            "loop" => {
                cur.expect(Tok::LParen)?;
                let prefix = self.value_list(cur)?;
                cur.expect(Tok::Comma)?;
                let cycle = self.value_list(cur)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Const(Lasso::lasso(prefix, cycle)))
            }
            "concat" => {
                cur.expect(Tok::LParen)?;
                let vals = self.value_list(cur)?;
                cur.expect(Tok::Comma)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Concat(vals, Box::new(e)))
            }
            "map" => {
                cur.expect(Tok::LParen)?;
                let m = self.map_spec(cur)?;
                cur.expect(Tok::Comma)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Map(m, Box::new(e)))
            }
            "filter" => {
                cur.expect(Tok::LParen)?;
                let p = self.pred_spec(cur)?;
                cur.expect(Tok::Comma)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Filter(p, Box::new(e)))
            }
            "zip" => {
                cur.expect(Tok::LParen)?;
                let z = self.zip_spec(cur)?;
                cur.expect(Tok::Comma)?;
                let a = self.expr(cur, depth - 1)?;
                cur.expect(Tok::Comma)?;
                let b = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Zip(z, Box::new(a), Box::new(b)))
            }
            "takewhile" => {
                cur.expect(Tok::LParen)?;
                let p = self.pred_spec(cur)?;
                cur.expect(Tok::Comma)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::TakeWhile(p, Box::new(e)))
            }
            "skip" => {
                cur.expect(Tok::LParen)?;
                let n = parse_int::<u32>(cur, "skip count", "0..=4294967295")?;
                cur.expect(Tok::Comma)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::Skip(n as usize, Box::new(e)))
            }
            "count" => {
                cur.expect(Tok::LParen)?;
                let e = self.expr(cur, depth - 1)?;
                cur.expect(Tok::RParen)?;
                Ok(SeqExpr::CountTicks(Box::new(e)))
            }
            name => match self.chan_by_name.get(name) {
                Some(&c) => Ok(SeqExpr::Chan(c)),
                None => Err(NetError::UnknownChannel {
                    line: cur.line,
                    name: name.to_string(),
                }),
            },
        }
    }

    /// Parses a full statement-level expression and enforces the node and
    /// compiled-IR budgets.
    fn bounded_expr(&self, cur: &mut Cursor<'_>) -> Result<SeqExpr, NetError> {
        let e = self.expr(cur, self.limits.max_depth)?;
        let nodes = e.size();
        if nodes > self.limits.max_expr_nodes {
            return Err(NetError::Oversized {
                field: "max_expr_nodes",
                limit: self.limits.max_expr_nodes,
                got: nodes,
            });
        }
        let insts = e.compile().inst_count();
        if insts > self.limits.max_ir_insts {
            return Err(NetError::Oversized {
                field: "max_ir_insts",
                limit: self.limits.max_ir_insts,
                got: insts,
            });
        }
        Ok(e)
    }

    fn fresh_name(&self, cur: &Cursor<'_>, w: &str, what: &'static str) -> Result<(), NetError> {
        if RESERVED.contains(&w) {
            return Err(NetError::Reserved {
                line: cur.line,
                name: w.to_string(),
            });
        }
        let taken = match what {
            "channel" => self.chan_by_name.contains_key(w),
            _ => self.proc_names.contains(w),
        };
        if taken {
            return Err(NetError::Duplicate {
                line: cur.line,
                what,
                name: w.to_string(),
            });
        }
        Ok(())
    }
}

fn parse_int<T: std::str::FromStr>(
    cur: &mut Cursor<'_>,
    field: &'static str,
    bound: &str,
) -> Result<T, NetError> {
    let w = cur.word(field)?;
    w.parse::<T>().map_err(|_| NetError::OutOfRange {
        line: cur.line,
        field,
        bound: bound.to_string(),
    })
}

/// Parses and validates a tenant program against `limits`.
///
/// Total and bounded: work is O(`max_source_bytes`) plus the cost of
/// compiling at most `max_equations + max_processes` expressions, each
/// capped at `max_expr_nodes` nodes / `max_ir_insts` instructions. Any
/// malformed or over-budget input yields a typed [`NetError`]; no input
/// panics.
pub fn parse(source: &str, limits: &NetLimits) -> Result<NetProgram, NetError> {
    if source.len() > limits.max_source_bytes {
        return Err(NetError::Oversized {
            field: "max_source_bytes",
            limit: limits.max_source_bytes,
            got: source.len(),
        });
    }
    let mut ctx = Ctx {
        limits,
        name: None,
        steps: None,
        chans: Vec::new(),
        chan_by_name: HashMap::new(),
        chan_indices: HashSet::new(),
        procs: Vec::new(),
        proc_names: HashSet::new(),
        equations: Vec::new(),
    };

    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let toks = tokenize(raw, line)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor::new(&toks, line);
        let head = cur.word("a statement keyword")?;
        match head.as_str() {
            "net" => {
                let w = cur.word("a program name")?;
                if ctx.name.replace(w).is_some() {
                    return Err(NetError::Duplicate {
                        line,
                        what: "net directive",
                        name: "net".into(),
                    });
                }
            }
            "steps" => {
                let n = parse_int::<u64>(&mut cur, "steps", "a u64")?;
                if n == 0 || n > limits.max_steps {
                    return Err(NetError::OutOfRange {
                        line,
                        field: "steps",
                        bound: format!("1..={}", limits.max_steps),
                    });
                }
                if ctx.steps.replace(n).is_some() {
                    return Err(NetError::Duplicate {
                        line,
                        what: "steps directive",
                        name: "steps".into(),
                    });
                }
            }
            "chan" => {
                if ctx.chans.len() == limits.max_channels {
                    return Err(NetError::Oversized {
                        field: "max_channels",
                        limit: limits.max_channels,
                        got: ctx.chans.len() + 1,
                    });
                }
                let name = cur.word("a channel name")?;
                ctx.fresh_name(&cur, &name, "channel")?;
                cur.expect(Tok::Equals)?;
                let idx = parse_int::<u32>(&mut cur, "chan index", "a u32")?;
                if idx > limits.max_chan_index {
                    return Err(NetError::OutOfRange {
                        line,
                        field: "chan index",
                        bound: format!("0..={}", limits.max_chan_index),
                    });
                }
                if !ctx.chan_indices.insert(idx) {
                    return Err(NetError::Duplicate {
                        line,
                        what: "channel index",
                        name: idx.to_string(),
                    });
                }
                let c = Chan::new(idx);
                ctx.chan_by_name.insert(name.clone(), c);
                ctx.chans.push((name, c));
            }
            "proc" => {
                if ctx.procs.len() == limits.max_processes {
                    return Err(NetError::Oversized {
                        field: "max_processes",
                        limit: limits.max_processes,
                        got: ctx.procs.len() + 1,
                    });
                }
                let name = cur.word("a process name")?;
                ctx.fresh_name(&cur, &name, "process")?;
                cur.expect(Tok::Equals)?;
                let kind = parse_proc_kind(&ctx, &mut cur)?;
                check_proc(&ctx, &cur, &name, &kind)?;
                ctx.proc_names.insert(name.clone());
                ctx.procs.push(ProcDecl { name, kind, line });
            }
            "eq" => {
                if ctx.equations.len() == limits.max_equations {
                    return Err(NetError::Oversized {
                        field: "max_equations",
                        limit: limits.max_equations,
                        got: ctx.equations.len() + 1,
                    });
                }
                let lhs = ctx.bounded_expr(&mut cur)?;
                cur.expect(Tok::LeEq)?;
                let rhs = ctx.bounded_expr(&mut cur)?;
                ctx.equations.push((lhs, rhs));
            }
            other => {
                return Err(NetError::Parse {
                    line,
                    why: format!("unknown statement `{other}`"),
                });
            }
        }
        cur.end()?;
    }

    if ctx.procs.is_empty() {
        return Err(NetError::Empty);
    }
    check_wiring(&ctx)?;

    Ok(NetProgram {
        name: ctx.name.unwrap_or_else(|| "net".into()),
        steps: ctx.steps.unwrap_or(DEFAULT_STEPS),
        source: source.to_string(),
        chans: ctx.chans,
        procs: ctx.procs,
        equations: ctx.equations,
    })
}

fn parse_proc_kind(ctx: &Ctx<'_>, cur: &mut Cursor<'_>) -> Result<ProcKind, NetError> {
    let kind = cur.word("a process kind")?;
    match kind.as_str() {
        "const" => {
            let out = ctx.chan_ref(cur)?;
            let values = ctx.value_list(cur)?;
            Ok(ProcKind::Const { out, values })
        }
        "lasso" => {
            let out = ctx.chan_ref(cur)?;
            let prefix = ctx.value_list(cur)?;
            let cycle = ctx.value_list(cur)?;
            Ok(ProcKind::Lasso { out, prefix, cycle })
        }
        "copy" => {
            let input = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Copy { input, output })
        }
        "prelude" => {
            let values = ctx.value_list(cur)?;
            let input = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Prelude {
                values,
                input,
                output,
            })
        }
        "map" => {
            let map = ctx.map_spec(cur)?;
            let input = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Map { map, input, output })
        }
        "filter" => {
            let pred = ctx.pred_spec(cur)?;
            let input = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Filter {
                pred,
                input,
                output,
            })
        }
        "merge" => {
            let bound = if cur.eat(&Tok::LParen) {
                let k = parse_int::<usize>(cur, "merge bound", "a usize")?;
                cur.expect(Tok::RParen)?;
                if k == 0 || k > ctx.limits.max_merge_bound {
                    return Err(NetError::OutOfRange {
                        line: cur.line,
                        field: "merge bound",
                        bound: format!("1..={}", ctx.limits.max_merge_bound),
                    });
                }
                k
            } else {
                2
            };
            let left = ctx.chan_ref(cur)?;
            let right = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Merge {
                bound,
                left,
                right,
                output,
            })
        }
        "delay" => {
            let initial = ctx.value_list(cur)?;
            let input = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Delay {
                initial,
                input,
                output,
            })
        }
        "zip" => {
            let zip = ctx.zip_spec(cur)?;
            let left = ctx.chan_ref(cur)?;
            let right = ctx.chan_ref(cur)?;
            cur.expect(Tok::Arrow)?;
            let output = ctx.chan_ref(cur)?;
            Ok(ProcKind::Zip {
                zip,
                left,
                right,
                output,
            })
        }
        "expr" => {
            let output = ctx.chan_ref(cur)?;
            cur.expect(Tok::Define)?;
            let expr = ctx.bounded_expr(cur)?;
            Ok(ProcKind::Expr { output, expr })
        }
        other => Err(cur.err(format!("unknown process kind `{other}`"))),
    }
}

/// Per-process semantic checks: distinct inputs, output disjoint from
/// inputs, and (for `expr` processes) incremental runnability.
fn check_proc(
    ctx: &Ctx<'_>,
    cur: &Cursor<'_>,
    _name: &str,
    kind: &ProcKind,
) -> Result<(), NetError> {
    let inputs = kind.inputs();
    let output = kind.output();
    for (i, a) in inputs.iter().enumerate() {
        if inputs[i + 1..].contains(a) {
            return Err(NetError::Duplicate {
                line: cur.line,
                what: "input channel",
                name: ctx.chan_name(*a),
            });
        }
    }
    if let ProcKind::Expr { expr, .. } = kind {
        if expr.channels().contains(output) {
            return Err(NetError::NotIncremental {
                line: cur.line,
                why: "expression reads its own output channel".into(),
            });
        }
        if expr.compile().delta_init().is_none() {
            return Err(NetError::NotIncremental {
                line: cur.line,
                why: "expression has no incremental evaluation (infinite constant?)".into(),
            });
        }
    } else if inputs.contains(&output) {
        return Err(NetError::Parse {
            line: cur.line,
            why: "process output must differ from its inputs".into(),
        });
    }
    Ok(())
}

impl Ctx<'_> {
    /// Best-effort reverse lookup for diagnostics.
    fn chan_name(&self, c: Chan) -> String {
        for (n, k) in &self.chans {
            if *k == c {
                return n.clone();
            }
        }
        format!("#{}", c.index())
    }
}

/// Whole-program wiring check: every channel has at most one producer and
/// at most one consumer — the Kahn single-writer/single-reader discipline
/// the runtime's `Network::add` enforces by panicking, which tenant input
/// must never be able to reach.
fn check_wiring(ctx: &Ctx<'_>) -> Result<(), NetError> {
    let mut producer: HashMap<u32, &str> = HashMap::new();
    let mut consumer: HashMap<u32, &str> = HashMap::new();
    for p in &ctx.procs {
        let out = p.kind.output();
        if let Some(first) = producer.insert(out.index(), &p.name) {
            return Err(NetError::WiringConflict {
                role: "producer",
                chan: ctx.chan_name(out),
                first: first.to_string(),
                second: p.name.clone(),
            });
        }
        for c in p.kind.inputs() {
            if let Some(first) = consumer.insert(c.index(), &p.name) {
                return Err(NetError::WiringConflict {
                    role: "consumer",
                    chan: ctx.chan_name(c),
                    first: first.to_string(),
                    second: p.name.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lim() -> NetLimits {
        NetLimits::default()
    }

    const FIG1: &str = "net fig1\n\
                        chan b = 0\n\
                        chan c = 1\n\
                        proc top = copy b -> c\n\
                        proc bottom = prelude [0] c -> b\n\
                        eq c <= b\n\
                        eq b <= concat([0], c)\n";

    #[test]
    fn parses_figure_one() {
        let p = parse(FIG1, &lim()).unwrap();
        assert_eq!(p.name(), "fig1");
        assert_eq!(p.channels().len(), 2);
        assert_eq!(p.procs().len(), 2);
        assert_eq!(p.equations().len(), 2);
        let net = p.build(0);
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn comments_blanks_and_values() {
        let src = "# a comment\n\
                   chan b = 0\n\n\
                   proc s = const b [1 -2 T F (3,4)]  # trailing comment\n";
        let p = parse(src, &lim()).unwrap();
        match &p.procs()[0].kind {
            ProcKind::Const { values, .. } => {
                assert_eq!(
                    values,
                    &[
                        Value::Int(1),
                        Value::Int(-2),
                        Value::Bit(true),
                        Value::Bit(false),
                        Value::Pair(3, 4)
                    ]
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn unknown_channel_is_typed() {
        let e = parse("chan b = 0\nproc p = copy b -> nope\n", &lim()).unwrap_err();
        assert_eq!(
            e,
            NetError::UnknownChannel {
                line: 2,
                name: "nope".into()
            }
        );
    }

    #[test]
    fn reserved_names_rejected() {
        let e = parse("chan filter = 0\n", &lim()).unwrap_err();
        assert!(matches!(e, NetError::Reserved { line: 1, .. }), "{e}");
    }

    #[test]
    fn duplicate_channel_index_rejected() {
        let e = parse("chan a = 0\nchan b = 0\n", &lim()).unwrap_err();
        assert!(
            matches!(
                e,
                NetError::Duplicate {
                    what: "channel index",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn two_consumers_rejected_before_network_add_can_panic() {
        let src = "chan b = 0\nchan c = 1\nchan d = 2\n\
                   proc s = const b [1]\n\
                   proc p = copy b -> c\n\
                   proc q = copy b -> d\n";
        let e = parse(src, &lim()).unwrap_err();
        assert!(
            matches!(
                e,
                NetError::WiringConflict {
                    role: "consumer",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn two_producers_rejected() {
        let src = "chan b = 0\nproc s = const b [1]\nproc t = const b [2]\n";
        let e = parse(src, &lim()).unwrap_err();
        assert!(
            matches!(
                e,
                NetError::WiringConflict {
                    role: "producer",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn deep_nesting_hits_depth_budget() {
        let mut expr = String::from("b");
        for _ in 0..100 {
            expr = format!("map(untag, {expr})");
        }
        let src = format!("chan b = 0\nchan c = 1\nproc p = expr c := {expr}\n");
        let e = parse(&src, &lim()).unwrap_err();
        assert!(matches!(e, NetError::TooDeep { .. }), "{e}");
    }

    #[test]
    fn depth_exactly_at_cap_is_accepted() {
        let l = lim();
        // Depth counts every expr() call; a chain of (max_depth - 1) maps
        // around a channel leaf uses exactly max_depth levels.
        let mut expr = String::from("b");
        for _ in 0..l.max_depth - 1 {
            expr = format!("map(untag, {expr})");
        }
        let src = format!("chan b = 0\nchan c = 1\nproc p = expr c := {expr}\n");
        parse(&src, &l).unwrap();
        let over = format!("chan b = 0\nchan c = 1\nproc p = expr c := map(untag, {expr})\n");
        assert!(matches!(
            parse(&over, &l).unwrap_err(),
            NetError::TooDeep { .. }
        ));
    }

    #[test]
    fn alphabet_budget_at_cap_and_over() {
        let l = NetLimits {
            max_seq_values: 4,
            ..lim()
        };
        parse("chan b = 0\nproc s = const b [1 2 3 4]\n", &l).unwrap();
        let e = parse("chan b = 0\nproc s = const b [1 2 3 4 5]\n", &l).unwrap_err();
        assert_eq!(
            e,
            NetError::Oversized {
                field: "max_seq_values",
                limit: 4,
                got: 5
            }
        );
    }

    #[test]
    fn channel_count_budget() {
        let l = NetLimits {
            max_channels: 3,
            ..lim()
        };
        let mut src = String::new();
        for i in 0..4 {
            src.push_str(&format!("chan c{i} = {i}\n"));
        }
        let e = parse(&src, &l).unwrap_err();
        assert_eq!(
            e,
            NetError::Oversized {
                field: "max_channels",
                limit: 3,
                got: 4
            }
        );
    }

    #[test]
    fn oversized_source_rejected_before_scanning() {
        let l = NetLimits {
            max_source_bytes: 16,
            ..lim()
        };
        let e = parse("chan b = 0\nproc s = const b [1]\n", &l).unwrap_err();
        assert!(
            matches!(
                e,
                NetError::Oversized {
                    field: "max_source_bytes",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(parse("", &lim()).unwrap_err(), NetError::Empty);
        assert_eq!(parse("chan b = 0\n", &lim()).unwrap_err(), NetError::Empty);
    }

    #[test]
    fn expr_proc_reading_own_output_rejected() {
        let src = "chan b = 0\nproc p = expr b := map(untag, b)\n";
        let e = parse(src, &lim()).unwrap_err();
        assert!(matches!(e, NetError::NotIncremental { .. }), "{e}");
    }

    #[test]
    fn infinite_constant_expr_proc_rejected() {
        let src = "chan b = 0\nproc p = expr b := loop([],[1])\n";
        let e = parse(src, &lim()).unwrap_err();
        assert!(matches!(e, NetError::NotIncremental { .. }), "{e}");
    }

    #[test]
    fn merge_bound_and_steps_ranges() {
        let src = "chan a = 0\nchan b = 1\nchan c = 2\n\
                   proc s = const a [1]\nproc t = const b [2]\n\
                   proc m = merge(0) a b -> c\n";
        assert!(matches!(
            parse(src, &lim()).unwrap_err(),
            NetError::OutOfRange {
                field: "merge bound",
                ..
            }
        ));
        assert!(matches!(
            parse("steps 0\nchan b = 0\nproc s = const b [1]\n", &lim()).unwrap_err(),
            NetError::OutOfRange { field: "steps", .. }
        ));
    }

    #[test]
    fn arrows_and_hyphenated_names_coexist() {
        let src = "chan env-c = 0\nchan out = 1\nproc env-src = const env-c [1]\nproc p = copy env-c -> out\n";
        let p = parse(src, &lim()).unwrap();
        assert_eq!(p.channels()[0].0, "env-c");
        assert_eq!(p.procs()[1].name, "p");
    }

    #[test]
    fn garbage_never_panics_and_always_types() {
        for src in [
            "proc",
            "chan = =",
            "eq <= <=",
            "proc p = merge",
            "\u{0}\u{1}\u{2}",
            "chan b = 99999999999999999999",
            "proc p = zip b",
            "net",
            "steps steps",
            "[1 2 3]",
            "chan b = 0\nproc p = expr b := skip(-1, b)\n",
        ] {
            let r = std::panic::catch_unwind(|| parse(src, &lim()));
            let inner = r.expect("parser panicked");
            assert!(inner.is_err(), "accepted garbage: {src:?}");
        }
    }
}
