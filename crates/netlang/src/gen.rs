//! Seeded generation of random *valid* programs — used by `eqpd-load`'s
//! tenant-network mode and by the grammar-aware fuzz corpus.

/// A tiny deterministic generator (xorshift64*); no external RNG crates
/// and no global state, so the same seed always yields the same program.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates a random, printable, *valid* netlang program from `seed`.
///
/// The program always parses under default [`NetLimits`](crate::NetLimits)
/// and always certifies: sources are finite, the wiring is a DAG built
/// stage by stage (each stage consumes open channels and produces a fresh
/// one), and every deterministic process is accompanied by its defining
/// equation, so the description holds by construction. `merge` outputs
/// are left undescribed (they are the nondeterministic elements), but
/// processes *downstream* of a merge still get exact equations over the
/// merged channel — the paper's point that descriptions constrain
/// components, not oracles.
pub fn random_program(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    out.push_str(&format!("# generated tenant network (seed {seed})\n"));
    out.push_str(&format!("net gen-{seed}\n"));
    out.push_str(&format!("steps {}\n", 500 + rng.below(1500)));

    let n_sources = 1 + rng.below(3) as usize;
    let n_stages = 3 + rng.below(6) as usize;
    let total_chans = n_sources + n_stages;
    for i in 0..total_chans {
        out.push_str(&format!("chan c{i} = {i}\n"));
    }

    let mut next_chan = 0usize;
    let mut open: Vec<usize> = Vec::new();
    let mut procs = 0usize;
    let mut eqs: Vec<String> = Vec::new();

    for _ in 0..n_sources {
        let ch = next_chan;
        next_chan += 1;
        let len = 1 + rng.below(8);
        let vals: Vec<String> = (0..len).map(|_| rng.below(10).to_string()).collect();
        let vals = vals.join(" ");
        out.push_str(&format!("proc p{procs} = const c{ch} [{vals}]\n"));
        eqs.push(format!("eq c{ch} <= [{vals}]"));
        procs += 1;
        open.push(ch);
    }

    for _ in 0..n_stages {
        if next_chan >= total_chans || open.is_empty() {
            break;
        }
        let ch = next_chan;
        next_chan += 1;
        let take = |open: &mut Vec<usize>, rng: &mut Rng| -> usize {
            let i = rng.below(open.len() as u64) as usize;
            open.swap_remove(i)
        };
        let two_available = open.len() >= 2;
        match rng.below(if two_available { 7 } else { 5 }) {
            0 => {
                let a = take(&mut open, &mut rng);
                out.push_str(&format!("proc p{procs} = copy c{a} -> c{ch}\n"));
                eqs.push(format!("eq c{ch} <= c{a}"));
            }
            1 => {
                let a = take(&mut open, &mut rng);
                let m = 1 + rng.below(4);
                let b = rng.below(5);
                out.push_str(&format!(
                    "proc p{procs} = map affine({m},{b}) c{a} -> c{ch}\n"
                ));
                eqs.push(format!("eq c{ch} <= map(affine({m},{b}), c{a})"));
            }
            2 => {
                let a = take(&mut open, &mut rng);
                let p = if rng.below(2) == 0 { "even" } else { "odd" };
                out.push_str(&format!("proc p{procs} = filter {p} c{a} -> c{ch}\n"));
                eqs.push(format!("eq c{ch} <= filter({p}, c{a})"));
            }
            3 => {
                let a = take(&mut open, &mut rng);
                let v = rng.below(10);
                out.push_str(&format!("proc p{procs} = delay [{v}] c{a} -> c{ch}\n"));
                eqs.push(format!("eq c{ch} <= concat([{v}], c{a})"));
            }
            4 => {
                let a = take(&mut open, &mut rng);
                let m = 1 + rng.below(3);
                let b = rng.below(3);
                out.push_str(&format!(
                    "proc p{procs} = expr c{ch} := map(affine({m},{b}), c{a})\n"
                ));
                eqs.push(format!("eq c{ch} <= map(affine({m},{b}), c{a})"));
            }
            5 => {
                let a = take(&mut open, &mut rng);
                let b = take(&mut open, &mut rng);
                out.push_str(&format!("proc p{procs} = zip add c{a} c{b} -> c{ch}\n"));
                eqs.push(format!("eq c{ch} <= zip(add, c{a}, c{b})"));
            }
            _ => {
                let a = take(&mut open, &mut rng);
                let b = take(&mut open, &mut rng);
                let k = 2 + rng.below(3);
                out.push_str(&format!("proc p{procs} = merge({k}) c{a} c{b} -> c{ch}\n"));
                // Nondeterministic: no defining equation for the output.
            }
        }
        procs += 1;
        open.push(ch);
    }

    for eq in eqs {
        out.push_str(&eq);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::random_program;
    use crate::{parse, NetLimits};

    #[test]
    fn generated_programs_always_parse() {
        let limits = NetLimits::default();
        for seed in 0..200 {
            let src = random_program(seed);
            assert!(src.is_ascii(), "seed {seed}: non-printable program");
            let p = parse(&src, &limits)
                .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected: {e}\n{src}"));
            assert!(!p.procs().is_empty());
            let net = p.build(seed);
            assert_eq!(net.len(), p.procs().len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_program(42), random_program(42));
        assert_ne!(random_program(1), random_program(2));
    }
}
