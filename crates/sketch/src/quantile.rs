//! A log-bucketed quantile sketch with an exactly associative merge.
//!
//! For a value `v ≥ 1` with exponent `e = ⌊log₂ v⌋`, the bucket index is
//! `(e << k) | m` where `m` is the top `k` mantissa bits below the
//! leading one (zero-padded when `v` has fewer than `k` mantissa bits).
//! The index is monotone in `v`, and dropping one mantissa bit is
//! exactly `idx >> 1` — so a sketch at precision `k` folds losslessly
//! onto the bucketing of any coarser precision `k' < k`, and merging is
//! bucketwise addition after folding both sides to the coarser
//! precision. Zero values get their own exact counter.
//!
//! Consequences, all load-bearing for fleet roll-ups:
//!
//! * **Exact monoid.** Merge is associative and commutative with the
//!   empty sketch as identity: the result's precision is the minimum
//!   over the non-empty inputs, and its buckets are the fold-then-add of
//!   the inputs' buckets — a pure function of the input multiset.
//! * **Insert ≡ singleton merge.** Building a sketch from a stream is
//!   the same as merging per-element singletons, so worker-local
//!   sketches merged in any order equal the single-stream build exactly.
//! * **Bounded relative error.** Bucket `[lo, hi]` has width
//!   `≤ lo · 2^-k`, so reporting the midpoint puts the estimate within
//!   relative error `2^-k` of any true value in the bucket. Rank error
//!   is zero — quantile queries walk exact counts.
//!
//! Storage is a dense `Vec<u64>` of `64·2^k` counters (`k = 6` → 32 KiB)
//! for branch-free O(1) inserts on the engine hot path; the wire codec
//! stores only non-zero buckets.

use std::fmt;

/// Maximum supported mantissa bits (bounds the dense allocation to
/// `64·2^12` counters = 2 MiB).
pub const MAX_BITS: u8 = 12;

/// The log-bucket quantile sketch. See the module docs for the algebra.
#[derive(Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    bits: u8,
    zero: u64,
    total: u64,
    buckets: Vec<u64>,
}

#[inline]
fn bucket_index(v: u64, bits: u8) -> usize {
    debug_assert!(v > 0);
    let e = 63 - v.leading_zeros() as u64;
    let k = bits as u64;
    let mask = (1u64 << k) - 1;
    let m = if e >= k {
        (v >> (e - k)) & mask
    } else {
        (v << (k - e)) & mask
    };
    ((e << k) | m) as usize
}

impl QuantileSketch {
    /// An empty sketch with `bits` mantissa bits (clamped to `1..=MAX_BITS`).
    pub fn new(bits: u8) -> QuantileSketch {
        let bits = bits.clamp(1, MAX_BITS);
        QuantileSketch {
            bits,
            zero: 0,
            total: 0,
            buckets: vec![0; 64 << bits],
        }
    }

    /// The sketch's mantissa precision `k`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Total observations recorded (exact).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True iff nothing has been recorded (the merge identity).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The guaranteed relative value error bound at this precision.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.bits) as f64
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn insert(&mut self, v: u64) {
        self.insert_n(v, 1);
    }

    /// Records `n` observations of `v`.
    #[inline]
    pub fn insert_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if v == 0 {
            self.zero += n;
        } else {
            self.buckets[bucket_index(v, self.bits)] += n;
        }
    }

    /// `[lo, hi]` value bounds of bucket `idx` at this precision.
    fn bounds(&self, idx: usize) -> (u64, u64) {
        let k = self.bits as u32;
        let e = (idx as u32) >> k;
        let m = (idx as u64) & ((1u64 << k) - 1);
        let lower = |e: u32, m: u64| -> u64 {
            if e >= k {
                ((1u64 << k) + m) << (e - k)
            } else {
                ((1u64 << k) + m) >> (k - e)
            }
        };
        let lo = lower(e, m);
        let hi = if idx + 1 < self.buckets.len() {
            let next = idx + 1;
            let ne = (next as u32) >> k;
            let nm = (next as u64) & ((1u64 << k) - 1);
            lower(ne, nm).saturating_sub(1).max(lo)
        } else {
            u64::MAX
        };
        (lo, hi)
    }

    /// The value at quantile `q ∈ [0, 1]` (bucket midpoint; exact for
    /// values below `2^k`). Returns 0 on an empty sketch.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64).round() as u64;
        if rank < self.zero {
            return 0;
        }
        let mut seen = self.zero;
        let mut last = 0usize;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            last = idx;
            if rank < seen {
                let (lo, hi) = self.bounds(idx);
                return lo + (hi - lo) / 2;
            }
        }
        // Unreachable when counts are consistent; report the top bucket.
        let (lo, hi) = self.bounds(last);
        lo + (hi - lo) / 2
    }

    /// Folds this sketch down to a coarser precision (no-op if `bits`
    /// is not strictly coarser). Lossless with respect to the coarser
    /// bucketing: `idx` collapses to `idx >> d`.
    pub fn fold_to(&mut self, bits: u8) {
        let bits = bits.clamp(1, MAX_BITS);
        if bits >= self.bits {
            return;
        }
        let d = self.bits - bits;
        let mut folded = vec![0u64; 64 << bits];
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                folded[idx >> d] += n;
            }
        }
        self.buckets = folded;
        self.bits = bits;
    }

    /// Folds `other` in. Exactly associative and commutative; the empty
    /// sketch is the identity (merging with it never changes precision).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        if other.bits < self.bits {
            self.fold_to(other.bits);
        }
        let d = other.bits - self.bits;
        for (idx, &n) in other.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[idx >> d] += n;
            }
        }
        self.zero += other.zero;
        self.total += other.total;
    }

    /// Non-zero `(bucket index, count)` pairs in ascending index order,
    /// plus the zero counter — the sparse form the codec stores.
    pub(crate) fn sparse(&self) -> (u64, u64, Vec<(u64, u64)>) {
        let pairs = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i as u64, n))
            .collect();
        (self.zero, self.total, pairs)
    }

    /// Rebuilds from the sparse form (codec use). Pairs must be strictly
    /// increasing and in range; counts must sum (with `zero`) to `total`.
    pub(crate) fn from_sparse(
        bits: u8,
        zero: u64,
        total: u64,
        pairs: &[(u64, u64)],
    ) -> Option<QuantileSketch> {
        let mut s = QuantileSketch::new(bits);
        if s.bits != bits {
            return None;
        }
        let mut sum = zero;
        let mut prev: Option<u64> = None;
        for &(idx, n) in pairs {
            if idx >= s.buckets.len() as u64 || n == 0 || prev.is_some_and(|p| idx <= p) {
                return None;
            }
            s.buckets[idx as usize] = n;
            sum = sum.checked_add(n)?;
            prev = Some(idx);
        }
        if sum != total {
            return None;
        }
        s.zero = zero;
        s.total = total;
        Some(s)
    }
}

impl fmt::Debug for QuantileSketch {
    /// Compact: only non-zero buckets, so checkpoint fingerprints and
    /// differential Debug comparisons stay readable and cheap.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (zero, total, pairs) = self.sparse();
        f.debug_struct("QuantileSketch")
            .field("bits", &self.bits)
            .field("zero", &zero)
            .field("total", &total)
            .field("buckets", &pairs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new(6);
        for v in 0..64u64 {
            s.insert(v);
        }
        for (i, v) in (0..64u64).enumerate() {
            let q = i as f64 / 63.0;
            assert_eq!(s.quantile(q), v, "q={q}");
        }
    }

    #[test]
    fn relative_error_bound_holds_on_wide_range() {
        let mut s = QuantileSketch::new(6);
        let vals: Vec<u64> = (0..2000u64)
            .map(|i| (i * i * 977) % 1_000_000 + 1)
            .collect();
        for &v in &vals {
            s.insert(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            let truth = sorted[rank] as f64;
            let est = s.quantile(q) as f64;
            let bound = 2.0 * s.relative_error_bound();
            assert!(
                (est - truth).abs() / truth <= bound,
                "q={q}: est {est} vs true {truth} exceeds {bound}"
            );
        }
    }

    #[test]
    fn fold_matches_coarse_build() {
        let vals: Vec<u64> = (1..5000u64).map(|i| i * 31 % 100_000 + 1).collect();
        let mut fine = QuantileSketch::new(9);
        let mut coarse = QuantileSketch::new(5);
        for &v in &vals {
            fine.insert(v);
            coarse.insert(v);
        }
        fine.fold_to(5);
        assert_eq!(fine, coarse);
    }

    #[test]
    fn mixed_precision_merge_is_exact_monoid() {
        let mut a = QuantileSketch::new(8);
        let mut b = QuantileSketch::new(5);
        let mut c = QuantileSketch::new(6);
        for v in 1..100u64 {
            a.insert(v * 7);
            b.insert(v * 13);
            c.insert(v * 29);
        }
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // commutative
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
        // identity preserves precision
        let mut id = a.clone();
        id.merge(&QuantileSketch::new(1));
        assert_eq!(id, a);
    }

    #[test]
    fn merge_equals_bulk() {
        let vals: Vec<u64> = (0..3000u64)
            .map(|i| i.wrapping_mul(0x9e37) % 65536)
            .collect();
        let mut bulk = QuantileSketch::new(7);
        for &v in &vals {
            bulk.insert(v);
        }
        let mut merged = QuantileSketch::new(7);
        for chunk in vals.chunks(173) {
            let mut part = QuantileSketch::new(7);
            for &v in chunk {
                part.insert(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged, bulk);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut s = QuantileSketch::new(MAX_BITS);
        s.insert(u64::MAX);
        s.insert(1);
        s.insert(0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), 0);
        assert!(s.quantile(1.0) >= u64::MAX / 2);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut s = QuantileSketch::new(6);
        for v in [0, 1, 5, 77, 1 << 40, u64::MAX] {
            s.insert_n(v, 3);
        }
        let (zero, total, pairs) = s.sparse();
        let back = QuantileSketch::from_sparse(6, zero, total, &pairs).unwrap();
        assert_eq!(back, s);
        // Tampered totals are rejected.
        assert!(QuantileSketch::from_sparse(6, zero, total + 1, &pairs).is_none());
    }
}
