//! The versioned, checksummed byte format for [`TelemetrySketches`].
//!
//! Layout (all integers little-endian `u64` unless noted):
//!
//! ```text
//! "EQSK" | version u8 | value_sample_log2 u8 |
//!   quantile(queue_depth) | quantile(latency) | heavy-hitters | hll |
//! fnv1a-64 of everything above
//! ```
//!
//! * quantile: `bits u8, zero, total, n, n × (bucket idx, count)` —
//!   pairs strictly increasing, counts non-zero, sums checked.
//! * heavy-hitters: `rows u8, cols_log2 u8, capacity u64, total, n,
//!   n × (cell idx, count), m, m × (key, count)` — cells strictly
//!   increasing, candidates strictly increasing by key, `m ≤ capacity`.
//! * hll: `bits u8, n, n × (register idx, rank u8)` — strictly
//!   increasing, ranks within `1..=64-bits+1`.
//!
//! Decoding is **total**: every length is validated against the bytes
//! actually remaining before any allocation, every shape field is
//! range-checked, and corruption surfaces as a typed
//! [`SketchCodecError`] — never a panic or an attacker-sized `Vec`.

use crate::hh::HeavyHitters;
use crate::hll::Hll;
use crate::quantile::QuantileSketch;
use crate::TelemetrySketches;
use std::fmt;

/// Format magic.
pub const MAGIC: &[u8; 4] = b"EQSK";
/// Current format version.
pub const VERSION: u8 = 1;

/// Why a sketch byte string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchCodecError {
    /// Fewer bytes than a declared length requires.
    Truncated,
    /// The leading magic is not `EQSK`.
    BadMagic,
    /// A version this build does not read.
    BadVersion(u8),
    /// The FNV-1a trailer does not match the payload.
    ChecksumMismatch,
    /// Bytes remain after the trailer.
    TrailingBytes,
    /// A field failed validation (range, ordering, or sum check).
    BadField(&'static str),
}

impl fmt::Display for SketchCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchCodecError::Truncated => write!(f, "sketch bytes truncated"),
            SketchCodecError::BadMagic => write!(f, "bad sketch magic"),
            SketchCodecError::BadVersion(v) => write!(f, "unsupported sketch version {v}"),
            SketchCodecError::ChecksumMismatch => write!(f, "sketch checksum mismatch"),
            SketchCodecError::TrailingBytes => write!(f, "trailing bytes after sketch"),
            SketchCodecError::BadField(what) => write!(f, "invalid sketch field: {what}"),
        }
    }
}

impl std::error::Error for SketchCodecError {}

/// FNV-1a over `bytes` (the workspace's standard integrity hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn pairs(&mut self, pairs: &[(u64, u64)]) {
        self.u64(pairs.len() as u64);
        for &(a, b) in pairs {
            self.u64(a);
            self.u64(b);
        }
    }
}

struct Dec<'a> {
    rest: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SketchCodecError> {
        if self.rest.len() < n {
            return Err(SketchCodecError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, SketchCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, SketchCodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    /// A declared element count, validated against the bytes remaining
    /// (each element occupies at least `min_elem` bytes) *before* any
    /// allocation — a length bomb fails as `Truncated`, cheaply.
    fn len(&mut self, min_elem: usize) -> Result<usize, SketchCodecError> {
        let n = self.u64()?;
        let n: usize = n.try_into().map_err(|_| SketchCodecError::Truncated)?;
        if n.checked_mul(min_elem)
            .is_none_or(|need| need > self.rest.len())
        {
            return Err(SketchCodecError::Truncated);
        }
        Ok(n)
    }
    fn pairs(&mut self) -> Result<Vec<(u64, u64)>, SketchCodecError> {
        let n = self.len(16)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let a = self.u64()?;
            let b = self.u64()?;
            out.push((a, b));
        }
        Ok(out)
    }
}

fn encode_quantile(e: &mut Enc, s: &QuantileSketch) {
    let (zero, total, pairs) = s.sparse();
    e.u8(s.bits());
    e.u64(zero);
    e.u64(total);
    e.pairs(&pairs);
}

fn decode_quantile(d: &mut Dec<'_>) -> Result<QuantileSketch, SketchCodecError> {
    let bits = d.u8()?;
    let zero = d.u64()?;
    let total = d.u64()?;
    let pairs = d.pairs()?;
    QuantileSketch::from_sparse(bits, zero, total, &pairs)
        .ok_or(SketchCodecError::BadField("quantile"))
}

fn encode_hh(e: &mut Enc, s: &HeavyHitters) {
    let (rows, cols_log2, capacity, total, decremented) = s.shape();
    let (cells, candidates) = s.sparse();
    e.u8(rows);
    e.u8(cols_log2);
    e.u64(capacity as u64);
    e.u64(total);
    e.u64(decremented);
    e.pairs(&cells);
    e.pairs(&candidates);
}

fn decode_hh(d: &mut Dec<'_>) -> Result<HeavyHitters, SketchCodecError> {
    let rows = d.u8()?;
    let cols_log2 = d.u8()?;
    let capacity = d.u64()?;
    let total = d.u64()?;
    let decremented = d.u64()?;
    let cells = d.pairs()?;
    let candidates = d.pairs()?;
    let capacity: u16 = capacity
        .try_into()
        .map_err(|_| SketchCodecError::BadField("hh capacity"))?;
    HeavyHitters::from_sparse(
        rows,
        cols_log2,
        capacity,
        total,
        decremented,
        &cells,
        &candidates,
    )
    .ok_or(SketchCodecError::BadField("heavy hitters"))
}

fn encode_hll(e: &mut Enc, s: &Hll) {
    e.u8(s.bits());
    let pairs = s.sparse();
    e.u64(pairs.len() as u64);
    for (idx, r) in pairs {
        e.u64(idx);
        e.u8(r);
    }
}

fn decode_hll(d: &mut Dec<'_>) -> Result<Hll, SketchCodecError> {
    let bits = d.u8()?;
    let n = d.len(9)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = d.u64()?;
        let r = d.u8()?;
        pairs.push((idx, r));
    }
    Hll::from_sparse(bits, &pairs).ok_or(SketchCodecError::BadField("hll"))
}

/// Serialises a [`TelemetrySketches`] block.
pub fn encode(s: &TelemetrySketches) -> Vec<u8> {
    let mut e = Enc {
        buf: Vec::with_capacity(256),
    };
    e.buf.extend_from_slice(MAGIC);
    e.u8(VERSION);
    e.u8(s.value_sample_log2);
    encode_quantile(&mut e, &s.queue_depth);
    encode_quantile(&mut e, &s.latency);
    encode_hh(&mut e, &s.channel_traffic);
    encode_hll(&mut e, &s.distinct_values);
    let sum = fnv1a(&e.buf);
    e.u64(sum);
    e.buf
}

/// Parses a [`TelemetrySketches`] block. Total over arbitrary bytes.
pub fn decode(bytes: &[u8]) -> Result<TelemetrySketches, SketchCodecError> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(SketchCodecError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a(payload) != sum {
        return Err(SketchCodecError::ChecksumMismatch);
    }
    let mut d = Dec { rest: payload };
    if d.take(MAGIC.len())? != MAGIC {
        return Err(SketchCodecError::BadMagic);
    }
    let version = d.u8()?;
    if version != VERSION {
        return Err(SketchCodecError::BadVersion(version));
    }
    let value_sample_log2 = d.u8()?;
    if value_sample_log2 > 16 {
        return Err(SketchCodecError::BadField("value sample exponent"));
    }
    let queue_depth = decode_quantile(&mut d)?;
    let latency = decode_quantile(&mut d)?;
    let channel_traffic = decode_hh(&mut d)?;
    let distinct_values = decode_hll(&mut d)?;
    if !d.rest.is_empty() {
        return Err(SketchCodecError::TrailingBytes);
    }
    Ok(TelemetrySketches {
        queue_depth,
        latency,
        channel_traffic,
        distinct_values,
        value_sample_log2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix64;

    fn sample() -> TelemetrySketches {
        let mut s = TelemetrySketches::default();
        for i in 0..500u64 {
            s.queue_depth.insert(i % 17);
            s.latency.insert(i % 5);
            s.channel_traffic.insert(i % 9, 1 + i % 2);
            s.distinct_values.insert(splitmix64(i));
        }
        s
    }

    #[test]
    fn roundtrip_is_exact() {
        let s = sample();
        let bytes = encode(&s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, s);
        // The empty block round-trips too (the merge identity survives
        // the wire).
        let empty = TelemetrySketches::default();
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn every_bitflip_errors() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "bitflip at byte {i} must not parse cleanly"
            );
        }
    }

    #[test]
    fn length_bomb_does_not_allocate() {
        // A huge declared pair count against a tiny buffer must fail
        // fast on the remaining-bytes check, not try to reserve.
        let mut e = Enc { buf: Vec::new() };
        e.buf.extend_from_slice(MAGIC);
        e.u8(VERSION);
        e.u8(6);
        e.u64(0);
        e.u64(0);
        e.u64(u64::MAX); // bucket-count bomb
        let sum = fnv1a(&e.buf);
        e.u64(sum);
        assert_eq!(decode(&e.buf), Err(SketchCodecError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample());
        // Valid checksum over an extended payload, but junk after the
        // sketch sections.
        bytes.truncate(bytes.len() - 8);
        bytes.push(0xEE);
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&bytes), Err(SketchCodecError::TrailingBytes));
    }
}
