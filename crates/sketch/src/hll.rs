//! Hyperloglog distinct-value cardinality over 64-bit hashes.
//!
//! `2^p` one-byte registers; inserting hash `h` routes on its top `p`
//! bits and records the leading-zero run of the remainder. Merge is
//! elementwise register max — an exact commutative monoid with the
//! all-zero sketch as identity. Registers at precision `p` fold
//! *exactly* to any coarser `p' < p`: for register `j`, the dropped
//! `p - p'` index bits sit directly after the new prefix, so the folded
//! rank is either `rank + (p - p')` (dropped bits all zero) or the
//! position of their leading one — both computable from `j` alone.
//! Standard bias-corrected estimation with linear counting on the small
//! range; relative error is `≈ 1.04/√2^p`.

use std::fmt;

/// Minimum supported precision.
pub const MIN_BITS: u8 = 4;
/// Maximum supported precision (64 KiB of registers).
pub const MAX_BITS: u8 = 16;

/// The hyperloglog sketch. See the module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct Hll {
    bits: u8,
    regs: Vec<u8>,
}

impl Hll {
    /// An empty sketch at precision `bits` (clamped to `4..=16`).
    pub fn new(bits: u8) -> Hll {
        let bits = bits.clamp(MIN_BITS, MAX_BITS);
        Hll {
            bits,
            regs: vec![0; 1 << bits],
        }
    }

    /// The precision `p`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// True iff no hash has been recorded (the merge identity).
    pub fn is_empty(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
    }

    /// Records one 64-bit hash. Callers are responsible for hashing
    /// their values well (e.g. via [`crate::splitmix64`]).
    #[inline]
    pub fn insert(&mut self, h: u64) {
        let p = self.bits as u32;
        let idx = (h >> (64 - p)) as usize;
        let suffix = h << p;
        let rank = (suffix.leading_zeros() + 1).min(64 - p + 1) as u8;
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// Folds down to a coarser precision (no-op unless strictly coarser).
    pub fn fold_to(&mut self, bits: u8) {
        let bits = bits.clamp(MIN_BITS, MAX_BITS);
        if bits >= self.bits {
            return;
        }
        let d = (self.bits - bits) as u32;
        let mut folded = vec![0u8; 1 << bits];
        for (j, &r) in self.regs.iter().enumerate() {
            if r == 0 {
                continue;
            }
            let hi = j >> d;
            let dropped = (j as u64) & ((1u64 << d) - 1);
            let rank = if dropped == 0 {
                // All dropped bits zero: the old run extends through them.
                (r as u32 + d).min(64 - bits as u32 + 1) as u8
            } else {
                // The leading one of the dropped bits ends the new run.
                (d - (64 - dropped.leading_zeros())) as u8 + 1
            };
            if rank > folded[hi] {
                folded[hi] = rank;
            }
        }
        self.regs = folded;
        self.bits = bits;
    }

    /// Folds `other` in: elementwise max after aligning precisions to
    /// the coarser of the two. Associative, commutative, identity-safe
    /// (an empty sketch never coarsens the target).
    pub fn merge(&mut self, other: &Hll) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        if other.bits < self.bits {
            self.fold_to(other.bits);
        }
        if other.bits > self.bits {
            let mut folded = other.clone();
            folded.fold_to(self.bits);
            for (mine, theirs) in self.regs.iter_mut().zip(&folded.regs) {
                *mine = (*mine).max(*theirs);
            }
        } else {
            for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
                *mine = (*mine).max(*theirs);
            }
        }
    }

    /// The bias-corrected cardinality estimate.
    pub fn estimate(&self) -> f64 {
        let m = self.regs.len() as f64;
        let alpha = match self.regs.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let mut sum = 0.0;
        let mut zeros = 0u64;
        for &r in &self.regs {
            sum += 1.0 / (1u64 << r.min(63)) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// The estimate rounded to an integer count.
    pub fn estimate_u64(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// Non-zero `(register index, rank)` pairs, ascending (codec form).
    pub(crate) fn sparse(&self) -> Vec<(u64, u8)> {
        self.regs
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > 0)
            .map(|(i, &r)| (i as u64, r))
            .collect()
    }

    /// Rebuilds from the sparse form; rejects out-of-range indices,
    /// impossible ranks, zero entries, and unsorted input.
    pub(crate) fn from_sparse(bits: u8, pairs: &[(u64, u8)]) -> Option<Hll> {
        let mut s = Hll::new(bits);
        if s.bits != bits {
            return None;
        }
        let max_rank = 64 - bits as u32 + 1;
        let mut prev: Option<u64> = None;
        for &(idx, r) in pairs {
            if idx >= s.regs.len() as u64
                || r == 0
                || r as u32 > max_rank
                || prev.is_some_and(|p| idx <= p)
            {
                return None;
            }
            s.regs[idx as usize] = r;
            prev = Some(idx);
        }
        Some(s)
    }
}

impl fmt::Debug for Hll {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hll")
            .field("bits", &self.bits)
            .field("regs", &self.sparse())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix64;

    #[test]
    fn relative_error_within_bound() {
        for &n in &[100u64, 1_000, 50_000] {
            let mut h = Hll::new(10);
            for i in 0..n {
                h.insert(splitmix64(i));
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // Theoretical σ ≈ 1.04/√1024 ≈ 3.25%; allow 4σ.
            assert!(rel < 0.13, "n={n}: estimate {est} off by {rel}");
        }
    }

    #[test]
    fn merge_is_max_and_monoid() {
        let mut a = Hll::new(10);
        let mut b = Hll::new(10);
        let mut bulk = Hll::new(10);
        for i in 0..5000u64 {
            let h = splitmix64(i);
            if i % 2 == 0 {
                a.insert(h);
            } else {
                b.insert(h);
            }
            bulk.insert(h);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, bulk);
        let mut id = a.clone();
        id.merge(&Hll::new(4));
        assert_eq!(id, a);
    }

    #[test]
    fn fold_matches_coarse_build() {
        let mut fine = Hll::new(12);
        let mut coarse = Hll::new(8);
        for i in 0..20_000u64 {
            let h = splitmix64(i * 3 + 1);
            fine.insert(h);
            coarse.insert(h);
        }
        fine.fold_to(8);
        assert_eq!(fine, coarse, "precision fold must be exact");
    }

    #[test]
    fn mixed_precision_merge_associative() {
        let mut a = Hll::new(12);
        let mut b = Hll::new(9);
        let mut c = Hll::new(10);
        for i in 0..3000u64 {
            a.insert(splitmix64(i));
            b.insert(splitmix64(i + 1000));
            c.insert(splitmix64(i + 2000));
        }
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut h = Hll::new(10);
        for i in 0..500u64 {
            h.insert(splitmix64(i));
        }
        let back = Hll::from_sparse(10, &h.sparse()).unwrap();
        assert_eq!(back, h);
        assert!(
            Hll::from_sparse(10, &[(0, 60)]).is_none(),
            "impossible rank"
        );
        assert!(
            Hll::from_sparse(10, &[(5, 1), (5, 1)]).is_none(),
            "dup index"
        );
    }
}
