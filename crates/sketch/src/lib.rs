//! Mergeable telemetry sketches for fleet-scale run reports.
//!
//! The workspace's central discipline is algebraic: traces compose by
//! laws, sharded runs must commute with placement, and resumed runs must
//! agree with uninterrupted ones byte for byte. This crate extends that
//! discipline to *telemetry*. A fleet-level roll-up of per-run summaries
//! is only trustworthy if the summary type forms a commutative monoid —
//! merging worker-local, per-segment, or per-session sketches in any
//! order (and any grouping) must yield the same answer as observing the
//! union stream directly.
//!
//! Three sketch families, each with a fixed, configurable memory
//! footprint and a `merge` that is associative and commutative with the
//! empty sketch as identity:
//!
//! * [`QuantileSketch`] — a log-bucketed histogram (UDDSketch-style)
//!   whose bucket index is `(exponent << k) | top-k-mantissa-bits`.
//!   Collapsing one mantissa bit is exactly `idx >> 1`, so merging
//!   sketches at different precisions folds to the coarser one and the
//!   merge is *exactly* associative — unlike t-digest, whose centroid
//!   clustering depends on merge order. Inserting is a singleton merge,
//!   so merge-equals-bulk holds exactly, not just within a bound.
//!   Values are `u64` (queue depths, latencies in scheduler rounds);
//!   relative value error is at most `2^-k` at the bucket midpoint.
//! * [`HeavyHitters`] — a count-min sketch (elementwise-add merge, an
//!   exact monoid) paired with a bounded candidate list for top-k
//!   reporting. The candidate layer prunes deterministically and is
//!   associative at the ε-heavy-hitter guarantee level: every key whose
//!   true count exceeds `εn` survives any merge order with the same
//!   estimate.
//! * [`Hll`] — hyperloglog over 64-bit hashes; merge is elementwise
//!   register max (exact monoid), and registers at precision `p` fold
//!   exactly to any `p' < p`, so mixed-precision merges stay lossless
//!   relative to the coarser sketch.
//!
//! [`TelemetrySketches`] bundles one of each (plus a second quantile
//! sketch, one for queue depth and one for message latency) behind a
//! versioned, checksummed byte [`codec`] so summaries can ride
//! checkpoints, journals, and RPC responses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod hh;
pub mod hll;
pub mod quantile;

pub use codec::SketchCodecError;
pub use hh::HeavyHitters;
pub use hll::Hll;
pub use quantile::QuantileSketch;

use std::fmt;

/// SplitMix64: the workspace's standard cheap 64-bit mixer. Used to
/// derive count-min row seeds and to hash message values into the
/// distinct-value HLL.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Memory/accuracy knobs for a [`TelemetrySketches`] block. Every field
/// is clamped into its supported range by the constructors, so a config
/// decoded from untrusted bytes can never provoke an absurd allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Quantile-sketch mantissa bits `k`: relative value error `≤ 2^-k`,
    /// memory `64·2^k` counters. Clamped to `1..=12`.
    pub quantile_bits: u8,
    /// HLL precision `p`: `2^p` registers, relative cardinality error
    /// `≈ 1.04/√2^p`. Clamped to `4..=16`.
    pub hll_bits: u8,
    /// Count-min rows `d` (failure probability `e^-d`). Clamped to `1..=8`.
    pub cm_rows: u8,
    /// Count-min columns as a power of two (`ε ≈ e/2^w`). Clamped to `4..=16`.
    pub cm_cols_log2: u8,
    /// Heavy-hitter candidate-list capacity `M` (reports keys above
    /// roughly `n/M`). Clamped to `1..=1024`.
    pub hh_capacity: u16,
    /// Distinct-value sampling exponent `s`: the capture layer feeds the
    /// HLL a deterministic 1-in-`2^s` hash partition of the value
    /// stream, and [`TelemetrySketches::stats`] scales the estimate back
    /// by `2^s`. Sampling a hash partition is unbiased; it widens the
    /// relative error by roughly `√(2^s/D)` for `D` true distinct values
    /// (negligible once `D ≫ 2^s`). `0` means every value is fed.
    /// Clamped to `0..=16`.
    pub value_sample_log2: u8,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            quantile_bits: 6,     // ≤1.6% relative value error, 32 KiB/sketch
            hll_bits: 10,         // ≈3.2% relative cardinality error, 1 KiB
            cm_rows: 4,           // e^-4 ≈ 1.8% failure probability
            cm_cols_log2: 10,     // ε ≈ e/1024, 32 KiB
            hh_capacity: 32,      // far above any zoo network's channel count
            value_sample_log2: 0, // unsampled unless the capturer opts in
        }
    }
}

/// The mergeable telemetry block threaded through `RunReport`: queue
/// depth and message latency quantiles, heavy-hitter channel traffic,
/// and distinct-value cardinality. Merging two blocks (any order, any
/// grouping) summarises the union of their observation streams.
#[derive(Clone, PartialEq)]
pub struct TelemetrySketches {
    /// Queue depth observed after each send (including preloads).
    pub queue_depth: QuantileSketch,
    /// Rounds each consumed message waited between send and receive.
    pub latency: QuantileSketch,
    /// Sends per channel (key = channel index).
    pub channel_traffic: HeavyHitters,
    /// Distinct sent message values, via a 64-bit value hash. When
    /// `value_sample_log2 > 0` the stream fed here is a deterministic
    /// 1-in-`2^value_sample_log2` hash partition of the full value
    /// stream; [`stats`](TelemetrySketches::stats) scales the estimate
    /// back up.
    pub distinct_values: Hll,
    /// The sampling exponent the capture layer used for
    /// `distinct_values` (see [`SketchConfig::value_sample_log2`]).
    pub value_sample_log2: u8,
}

impl TelemetrySketches {
    /// A fresh, empty block with the given footprint.
    pub fn new(cfg: SketchConfig) -> Self {
        TelemetrySketches {
            queue_depth: QuantileSketch::new(cfg.quantile_bits),
            latency: QuantileSketch::new(cfg.quantile_bits),
            channel_traffic: HeavyHitters::new(cfg.cm_rows, cfg.cm_cols_log2, cfg.hh_capacity),
            distinct_values: Hll::new(cfg.hll_bits),
            value_sample_log2: cfg.value_sample_log2.min(16),
        }
    }

    /// True iff no observation has ever been recorded (the merge identity).
    pub fn is_empty(&self) -> bool {
        self.queue_depth.is_empty()
            && self.latency.is_empty()
            && self.channel_traffic.is_empty()
            && self.distinct_values.is_empty()
    }

    /// Folds `other` in. Associative and commutative; merging with an
    /// empty block is the identity.
    pub fn merge(&mut self, other: &TelemetrySketches) {
        self.queue_depth.merge(&other.queue_depth);
        self.latency.merge(&other.latency);
        self.channel_traffic.merge(&other.channel_traffic);
        // Blocks captured at one sampling exponent merge exactly; a
        // mixed-exponent merge (never produced by one fleet, whose
        // capture policy is a constant) aligns best-effort to the
        // coarser stream, mirroring the per-sketch precision folds.
        if !other.distinct_values.is_empty() {
            self.value_sample_log2 = if self.distinct_values.is_empty() {
                other.value_sample_log2
            } else {
                self.value_sample_log2.max(other.value_sample_log2)
            };
        }
        self.distinct_values.merge(&other.distinct_values);
    }

    /// Serialises to the versioned, checksummed byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::encode(self)
    }

    /// Parses the byte format back. Total: any input yields a block or a
    /// typed error, never a panic or an attacker-sized allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<TelemetrySketches, SketchCodecError> {
        codec::decode(bytes)
    }

    /// The headline summary used by `Display` impls and the fleet RPC.
    pub fn stats(&self) -> SketchStats {
        let scale = (1u64 << self.value_sample_log2.min(16)) as f64;
        SketchStats {
            events: self.channel_traffic.count(),
            depth_p50: self.queue_depth.quantile(0.50),
            depth_p99: self.queue_depth.quantile(0.99),
            latency_p50: self.latency.quantile(0.50),
            latency_p99: self.latency.quantile(0.99),
            top_channels: self.channel_traffic.top(3),
            distinct_values: (self.distinct_values.estimate() * scale).round() as u64,
        }
    }
}

impl Default for TelemetrySketches {
    fn default() -> Self {
        TelemetrySketches::new(SketchConfig::default())
    }
}

impl fmt::Debug for TelemetrySketches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetrySketches")
            .field("queue_depth", &self.queue_depth)
            .field("latency", &self.latency)
            .field("channel_traffic", &self.channel_traffic)
            .field("distinct_values", &self.distinct_values)
            .field("value_sample_log2", &self.value_sample_log2)
            .finish()
    }
}

/// A decoded headline summary of one [`TelemetrySketches`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStats {
    /// Total send observations (exact — the heavy-hitter total, which
    /// the capture layer feeds from its exact per-channel send meters).
    pub events: u64,
    /// Median queue depth after a send.
    pub depth_p50: u64,
    /// 99th-percentile queue depth after a send.
    pub depth_p99: u64,
    /// Median rounds a consumed message waited.
    pub latency_p50: u64,
    /// 99th-percentile rounds a consumed message waited.
    pub latency_p99: u64,
    /// Busiest channels as `(channel index, observed sends)`, busiest first.
    pub top_channels: Vec<(u64, u64)>,
    /// Estimated distinct sent values.
    pub distinct_values: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_merge_and_stats() {
        let mut a = TelemetrySketches::default();
        let mut b = TelemetrySketches::default();
        assert!(a.is_empty());
        for i in 0..100u64 {
            a.queue_depth.insert(i % 7);
            a.latency.insert(i % 3);
            a.channel_traffic.insert(i % 5, 1);
            a.distinct_values.insert(splitmix64(i));
        }
        for i in 100..200u64 {
            b.queue_depth.insert(i % 7);
            b.latency.insert(i % 3);
            b.channel_traffic.insert(i % 5, 1);
            b.distinct_values.insert(splitmix64(i));
        }
        let mut bulk = TelemetrySketches::default();
        for i in 0..200u64 {
            bulk.queue_depth.insert(i % 7);
            bulk.latency.insert(i % 3);
            bulk.channel_traffic.insert(i % 5, 1);
            bulk.distinct_values.insert(splitmix64(i));
        }
        a.merge(&b);
        assert_eq!(a, bulk, "merge must equal the bulk build exactly");
        let st = a.stats();
        assert_eq!(st.events, 200);
        assert_eq!(st.top_channels.len(), 3);
        assert!(st.distinct_values > 0);
    }

    #[test]
    fn empty_is_identity() {
        let mut a = TelemetrySketches::default();
        for i in 0..50u64 {
            a.queue_depth.insert(i);
            a.latency.insert(i);
            a.channel_traffic.insert(i, 2);
            a.distinct_values.insert(splitmix64(i));
        }
        let before = a.clone();
        a.merge(&TelemetrySketches::default());
        assert_eq!(a, before);
        let mut e = TelemetrySketches::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn config_clamps_hostile_extremes() {
        let cfg = SketchConfig {
            quantile_bits: 200,
            hll_bits: 0,
            cm_rows: 0,
            cm_cols_log2: 250,
            hh_capacity: u16::MAX,
            value_sample_log2: 200,
        };
        // Must not allocate absurdly or panic.
        let s = TelemetrySketches::new(cfg);
        assert!(s.is_empty());
    }
}
