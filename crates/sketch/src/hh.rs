//! Heavy-hitter tracking: a count-min sketch plus a bounded
//! space-saving/Misra–Gries candidate list for top-k reporting.
//!
//! The count-min core is `d` rows of `2^w` counters with per-row
//! multiply-shift hashes seeded by fixed constants, so two sketches of
//! the same shape hash identically and their merge — elementwise
//! addition — is an exact commutative monoid. A sketch with more
//! columns folds exactly onto one with fewer (halving columns maps
//! counter `i` to `i >> 1`, matching the shorter hash prefix), and a
//! sketch with more rows truncates to the shared prefix of rows, so
//! mixed-shape merges are still deterministic and associative. Point
//! estimates (`min` over rows) are upper bounds that overshoot a key's
//! true count by more than `εn` (`ε ≈ e/2^w`) with probability at most
//! `e^-d`.
//!
//! The candidate list runs the weighted Misra–Gries discipline (the
//! summary of Agarwal et al.'s *Mergeable Summaries*): at most `M`
//! keys with lower-bound counters; overflow subtracts the `(M+1)`-th
//! largest counter from every entry and drops the non-positive ones.
//! Every subtraction `δ` removes at least `(M+1)·δ` total mass, so the
//! accumulated decrement — tracked exactly in [`error_bound`] — never
//! exceeds `n/(M+1)`. Hence every key with true count above
//! `error_bound()` (≤ `n/(M+1)`) is guaranteed present under **any**
//! merge order, with a counter in `[count − bound, count]`. When the
//! list never overflows (every zoo network has far fewer channels than
//! `M`) the counters are exact and the merge is exactly associative.
//!
//! [`error_bound`]: HeavyHitters::error_bound

use crate::splitmix64;
use std::fmt;

/// Sparse `(index-or-key, count)` pairs — the codec form for both the
/// count-min cells and the candidate list.
pub(crate) type SparsePairs = Vec<(u64, u64)>;

/// Maximum supported rows.
pub const MAX_ROWS: u8 = 8;
/// Maximum supported column exponent (`2^16` counters per row).
pub const MAX_COLS_LOG2: u8 = 16;
/// Minimum supported column exponent.
pub const MIN_COLS_LOG2: u8 = 4;
/// Maximum candidate-list capacity.
pub const MAX_CAPACITY: u16 = 1024;

/// Per-row multiply-shift seed: fixed per row index, shared by every
/// sketch, so equal-shape sketches are hash-compatible by construction.
#[inline]
fn row_seed(row: u8) -> u64 {
    splitmix64(0x6571_7368_u64 + row as u64) | 1
}

/// The count-min + Misra–Gries heavy-hitter sketch. See the module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct HeavyHitters {
    rows: u8,
    cols_log2: u8,
    capacity: u16,
    total: u64,
    /// Accumulated Misra–Gries decrement: the certified maximum
    /// undercount of any candidate counter. Provably ≤ `total/(capacity+1)`.
    decremented: u64,
    counts: Vec<u64>,
    /// `(key, counter)` sorted by key; counters are lower bounds within
    /// `decremented` of the true count.
    candidates: Vec<(u64, u64)>,
}

impl HeavyHitters {
    /// An empty sketch (`rows` clamped to `1..=8`, `cols_log2` to
    /// `4..=16`, `capacity` to `1..=1024`).
    pub fn new(rows: u8, cols_log2: u8, capacity: u16) -> HeavyHitters {
        let rows = rows.clamp(1, MAX_ROWS);
        let cols_log2 = cols_log2.clamp(MIN_COLS_LOG2, MAX_COLS_LOG2);
        let capacity = capacity.clamp(1, MAX_CAPACITY);
        HeavyHitters {
            rows,
            cols_log2,
            capacity,
            total: 0,
            decremented: 0,
            counts: vec![0; (rows as usize) << cols_log2],
            candidates: Vec::new(),
        }
    }

    /// Total weight inserted (exact).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True iff nothing has been inserted (the merge identity).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The certified maximum undercount of any candidate counter (0
    /// while the list has never overflowed — counters are then exact).
    /// Always ≤ `count() / (capacity + 1)`.
    pub fn error_bound(&self) -> u64 {
        self.decremented
    }

    /// The count-min overestimate factor `ε ≈ e / 2^w`: a point estimate
    /// exceeds the true count by more than `ε · total` with probability
    /// at most `e^-rows`.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / (1u64 << self.cols_log2) as f64
    }

    #[inline]
    fn cell(&self, row: u8, key: u64) -> usize {
        let idx = (key.wrapping_mul(row_seed(row)) >> (64 - self.cols_log2 as u32)) as usize;
        ((row as usize) << self.cols_log2) | idx
    }

    /// Adds `inc` to `key`'s traffic.
    pub fn insert(&mut self, key: u64, inc: u64) {
        if inc == 0 {
            return;
        }
        self.total += inc;
        for r in 0..self.rows {
            let c = self.cell(r, key);
            self.counts[c] += inc;
        }
        match self.candidates.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.candidates[i].1 += inc,
            Err(i) => {
                self.candidates.insert(i, (key, inc));
                self.shrink();
            }
        }
    }

    /// The count-min point estimate for `key` (an upper bound).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|r| self.counts[self.cell(r, key)])
            .min()
            .unwrap_or(0)
    }

    /// The Misra–Gries overflow step: subtract the `(M+1)`-th largest
    /// counter from every entry, drop the non-positive. Deterministic,
    /// and removes at least `(M+1)·δ` mass, which is what certifies
    /// `decremented ≤ total/(M+1)`.
    fn shrink(&mut self) {
        if self.candidates.len() <= self.capacity as usize {
            return;
        }
        let mut counters: Vec<u64> = self.candidates.iter().map(|&(_, n)| n).collect();
        counters.sort_unstable_by(|a, b| b.cmp(a));
        let delta = counters[self.capacity as usize];
        self.decremented += delta;
        self.candidates.retain_mut(|entry| {
            entry.1 = entry.1.saturating_sub(delta);
            entry.1 > 0
        });
    }

    /// The top `k` keys by candidate counter, busiest first, ties broken
    /// by smaller key. Counters are exact unless the candidate list ever
    /// overflowed, in which case they undercount by at most
    /// [`error_bound`](HeavyHitters::error_bound).
    pub fn top(&self, k: usize) -> Vec<(u64, u64)> {
        let mut sorted = self.candidates.clone();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        sorted.truncate(k);
        sorted
    }

    /// Folds count-min columns down to a coarser width (exact: counter
    /// `i` at width `2^w` maps to `i >> 1` at `2^(w-1)`, matching the
    /// one-bit-shorter hash prefix).
    fn fold_cols_to(&mut self, cols_log2: u8) {
        if cols_log2 >= self.cols_log2 {
            return;
        }
        let d = (self.cols_log2 - cols_log2) as u32;
        let old_w = 1usize << self.cols_log2;
        let new_w = 1usize << cols_log2;
        let mut folded = vec![0u64; (self.rows as usize) * new_w];
        for r in 0..self.rows as usize {
            for i in 0..old_w {
                let n = self.counts[(r * old_w) | i];
                if n > 0 {
                    folded[(r * new_w) | (i >> d)] += n;
                }
            }
        }
        self.counts = folded;
        self.cols_log2 = cols_log2;
    }

    /// Drops rows beyond `rows` (rows hash independently by fixed index,
    /// so the shared prefix of rows is identical across sketches).
    fn truncate_rows_to(&mut self, rows: u8) {
        if rows >= self.rows {
            return;
        }
        self.counts.truncate((rows as usize) << self.cols_log2);
        self.rows = rows;
    }

    /// Folds `other` in: aligns both to the coarser shape, adds the
    /// count-min grids, and merges the candidate lists keywise with the
    /// Misra–Gries overflow step. Commutative and identity-preserving;
    /// the count-min core is exactly associative, and the candidate
    /// layer is associative at the guarantee level — every key above
    /// `error_bound()` survives any merge order (exactly associative
    /// whenever the list never overflows).
    pub fn merge(&mut self, other: &HeavyHitters) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        self.fold_cols_to(other.cols_log2);
        self.truncate_rows_to(other.rows);
        let mut theirs = other.clone();
        theirs.fold_cols_to(self.cols_log2);
        theirs.truncate_rows_to(self.rows);
        for (mine, add) in self.counts.iter_mut().zip(&theirs.counts) {
            *mine += add;
        }
        self.total += theirs.total;
        self.decremented += theirs.decremented;
        self.capacity = self.capacity.min(theirs.capacity);
        for &(key, n) in &theirs.candidates {
            match self.candidates.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.candidates[i].1 += n,
                Err(i) => self.candidates.insert(i, (key, n)),
            }
        }
        self.shrink();
    }

    pub(crate) fn shape(&self) -> (u8, u8, u16, u64, u64) {
        (
            self.rows,
            self.cols_log2,
            self.capacity,
            self.total,
            self.decremented,
        )
    }

    /// Non-zero `(cell index, count)` pairs ascending, plus the
    /// candidate list (already key-sorted) — the codec form.
    pub(crate) fn sparse(&self) -> (SparsePairs, SparsePairs) {
        let cells = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i as u64, n))
            .collect();
        (cells, self.candidates.clone())
    }

    /// Rebuilds from the sparse form; rejects malformed shapes, unsorted
    /// or out-of-range entries, and candidate lists over capacity.
    pub(crate) fn from_sparse(
        rows: u8,
        cols_log2: u8,
        capacity: u16,
        total: u64,
        decremented: u64,
        cells: &[(u64, u64)],
        candidates: &[(u64, u64)],
    ) -> Option<HeavyHitters> {
        let mut s = HeavyHitters::new(rows, cols_log2, capacity);
        if s.shape() != (rows, cols_log2, capacity, 0, 0) {
            return None;
        }
        let mut prev: Option<u64> = None;
        for &(idx, n) in cells {
            if idx >= s.counts.len() as u64 || n == 0 || prev.is_some_and(|p| idx <= p) {
                return None;
            }
            s.counts[idx as usize] = n;
            prev = Some(idx);
        }
        if candidates.len() > capacity as usize {
            return None;
        }
        let mut prev_key: Option<u64> = None;
        for &(key, n) in candidates {
            if n == 0 || prev_key.is_some_and(|p| key <= p) {
                return None;
            }
            prev_key = Some(key);
        }
        s.candidates = candidates.to_vec();
        s.total = total;
        s.decremented = decremented;
        Some(s)
    }
}

impl fmt::Debug for HeavyHitters {
    /// Compact: shape, candidates, and only the non-zero count-min cells.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (cells, _) = self.sparse();
        f.debug_struct("HeavyHitters")
            .field("rows", &self.rows)
            .field("cols_log2", &self.cols_log2)
            .field("capacity", &self.capacity)
            .field("total", &self.total)
            .field("decremented", &self.decremented)
            .field("candidates", &self.candidates)
            .field("cells", &cells)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_within_capacity() {
        let mut h = HeavyHitters::new(4, 10, 32);
        for i in 0..20u64 {
            h.insert(i, i + 1);
        }
        assert_eq!(h.error_bound(), 0, "no overflow, counters exact");
        let top = h.top(3);
        assert_eq!(top, vec![(19, 20), (18, 19), (17, 18)]);
        assert!(h.estimate(19) >= 20, "count-min is an upper bound");
    }

    #[test]
    fn merge_equals_bulk_within_capacity() {
        let mut bulk = HeavyHitters::new(4, 10, 32);
        let mut parts: Vec<HeavyHitters> = (0..7).map(|_| HeavyHitters::new(4, 10, 32)).collect();
        for i in 0..5000u64 {
            let key = i % 24;
            bulk.insert(key, 1 + i % 3);
            parts[(i % 7) as usize].insert(key, 1 + i % 3);
        }
        let mut merged = HeavyHitters::new(4, 10, 32);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, bulk);
    }

    #[test]
    fn merge_is_commutative_and_identity_safe() {
        let mut a = HeavyHitters::new(4, 10, 32);
        let mut b = HeavyHitters::new(4, 10, 32);
        for i in 0..100u64 {
            a.insert(i % 11, i);
            b.insert(i % 13, i * 2);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut id = a.clone();
        id.merge(&HeavyHitters::new(1, 4, 1));
        assert_eq!(id, a, "empty sketch must not coarsen the target");
    }

    #[test]
    fn column_fold_matches_coarse_build() {
        let mut fine = HeavyHitters::new(4, 12, 32);
        let mut coarse = HeavyHitters::new(4, 8, 32);
        for i in 0..3000u64 {
            fine.insert(i % 50, 1);
            coarse.insert(i % 50, 1);
        }
        fine.fold_cols_to(8);
        assert_eq!(fine, coarse);
    }

    #[test]
    fn misra_gries_bound_is_certified() {
        // Tiny capacity, huge keyspace: overflow on nearly every insert.
        let mut h = HeavyHitters::new(4, 10, 4);
        let heavy = 99_999u64;
        for i in 0..2000u64 {
            h.insert(i, 1);
            if i % 3 == 0 {
                h.insert(heavy, 2);
            }
        }
        let n = h.count();
        let cap = 4u64;
        assert!(
            h.error_bound() <= n / (cap + 1),
            "decrement {} must stay under n/(M+1) = {}",
            h.error_bound(),
            n / (cap + 1)
        );
        // The heavy key (true count 1334) is far above the bound, so it
        // must be present with a counter within the bound of truth.
        let truth = 2 * 2000u64.div_ceil(3);
        let found = h
            .top(cap as usize)
            .into_iter()
            .find(|&(k, _)| k == heavy)
            .expect("heavy key must survive");
        assert!(found.1 <= truth);
        assert!(truth - found.1 <= h.error_bound());
    }
}
