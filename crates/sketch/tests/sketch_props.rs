//! Property suite for the sketch algebra: merge associativity,
//! commutativity, identity, merge-equals-bulk, and error bounds at
//! adversarial distributions.
//!
//! These are the laws the fleet roll-up leans on: worker-local sketches
//! merged at epoch commit, per-segment sketches rolled up across
//! resumes, and per-session summaries merged by the `fleet_report` RPC
//! must all equal the sketch of the union stream — independent of
//! partition, order, and grouping.

use eqp_sketch::{splitmix64, HeavyHitters, Hll, QuantileSketch, SketchConfig, TelemetrySketches};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministically expands a compact seed spec into a value stream:
/// mixes uniform, zipf-ish, and constant runs so the suites see both
/// spread-out and adversarially concentrated distributions.
fn stream(seed: u64, len: usize, skew: u8) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let h = splitmix64(seed ^ splitmix64(i));
            match skew % 3 {
                0 => h % 1_000_000,                                 // wide uniform
                1 => (h % 16).pow(5),                               // heavy-tailed
                _ => [0, 1, 1, 7, 7, 7, 1 << 40][(h % 7) as usize], // spiky
            }
        })
        .collect()
}

fn build_q(bits: u8, vals: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(bits);
    for &v in vals {
        s.insert(v);
    }
    s
}

fn build_full(vals: &[u64]) -> TelemetrySketches {
    let mut s = TelemetrySketches::default();
    for &v in vals {
        s.queue_depth.insert(v % 4096);
        s.latency.insert(v % 64);
        s.channel_traffic.insert(v % 24, 1);
        s.distinct_values.insert(splitmix64(v));
    }
    s
}

proptest! {
    /// Quantile merge is an exact monoid, even at mixed precisions.
    #[test]
    fn quantile_monoid_laws(seed in 0u64..500, skew in 0u8..3,
                            ka in 4u8..10, kb in 4u8..10, kc in 4u8..10) {
        let a = build_q(ka, &stream(seed, 300, skew));
        let b = build_q(kb, &stream(seed + 1, 200, skew));
        let c = build_q(kc, &stream(seed + 2, 100, skew));
        // associativity
        let mut left = a.clone(); left.merge(&b); left.merge(&c);
        let mut bc = b.clone(); bc.merge(&c);
        let mut right = a.clone(); right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // commutativity
        let mut ab = a.clone(); ab.merge(&b);
        let mut ba = b.clone(); ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // identity at any precision
        let mut id = a.clone(); id.merge(&QuantileSketch::new(1));
        prop_assert_eq!(&id, &a);
        let mut from_empty = QuantileSketch::new(12); from_empty.merge(&a);
        prop_assert_eq!(&from_empty, &a);
    }

    /// Sharded build ≡ single-stream build, exactly: split the stream
    /// into `shards` round-robin substreams (what worker-local capture
    /// does), merge in plan order, compare to the bulk sketch.
    #[test]
    fn quantile_merge_equals_bulk(seed in 0u64..500, skew in 0u8..3, shards in 1usize..9) {
        let vals = stream(seed, 600, skew);
        let bulk = build_q(6, &vals);
        let mut parts: Vec<QuantileSketch> = (0..shards).map(|_| QuantileSketch::new(6)).collect();
        for (i, &v) in vals.iter().enumerate() {
            parts[i % shards].insert(v);
        }
        let mut merged = QuantileSketch::new(6);
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &bulk);
    }

    /// Quantile relative value error stays within twice the advertised
    /// bound (midpoint reporting), across adversarial distributions.
    #[test]
    fn quantile_error_bound(seed in 0u64..300, skew in 0u8..3, bits in 4u8..10) {
        let vals = stream(seed, 500, skew);
        let s = build_q(bits, &vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            let truth = sorted[rank];
            let est = s.quantile(q);
            if truth == 0 {
                prop_assert_eq!(est, 0, "q={}", q);
            } else {
                let rel = (est as f64 - truth as f64).abs() / truth as f64;
                prop_assert!(rel <= 2.0 * s.relative_error_bound(),
                    "q={}: est {} true {} rel {}", q, est, truth, rel);
            }
        }
    }

    /// HLL merge is an exact monoid (mixed precisions included) and the
    /// estimate lands within 5σ of the true cardinality.
    #[test]
    fn hll_monoid_and_error(seed in 0u64..300, pa in 8u8..13, pb in 8u8..13, pc in 8u8..13) {
        let mut a = Hll::new(pa);
        let mut b = Hll::new(pb);
        let mut c = Hll::new(pc);
        let n = 4000u64;
        let mut bulk = Hll::new(pa.min(pb).min(pc));
        for i in 0..n {
            let h = splitmix64(seed * 1_000_003 + i);
            match i % 3 {
                0 => a.insert(h),
                1 => b.insert(h),
                _ => c.insert(h),
            }
            bulk.insert(h);
        }
        let mut left = a.clone(); left.merge(&b); left.merge(&c);
        let mut bc = b.clone(); bc.merge(&c);
        let mut right = a.clone(); right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &bulk, "merged must equal the coarse bulk build");
        let est = left.estimate();
        let sigma = 1.04 / ((1u64 << left.bits()) as f64).sqrt();
        let rel = (est - n as f64).abs() / n as f64;
        prop_assert!(rel < 5.0 * sigma, "estimate {} for n={} rel {}", est, n, rel);
    }

    /// Heavy hitters under adversarial overflow: the Misra–Gries layer
    /// certifies its own error bound (`≤ n/(M+1)`) under every merge
    /// order; every key above the bound is reported with a counter
    /// within the bound of its true count; and the count-min estimate
    /// stays an upper bound whose overshoot respects ε·n for all but a
    /// small (probabilistic, `e^-d`-style) fraction of keys.
    #[test]
    fn heavy_hitter_guarantee_under_merge_orders(seed in 0u64..300, shards in 1usize..6) {
        let keys: Vec<u64> = stream(seed, 800, 1).iter().map(|v| v % 64).collect();
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            *truth.entry(k).or_insert(0) += 1;
        }
        // Small capacity (8) forces MG overflow; small width (2^6)
        // forces count-min collisions.
        let mk = || HeavyHitters::new(4, 6, 8);
        let mut parts: Vec<HeavyHitters> = (0..shards).map(|_| mk()).collect();
        for (i, &k) in keys.iter().enumerate() {
            parts[i % shards].insert(k, 1);
        }
        let mut fwd = mk();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = mk();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        let n = keys.len() as u64;
        for h in [&fwd, &rev] {
            prop_assert_eq!(h.count(), n);
            prop_assert!(h.error_bound() <= n / (8 + 1),
                "certified bound {} exceeds n/(M+1) = {}", h.error_bound(), n / 9);
        }
        let eps_n = (fwd.epsilon() * n as f64).ceil() as u64;
        let mut cm_overshoots = 0usize;
        for (&k, &cnt) in &truth {
            // Count-min upper bound always holds, any merge order.
            prop_assert!(fwd.estimate(k) >= cnt);
            prop_assert!(rev.estimate(k) >= cnt);
            if fwd.estimate(k) - cnt > eps_n {
                cm_overshoots += 1;
            }
            for h in [&fwd, &rev] {
                if cnt > h.error_bound() {
                    let (_, counter) = h
                        .top(8)
                        .into_iter()
                        .find(|&(key, _)| key == k)
                        .unwrap_or_else(|| panic!("key {k} (count {cnt}) above the certified \
                                                   bound {} must be reported", h.error_bound()));
                    prop_assert!(counter <= cnt, "MG counters are lower bounds");
                    prop_assert!(cnt - counter <= h.error_bound());
                }
            }
        }
        // The ε bound is probabilistic per key (failure ≈ e^-d per row
        // independence assumption); with deterministic seeds allow a
        // small violating fraction rather than none.
        prop_assert!(cm_overshoots * 10 <= truth.len(),
            "{} of {} keys overshoot eps*n", cm_overshoots, truth.len());
    }

    /// The full container: merge-equals-bulk under round-robin sharding,
    /// and the byte codec round-trips the merged result exactly.
    #[test]
    fn container_merge_equals_bulk_and_roundtrips(seed in 0u64..300, shards in 1usize..9) {
        let vals = stream(seed, 400, (seed % 3) as u8);
        let bulk = build_full(&vals);
        let mut parts: Vec<TelemetrySketches> =
            (0..shards).map(|_| TelemetrySketches::new(SketchConfig::default())).collect();
        for (i, &v) in vals.iter().enumerate() {
            let s = &mut parts[i % shards];
            s.queue_depth.insert(v % 4096);
            s.latency.insert(v % 64);
            s.channel_traffic.insert(v % 24, 1);
            s.distinct_values.insert(splitmix64(v));
        }
        let mut merged = TelemetrySketches::default();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &bulk);
        let back = TelemetrySketches::from_bytes(&merged.to_bytes()).unwrap();
        prop_assert_eq!(&back, &merged);
        prop_assert_eq!(back.stats(), bulk.stats());
    }
}

/// The capture layer's sampled-HLL contract: feed the sketch a
/// deterministic 1-in-`2^s` hash partition of the value stream and
/// `stats()` scales the estimate back to the full-stream cardinality.
/// Mirrors the engine's two-hash discipline — a cheap Fibonacci
/// multiply decides partition membership, a *separate* full hash feeds
/// the HLL (selecting and inserting the same hash would pin the top
/// `s` bits and collapse the register spread). At `s = 5` over tens of
/// thousands of distincts, the subsample adds roughly `√(2^s/D)`
/// relative error on top of the HLL's own `1.04/√2^p` — both small, so
/// the scaled estimate must land within a conservative 15% of the
/// truth.
#[test]
fn sampled_hll_scaled_estimate_tracks_true_cardinality() {
    const SAMPLE_LOG2: u8 = 5;
    for (seed, distinct) in [(11u64, 20_000u64), (97, 50_000), (1234, 120_000)] {
        let mut s = TelemetrySketches::new(SketchConfig {
            value_sample_log2: SAMPLE_LOG2,
            ..SketchConfig::default()
        });
        for i in 0..distinct {
            // each value appears several times; dedup is the HLL's job
            for _rep in 0..3 {
                let v = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let in_partition =
                    v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SAMPLE_LOG2 as u32) == 0;
                if in_partition {
                    s.distinct_values.insert(splitmix64(v));
                }
            }
        }
        let est = s.stats().distinct_values;
        let rel = (est as f64 - distinct as f64).abs() / distinct as f64;
        assert!(
            rel < 0.15,
            "seed {seed}: scaled estimate {est} vs true {distinct} (rel {rel:.3})"
        );
    }
}
