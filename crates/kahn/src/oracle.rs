//! Oracles: fair bit streams driving nondeterministic choices (Park
//! 1982, used by the paper in Sections 4.6–4.10).
//!
//! An oracle is an infinite bit sequence consumed one bit per choice. For
//! *fair* processes (fair merge, fair random sequence) the oracle must
//! contain infinitely many `T`s and infinitely many `F`s; the seeded
//! generator here enforces a stronger *bounded alternation* property —
//! every window of `bound` bits contains both values — which realizes
//! fairness on every finite prefix (all a finite computation observes).

use crate::snapshot::StateCell;
use eqp_trace::Lasso;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fair bit stream with bounded alternation.
///
/// # Example
///
/// ```
/// use eqp_kahn::Oracle;
///
/// let mut o = Oracle::fair(7, 3); // runs of equal bits never exceed 3
/// let bits = o.take(100);
/// assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
/// ```
#[derive(Debug)]
pub struct Oracle {
    rng: StdRng,
    seed: u64,
    bound: usize,
    run_value: bool,
    run_len: usize,
    fixed: Option<(Lasso<bool>, usize)>,
}

impl Oracle {
    /// A seeded random oracle whose runs of equal bits never exceed
    /// `bound` (so both values occur in every window of `bound + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn fair(seed: u64, bound: usize) -> Oracle {
        assert!(bound > 0, "alternation bound must be positive");
        Oracle {
            rng: StdRng::seed_from_u64(seed),
            seed,
            bound,
            run_value: false,
            run_len: 0,
            fixed: None,
        }
    }

    /// A deterministic oracle replaying the given (finite or lasso) bit
    /// sequence; after a finite sequence is exhausted it alternates
    /// `T F T F …`. Useful for steering a run onto a chosen solution.
    pub fn scripted(bits: Lasso<bool>) -> Oracle {
        Oracle {
            rng: StdRng::seed_from_u64(0),
            seed: 0,
            bound: 1,
            run_value: false,
            run_len: 0,
            fixed: Some((bits, 0)),
        }
    }

    /// Draws the next bit.
    pub fn next_bit(&mut self) -> bool {
        if let Some((bits, pos)) = &mut self.fixed {
            let b = match bits.get(*pos) {
                Some(&b) => b,
                None => (*pos - bits.prefix().len()) % 2 == 0, // alternate
            };
            *pos += 1;
            return b;
        }
        let forced = self.run_len >= self.bound;
        let b = if forced {
            !self.run_value
        } else {
            self.rng.random_bool(0.5)
        };
        if b == self.run_value {
            self.run_len += 1;
        } else {
            self.run_value = b;
            self.run_len = 1;
        }
        b
    }

    /// Draws `n` bits.
    pub fn take(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Captures the oracle's mutable state — RNG stream position, current
    /// alternation run, scripted playback position — as a [`StateCell`]
    /// (for [`Process::snapshot`](crate::Process::snapshot) hooks of
    /// oracle-driven processes).
    pub fn snapshot(&self) -> StateCell {
        StateCell::List(vec![
            StateCell::Rng(self.rng.clone()),
            StateCell::Flag(self.run_value),
            StateCell::Nat(self.run_len as u64),
            StateCell::Nat(self.fixed.as_ref().map_or(0, |&(_, pos)| pos as u64)),
        ])
    }

    /// Restores state captured by [`snapshot`](Oracle::snapshot) on an
    /// identically constructed oracle. Returns `false` on shape mismatch.
    pub fn restore(&mut self, state: &StateCell) -> bool {
        let Some([rng, run_value, run_len, pos]) =
            state.as_list().and_then(|l| <&[_; 4]>::try_from(l).ok())
        else {
            return false;
        };
        let (Some(rng), Some(run_value), Some(run_len), Some(pos)) = (
            rng.as_rng(),
            run_value.as_flag(),
            run_len.as_nat(),
            pos.as_nat(),
        ) else {
            return false;
        };
        self.rng = rng.clone();
        self.run_value = run_value;
        self.run_len = run_len as usize;
        if let Some((_, p)) = &mut self.fixed {
            *p = pos as usize;
        }
        true
    }

    /// Rewinds the oracle to its just-constructed state (same seed, same
    /// script) — the genesis-replay fallback for oracle-driven processes.
    pub fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.run_value = false;
        self.run_len = 0;
        if let Some((_, pos)) = &mut self.fixed {
            *pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_oracle_bounded_runs() {
        let mut o = Oracle::fair(11, 3);
        let bits = o.take(500);
        let mut run = 1;
        for w in bits.windows(2) {
            if w[0] == w[1] {
                run += 1;
                assert!(run <= 3, "run of {run} exceeds bound");
            } else {
                run = 1;
            }
        }
        // both values occur
        assert!(bits.iter().any(|&b| b));
        assert!(bits.iter().any(|&b| !b));
    }

    #[test]
    fn fair_is_reproducible() {
        let a = Oracle::fair(5, 4).take(64);
        let b = Oracle::fair(5, 4).take(64);
        assert_eq!(a, b);
    }

    #[test]
    fn scripted_replays_then_alternates() {
        let mut o = Oracle::scripted(Lasso::finite(vec![true, true, false]));
        assert_eq!(o.take(6), vec![true, true, false, true, false, true]);
    }

    #[test]
    fn scripted_lasso_loops() {
        let mut o = Oracle::scripted(Lasso::repeat(vec![true, false, false]));
        assert_eq!(o.take(6), vec![true, false, false, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "alternation bound")]
    fn zero_bound_rejected() {
        let _ = Oracle::fair(0, 0);
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_bit_stream() {
        let mut live = Oracle::fair(13, 3);
        let _ = live.take(17);
        let cell = live.snapshot();
        let mut fresh = Oracle::fair(13, 3);
        assert!(fresh.restore(&cell));
        assert_eq!(fresh.take(64), live.take(64));
        // scripted oracles restore their playback position
        let mut s = Oracle::scripted(Lasso::finite(vec![true, false, true]));
        let _ = s.take(2);
        let cell = s.snapshot();
        let mut s2 = Oracle::scripted(Lasso::finite(vec![true, false, true]));
        assert!(s2.restore(&cell));
        assert_eq!(s2.take(4), s.take(4));
    }

    #[test]
    fn reset_rewinds_to_genesis() {
        let mut o = Oracle::fair(21, 2);
        let first = o.take(32);
        let _ = o.take(100);
        o.reset();
        assert_eq!(o.take(32), first);
    }
}
