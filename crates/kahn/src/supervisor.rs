//! Supervision: restart policies, crash recovery, and deterministic
//! replay.
//!
//! A supervised run
//! ([`Network::run_supervised`](crate::Network::run_supervised)) watches
//! every process for crashes
//! (engine-injected [`CrashPoint`](crate::faults::CrashPoint)s or
//! [`CrashAt`](crate::CrashAt) wrappers reporting
//! [`Process::crashed`](crate::Process::crashed)) and recovers them
//! one-for-one:
//!
//! 1. **Checkpoint.** The engine periodically captures every hooked
//!    process's [`StateCell`](crate::snapshot::StateCell) (every
//!    [`SupervisorOptions::checkpoint_every`] progress steps), and
//!    journals each process's observations — queue depths, peeks, pops,
//!    RNG draws — and sends since its last captured state.
//! 2. **Restore.** On crash the process's state is reloaded from the
//!    latest checkpoint; hookless processes fall back to
//!    [`Process::reset`](crate::Process::reset) + replay-from-genesis.
//!    The values it consumed since that state are re-queued at the front
//!    of its input channels.
//! 3. **Replay.** The journal is replayed: observations are served back
//!    verbatim, re-executed sends are suppressed (they were already
//!    delivered), and the process deterministically re-reaches exactly
//!    its pre-crash state — even though the rest of the network kept
//!    running. The global trace is untouched by recovery, which is what
//!    makes the invariant hold: a recovered quiescent run still
//!    certifies as [`Verdict::SmoothSolution`](crate::Verdict) of the
//!    *original* description (the paper's Theorem 2 — quiescent traces
//!    are exactly the smooth solutions — makes restart certification
//!    compositional: it suffices that the restarted component's
//!    projected history is unchanged).
//!
//! The same invariant is what lets supervision compose with *online*
//! certification
//! ([`run_supervised_monitored_faulted`](crate::Network::run_supervised_monitored_faulted)
//! / [`run_supervised_monitored_reliable`](crate::Network::run_supervised_monitored_reliable)):
//! the [`SmoothnessMonitor`](crate::monitor::SmoothnessMonitor) observes
//! only *committed* sends from the global trace, and replayed sends are
//! suppressed before commit, so a crash-recovery cycle feeds the monitor
//! nothing — its evaluator states advance exactly as in an uncrashed
//! run, and the differential suite pins that the online verdict equals
//! the post-hoc one across crash schedules. Periodic supervision
//! checkpoints carry the monitor's state
//! ([`Checkpoint::has_monitor`](crate::snapshot::Checkpoint::has_monitor)),
//! so a restored run resumes certification without re-feeding the
//! prefix.
//!
//! Policies cover the classic supervision ladder: immediate one-for-one
//! restart, restart with (doubling, capped) backoff, a per-process
//! max-restart budget, and escalate-to-fail.

use eqp_trace::{Chan, Value};
use std::collections::VecDeque;
use std::fmt;

/// When (and whether) a crashed process is restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart at the end of the round in which the crash was detected.
    OneForOne,
    /// Restart after a backoff that starts at `initial_rounds` and
    /// doubles with each restart of the same process, capped at
    /// `max_rounds`.
    Backoff {
        /// Backoff before the first restart, in scheduler rounds.
        initial_rounds: usize,
        /// Upper bound on the backoff, in scheduler rounds.
        max_rounds: usize,
    },
    /// Never restart: the first crash escalates and fails the run
    /// (`RunStatus::Escalated`).
    Escalate,
}

/// Supervision configuration for a run.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOptions {
    /// Restart timing policy.
    pub policy: RestartPolicy,
    /// Restarts allowed per process; one more crash escalates.
    pub max_restarts: usize,
    /// Progress steps between periodic checkpoints (also bounds how much
    /// journal a hooked process must replay after a crash).
    pub checkpoint_every: usize,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            policy: RestartPolicy::OneForOne,
            max_restarts: 3,
            checkpoint_every: 32,
        }
    }
}

impl SupervisorOptions {
    /// Immediate one-for-one restarts (the default).
    pub fn one_for_one() -> SupervisorOptions {
        SupervisorOptions::default()
    }

    /// Restart-with-backoff: `initial_rounds` doubling up to `max_rounds`.
    pub fn with_backoff(initial_rounds: usize, max_rounds: usize) -> SupervisorOptions {
        SupervisorOptions {
            policy: RestartPolicy::Backoff {
                initial_rounds,
                max_rounds,
            },
            ..SupervisorOptions::default()
        }
    }

    /// Escalate-to-fail on the first crash.
    pub fn escalate() -> SupervisorOptions {
        SupervisorOptions {
            policy: RestartPolicy::Escalate,
            ..SupervisorOptions::default()
        }
    }

    /// Sets the per-process restart budget.
    pub fn max_restarts(mut self, n: usize) -> SupervisorOptions {
        self.max_restarts = n;
        self
    }

    /// Sets the checkpoint cadence (progress steps).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn checkpoint_every(mut self, every: usize) -> SupervisorOptions {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = every;
        self
    }

    /// Backoff (in rounds) before restart number `restart_index`
    /// (0-based), or `None` if the policy escalates instead.
    pub(crate) fn backoff_for(&self, restart_index: usize) -> Option<usize> {
        match self.policy {
            RestartPolicy::OneForOne => Some(0),
            RestartPolicy::Backoff {
                initial_rounds,
                max_rounds,
            } => {
                let doubled = initial_rounds.saturating_shl(restart_index);
                Some(doubled.min(max_rounds))
            }
            RestartPolicy::Escalate => None,
        }
    }
}

/// Saturating left shift (usize::checked_shl works on u32 counts).
trait SaturatingShl {
    fn saturating_shl(self, by: usize) -> usize;
}

impl SaturatingShl for usize {
    fn saturating_shl(self, by: usize) -> usize {
        if self == 0 {
            return 0;
        }
        u32::try_from(by)
            .ok()
            .and_then(|b| self.checked_shl(b))
            .unwrap_or(usize::MAX)
    }
}

/// How a crashed process's state was restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMethod {
    /// From the latest periodic checkpoint via
    /// [`Process::restore`](crate::Process::restore).
    Snapshot,
    /// Via [`Process::reset`](crate::Process::reset) and a full replay of
    /// the genesis journal (hookless processes).
    ReplayFromGenesis,
}

/// One completed recovery, as reported in
/// [`RunReport::recoveries`](crate::RunReport::recoveries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Name of the recovered process.
    pub process: String,
    /// Global progress-step count when the crash was detected.
    pub crash_step: usize,
    /// Global progress-step count when the restart was performed.
    pub restart_step: usize,
    /// Step count of the checkpoint the state was restored from (0 for
    /// replay-from-genesis).
    pub restored_from_step: usize,
    /// Journal operations armed for replay.
    pub replayed_ops: usize,
    /// How the state came back.
    pub method: RestoreMethod,
}

impl fmt::Display for RecoveryRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` crashed at step {}, restarted at step {} from {} (replaying {} journaled ops)",
            self.process,
            self.crash_step,
            self.restart_step,
            match self.method {
                RestoreMethod::Snapshot =>
                    format!("the step-{} checkpoint", self.restored_from_step),
                RestoreMethod::ReplayFromGenesis => "genesis".to_owned(),
            },
            self.replayed_ops
        )
    }
}

/// One journaled operation: an observation a process made (served back
/// verbatim on replay) or a send it performed (suppressed on replay).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// `available(chan)` returned this depth.
    Available(Chan, usize),
    /// `peek(chan, i)` returned this value.
    Peek(Chan, usize, Option<Value>),
    /// `pop(chan)` returned this value.
    Pop(Chan, Option<Value>),
    /// One raw RNG word drawn through `flip`/`choose`.
    Draw(u64),
    /// `send(chan, value)` was performed.
    Sent(Chan, Value),
}

/// Per-process observation journal since its last captured state.
#[derive(Debug, Clone, Default)]
pub(crate) struct Journal {
    pub(crate) ops: Vec<Op>,
}

impl Journal {
    /// The values this journal's process successfully popped, in order —
    /// what must be re-queued (per channel, at the front) before replay.
    pub(crate) fn popped(&self) -> Vec<(Chan, Value)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Pop(c, Some(v)) => Some((*c, *v)),
                _ => None,
            })
            .collect()
    }
}

/// An armed replay: the journal's operations, drained front-to-back as
/// the restored process re-executes.
#[derive(Debug)]
pub(crate) struct Replay {
    pub(crate) ops: VecDeque<Op>,
    /// Set when the restored process performed a different operation than
    /// its journal records — it is not deterministic given its
    /// observations. The replay is abandoned (ops cleared, subsequent
    /// observations go live) and the engine escalates the process at the
    /// end of the step instead of panicking mid-run.
    pub(crate) diverged: Option<String>,
}

impl Replay {
    pub(crate) fn from_journal(journal: &Journal) -> Replay {
        Replay {
            ops: journal.ops.iter().cloned().collect(),
            diverged: None,
        }
    }

    /// Values still to be re-consumed from queue fronts — what a
    /// *second* crash during replay must drain before re-queueing the
    /// full journal again.
    pub(crate) fn pending_pops(&self) -> Vec<(Chan, Value)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Pop(c, Some(v)) => Some((*c, *v)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let opts = SupervisorOptions::with_backoff(1, 6);
        assert_eq!(opts.backoff_for(0), Some(1));
        assert_eq!(opts.backoff_for(1), Some(2));
        assert_eq!(opts.backoff_for(2), Some(4));
        assert_eq!(opts.backoff_for(3), Some(6)); // capped
        assert_eq!(opts.backoff_for(200), Some(6)); // shift saturates
    }

    #[test]
    fn one_for_one_is_immediate_and_escalate_refuses() {
        assert_eq!(SupervisorOptions::one_for_one().backoff_for(5), Some(0));
        assert_eq!(SupervisorOptions::escalate().backoff_for(0), None);
    }

    #[test]
    fn zero_initial_backoff_stays_zero() {
        let opts = SupervisorOptions::with_backoff(0, 8);
        assert_eq!(opts.backoff_for(4), Some(0));
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_checkpoint_cadence_rejected() {
        let _ = SupervisorOptions::default().checkpoint_every(0);
    }

    #[test]
    fn journal_popped_extracts_in_order() {
        let c = Chan::new(1);
        let d = Chan::new(2);
        let j = Journal {
            ops: vec![
                Op::Available(c, 2),
                Op::Pop(c, Some(Value::Int(1))),
                Op::Pop(d, None),
                Op::Sent(d, Value::Int(9)),
                Op::Pop(c, Some(Value::Int(2))),
            ],
        };
        assert_eq!(j.popped(), vec![(c, Value::Int(1)), (c, Value::Int(2))]);
        let r = Replay::from_journal(&j);
        assert_eq!(r.ops.len(), 5);
        assert_eq!(r.pending_pops().len(), 2);
    }

    #[test]
    fn recovery_record_displays_both_methods() {
        let rec = RecoveryRecord {
            process: "merge".into(),
            crash_step: 7,
            restart_step: 9,
            restored_from_step: 4,
            replayed_ops: 11,
            method: RestoreMethod::Snapshot,
        };
        let s = rec.to_string();
        assert!(s.contains("step-4 checkpoint") && s.contains("11 journaled ops"));
        let rec = RecoveryRecord {
            method: RestoreMethod::ReplayFromGenesis,
            ..rec
        };
        assert!(rec.to_string().contains("genesis"));
    }
}
