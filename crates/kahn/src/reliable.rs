//! Reliable transport: an ARQ link protocol that masks lossy channels.
//!
//! The paper's composition theorem says a network is described by the
//! pairing of its component descriptions — so a lossy channel wrapped in
//! a recovery protocol whose *composite* description is the identity
//! certifies exactly like a perfect wire. This module supplies that
//! wrapper at two levels:
//!
//! * **Engine level** ([`ReliableConfig`] +
//!   [`Network::run_report_reliable`](crate::Network::run_report_reliable)):
//!   every send on a protected channel enters an ARQ sender
//!   (sequence-numbered frames, bounded in-flight window), crosses a
//!   faulty medium (the channel's
//!   [`LinkFaultSpec`](crate::faults::LinkFaultSpec), if any), and is
//!   re-sequenced by a receive-side dedup/reorder window before being
//!   delivered — in order, exactly once — onto the real channel.
//!   Cumulative acks flow back over their own (optionally faulty)
//!   medium; unacked frames are retransmitted on a deterministic
//!   round-counted timer with exponential backoff and a per-link retry
//!   budget. The composite is the identity description, so PR 2's
//!   convicted drop/duplicate/reorder schedules certify as
//!   [`Verdict::SmoothSolution`](crate::Verdict) again.
//! * **Process level** ([`ReliableSender`] / [`ReliableReceiver`] /
//!   [`wire`]): the same protocol as ordinary network processes with a
//!   concrete wire format ([`Value::Pair`] frames carrying `seq mod 256`
//!   tags, [`Value::Int`] cumulative acks), full
//!   [`Process::snapshot`](crate::Process::snapshot()) participation, and
//!   explicit [`FaultyLink`] media — the form used to
//!   mask a *specific* faulty link inside a hand-built network, and the
//!   form that checkpoint/resume can capture byte-identically.
//!
//! On budget exhaustion the link degrades gracefully instead of hanging:
//! it abandons its in-flight state, logs a
//! [`FaultKind::RetryExhausted`] event, and the run terminates with
//! [`RunStatus::ReliabilityExhausted`](crate::RunStatus) naming the
//! link; the conformance bridge maps a clean truncated history under
//! that status to [`Verdict::Degraded`](crate::Verdict).

use crate::chanmap::ChanMap;
use crate::faults::{Fault, FaultEvent, FaultKind, FaultyLink};
use crate::network::Network;
use crate::process::{raw_send, Process, StepCtx, StepResult};
use crate::report::Telemetry;
use crate::snapshot::StateCell;
use eqp_trace::{Chan, Event, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// ARQ protocol parameters, shared by the engine-level and
/// process-level implementations. All timing is in deterministic
/// scheduler rounds (engine level) or scheduled steps (process level) —
/// there are no wall clocks anywhere in the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqOptions {
    /// Maximum unacked frames in flight; further sends queue in the
    /// sender's backlog. The process-level wire format requires
    /// `window <= 127` (sequence tags are `mod 256`).
    pub window: usize,
    /// Rounds to wait for an ack before the first retransmission.
    pub timeout_rounds: usize,
    /// Cap on the exponentially doubling retransmission timeout.
    pub max_backoff_rounds: usize,
    /// Retransmissions allowed for the oldest unacked frame; one more
    /// expiry exhausts the link and degrades the run.
    pub max_retries: usize,
}

impl Default for ArqOptions {
    fn default() -> Self {
        ArqOptions {
            window: 8,
            timeout_rounds: 4,
            max_backoff_rounds: 64,
            max_retries: 12,
        }
    }
}

impl ArqOptions {
    /// The retransmission timeout after `attempt` retries: doubling from
    /// [`timeout_rounds`](ArqOptions::timeout_rounds), capped at
    /// [`max_backoff_rounds`](ArqOptions::max_backoff_rounds), never
    /// zero.
    pub fn backoff(&self, attempt: usize) -> usize {
        let shifted = u32::try_from(attempt)
            .ok()
            .and_then(|a| self.timeout_rounds.checked_shl(a))
            .unwrap_or(usize::MAX);
        shifted.min(self.max_backoff_rounds).max(1)
    }

    /// A tiny budget (one fast retry) — the configuration chaos uses to
    /// provoke graceful degradation.
    pub fn impatient() -> ArqOptions {
        ArqOptions {
            timeout_rounds: 1,
            max_backoff_rounds: 2,
            max_retries: 1,
            ..ArqOptions::default()
        }
    }
}

/// Engine-level reliable-transport configuration: which channels to
/// protect and how. Passed to
/// [`Network::run_report_reliable`](crate::Network::run_report_reliable);
/// any [`LinkFaultSpec`](crate::faults::LinkFaultSpec) naming a
/// protected channel becomes the ARQ *medium* for that channel instead
/// of a bare faulty link.
#[derive(Debug, Clone)]
pub struct ReliableConfig {
    /// The protected channels.
    pub channels: Vec<Chan>,
    /// Protocol parameters, shared by every protected channel.
    pub arq: ArqOptions,
    /// Optional perturbation of the ack path (the data path's fault
    /// comes from the run's fault schedule).
    pub ack_fault: Option<Fault>,
}

impl ReliableConfig {
    /// Protects `channels` with default [`ArqOptions`] and a clean ack
    /// path.
    pub fn new(channels: Vec<Chan>) -> ReliableConfig {
        ReliableConfig {
            channels,
            arq: ArqOptions::default(),
            ack_fault: None,
        }
    }

    /// Overrides the protocol parameters.
    pub fn arq(mut self, arq: ArqOptions) -> ReliableConfig {
        self.arq = arq;
        self
    }

    /// Perturbs the ack path too.
    pub fn ack_fault(mut self, fault: Fault) -> ReliableConfig {
        self.ack_fault = Some(fault);
        self
    }
}

/// What a faulty medium did to one in-transit item.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MediumEvent<T> {
    /// 1-based arrival index of the perturbed item on this medium.
    pub(crate) seq: usize,
    pub(crate) kind: FaultKind,
    pub(crate) item: T,
}

/// A lossy in-flight buffer generic over its payload — the transport
/// layer under an engine-level [`ReliableLink`]'s frames and acks. A
/// `Clean` medium still buffers for one pump (links have latency, which
/// is the paper's benign asynchrony); faulty media reuse the
/// [`Fault`] taxonomy's drop/duplicate/reorder/delay semantics.
#[derive(Debug)]
pub(crate) struct Medium<T> {
    kind: MediumKind,
    rng: Option<StdRng>,
    /// `(arrival index, item)` pairs awaiting release.
    buffer: VecDeque<(usize, T)>,
    /// Items ingested so far (1-based arrival seq of the next is
    /// `seen + 1`).
    seen: usize,
}

#[derive(Debug, Clone, Copy)]
enum MediumKind {
    Clean,
    Delay { slack: usize },
    Reorder { window: usize },
    Duplicate { period: usize },
    Drop { period: usize },
}

impl<T: Copy> Medium<T> {
    pub(crate) fn new(fault: Option<&Fault>) -> Medium<T> {
        let (kind, rng) = match fault {
            None => (MediumKind::Clean, None),
            Some(Fault::Delay { slack }) => (MediumKind::Delay { slack: *slack }, None),
            Some(Fault::Reorder { window, seed }) => {
                assert!(*window > 0, "reorder window must be positive");
                (
                    MediumKind::Reorder { window: *window },
                    Some(StdRng::seed_from_u64(*seed)),
                )
            }
            Some(Fault::Duplicate { period }) => {
                assert!(*period > 0, "duplicate period must be positive");
                (MediumKind::Duplicate { period: *period }, None)
            }
            Some(Fault::Drop { period }) => {
                assert!(*period > 0, "drop period must be positive");
                (MediumKind::Drop { period: *period }, None)
            }
        };
        Medium {
            kind,
            rng,
            buffer: VecDeque::new(),
            seen: 0,
        }
    }

    /// Items currently in transit.
    pub(crate) fn in_flight(&self) -> usize {
        self.buffer.len()
    }

    /// Ingests one item; drop/duplicate perturbations happen here.
    pub(crate) fn on_send(&mut self, item: T) -> Option<MediumEvent<T>> {
        self.seen += 1;
        let seq = self.seen;
        match self.kind {
            MediumKind::Duplicate { period } if seq.is_multiple_of(period) => {
                self.buffer.push_back((seq, item));
                self.buffer.push_back((seq, item));
                Some(MediumEvent {
                    seq,
                    kind: FaultKind::Duplicated,
                    item,
                })
            }
            MediumKind::Drop { period } if seq.is_multiple_of(period) => Some(MediumEvent {
                seq,
                kind: FaultKind::Dropped,
                item,
            }),
            _ => {
                self.buffer.push_back((seq, item));
                None
            }
        }
    }

    /// End-of-round release. Clean/duplicate/drop media release
    /// everything; delay media hold up to `slack` items; reorder media
    /// release (in random order) whenever the window is full. With
    /// `force` each holding medium additionally releases one item, so
    /// buffers provably drain before quiescence.
    pub(crate) fn pump(&mut self, force: bool) -> (Vec<T>, Vec<MediumEvent<T>>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        match self.kind {
            MediumKind::Clean | MediumKind::Duplicate { .. } | MediumKind::Drop { .. } => {
                out.extend(self.buffer.drain(..).map(|(_, item)| item));
            }
            MediumKind::Delay { slack } => {
                while self.buffer.len() > slack {
                    out.push(self.buffer.pop_front().expect("nonempty").1);
                }
                if force {
                    if let Some((_, item)) = self.buffer.pop_front() {
                        out.push(item);
                    }
                }
            }
            MediumKind::Reorder { window } => {
                let rng = self.rng.as_mut().expect("reorder media carry an RNG");
                let buffer = &mut self.buffer;
                let mut release = |buffer: &mut VecDeque<(usize, T)>| {
                    let i = rng.random_range(0..buffer.len());
                    let (seq, item) = buffer.swap_remove_back(i).expect("index in range");
                    let overtook = buffer.iter().any(|&(s, _)| s < seq);
                    if overtook {
                        events.push(MediumEvent {
                            seq,
                            kind: FaultKind::Reordered,
                            item,
                        });
                    }
                    item
                };
                while buffer.len() >= window {
                    let item = release(buffer);
                    out.push(item);
                }
                if force && !buffer.is_empty() {
                    let item = release(buffer);
                    out.push(item);
                }
            }
        }
        (out, events)
    }

    /// Discards everything in transit (link abandonment on exhaustion).
    pub(crate) fn abandon(&mut self) {
        self.buffer.clear();
    }
}

/// One engine-level reliable link: the full
/// sender → medium → receiver → ack-medium loop for a single protected
/// channel, run by the engine between scheduler rounds. Sends on the
/// channel are intercepted into the sender; in-order exactly-once
/// deliveries come out of the receiver onto the real channel.
#[derive(Debug)]
pub(crate) struct ReliableLink {
    chan: Chan,
    arq: ArqOptions,
    /// True iff both media are clean: the protocol is provably the
    /// identity, so the link steps aside entirely and sends take the
    /// ordinary direct-delivery path — reliability costs nothing when
    /// the link underneath is already reliable.
    passthrough: bool,
    // --- sender ---
    next_seq: u64,
    /// Accepted sends not yet framed (window full), oldest first.
    backlog: VecDeque<Value>,
    /// Framed but unacked, oldest first.
    unacked: VecDeque<(u64, Value)>,
    /// Rounds until the next retransmission of the oldest unacked frame.
    timer: usize,
    /// Retransmissions of the current oldest unacked frame.
    attempt: usize,
    exhausted: bool,
    /// Messages abandoned after exhaustion (diagnostic).
    abandoned: usize,
    retransmits: usize,
    // --- media ---
    data: Medium<(u64, Value)>,
    acks: Medium<u64>,
    // --- receiver ---
    /// Next in-order sequence number to deliver.
    expected: u64,
    /// Out-of-order frames buffered for re-sequencing (dedup by key).
    reorder: BTreeMap<u64, Value>,
}

impl ReliableLink {
    pub(crate) fn new(
        chan: Chan,
        fault: Option<&Fault>,
        ack_fault: Option<&Fault>,
        arq: ArqOptions,
    ) -> ReliableLink {
        ReliableLink {
            chan,
            arq,
            passthrough: fault.is_none() && ack_fault.is_none(),
            next_seq: 0,
            backlog: VecDeque::new(),
            unacked: VecDeque::new(),
            timer: 0,
            attempt: 0,
            exhausted: false,
            abandoned: 0,
            retransmits: 0,
            data: Medium::new(fault),
            acks: Medium::new(ack_fault),
            expected: 0,
            reorder: BTreeMap::new(),
        }
    }

    pub(crate) fn chan(&self) -> Chan {
        self.chan
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// True iff both media are clean and the link is a pure identity:
    /// sends bypass the protocol machinery entirely.
    pub(crate) fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// Protocol state still owed to the channel. Zero once exhausted:
    /// the link has abandoned its obligations and the run may quiesce
    /// (degraded).
    pub(crate) fn pending(&self) -> usize {
        if self.exhausted {
            return 0;
        }
        self.unacked.len()
            + self.backlog.len()
            + self.data.in_flight()
            + self.acks.in_flight()
            + self.reorder.len()
    }

    fn frame_event(&self, e: MediumEvent<(u64, Value)>) -> FaultEvent {
        FaultEvent {
            chan: self.chan,
            seq: e.seq,
            kind: e.kind,
            value: e.item.1,
        }
    }

    /// Intercepts one send on the protected channel: framed immediately
    /// if the window has room, backlogged otherwise, discarded (counted)
    /// after exhaustion.
    pub(crate) fn on_send(&mut self, v: Value, telemetry: Option<&mut Telemetry>) {
        if self.exhausted {
            self.abandoned += 1;
            return;
        }
        if self.unacked.len() < self.arq.window {
            let s = self.next_seq;
            self.next_seq += 1;
            if self.unacked.is_empty() {
                self.timer = self.arq.timeout_rounds;
                self.attempt = 0;
            }
            self.unacked.push_back((s, v));
            if let Some(e) = self.data.on_send((s, v)) {
                let e = self.frame_event(e);
                if let Some(t) = telemetry {
                    t.note_link_fault(self.chan, e);
                }
            }
        } else {
            self.backlog.push_back(v);
        }
    }

    /// One end-of-round protocol turn: move frames through the data
    /// medium into the receiver (dedup, re-sequence, deliver in order
    /// onto the real channel, ack cumulatively), move acks back through
    /// the ack medium into the sender (advance the window, refill it
    /// from the backlog), and tick the retransmission timer. Returns
    /// true iff the link did (or is still waiting to do) anything — an
    /// armed retransmission timer keeps the run alive.
    pub(crate) fn pump(
        &mut self,
        queues: &mut ChanMap<VecDeque<Value>>,
        trace: &mut Vec<Event>,
        telemetry: &mut Telemetry,
        force: bool,
    ) -> bool {
        let mut activity = false;

        // Frames arriving at the receiver.
        let (arrivals, events) = self.data.pump(force);
        for e in events {
            let e = self.frame_event(e);
            telemetry.note_link_fault(self.chan, e);
        }
        let mut got_frame = false;
        for (seq, v) in arrivals {
            got_frame = true;
            if seq >= self.expected {
                // Duplicates inside the window collapse into the map.
                self.reorder.entry(seq).or_insert(v);
            }
        }
        while let Some(v) = self.reorder.remove(&self.expected) {
            raw_send(queues, trace, Some(telemetry), self.chan, v);
            self.expected += 1;
        }
        if got_frame {
            // Cumulative (re-)ack — re-acking duplicates is what recovers
            // from lost acks.
            let _ = self.acks.on_send(self.expected);
            activity = true;
        }

        // Acks arriving at the sender.
        let (ack_arrivals, _) = self.acks.pump(force);
        for ack in ack_arrivals {
            let before = self.unacked.len();
            while self.unacked.front().is_some_and(|&(s, _)| s < ack) {
                self.unacked.pop_front();
            }
            if self.unacked.len() != before {
                self.timer = self.arq.timeout_rounds;
                self.attempt = 0;
                activity = true;
            }
        }

        // Refill the window from the backlog.
        while !self.exhausted && self.unacked.len() < self.arq.window {
            let Some(v) = self.backlog.pop_front() else {
                break;
            };
            let s = self.next_seq;
            self.next_seq += 1;
            if self.unacked.is_empty() {
                self.timer = self.arq.timeout_rounds;
                self.attempt = 0;
            }
            self.unacked.push_back((s, v));
            if let Some(e) = self.data.on_send((s, v)) {
                let e = self.frame_event(e);
                telemetry.note_link_fault(self.chan, e);
            }
            activity = true;
        }

        // Retransmission timer.
        if !self.exhausted && !self.unacked.is_empty() {
            activity = true;
            self.timer = self.timer.saturating_sub(1);
            if self.timer == 0 {
                if self.attempt >= self.arq.max_retries {
                    let &(s, v) = self.unacked.front().expect("nonempty");
                    telemetry.note_link_fault(
                        self.chan,
                        FaultEvent {
                            chan: self.chan,
                            seq: s as usize + 1,
                            kind: FaultKind::RetryExhausted,
                            value: v,
                        },
                    );
                    self.exhausted = true;
                    self.abandoned += self.unacked.len() + self.backlog.len();
                    self.unacked.clear();
                    self.backlog.clear();
                    self.data.abandon();
                    self.acks.abandon();
                    self.reorder.clear();
                } else {
                    let frame = *self.unacked.front().expect("nonempty");
                    self.attempt += 1;
                    self.retransmits += 1;
                    self.timer = self.arq.backoff(self.attempt);
                    if let Some(e) = self.data.on_send(frame) {
                        let e = self.frame_event(e);
                        telemetry.note_link_fault(self.chan, e);
                    }
                }
            }
        }
        activity
    }
}

/// Builds the process-level frame `Pair(seq mod 256, payload)`.
fn frame(seq: u64, payload: i64) -> Value {
    Value::Pair((seq % 256) as u8, payload)
}

/// The mod-256 delta from `base`'s tag to `tag`, for reconstructing
/// absolute sequence numbers from wire tags.
fn tag_delta(tag: u64, base: u64) -> u64 {
    (tag + 256 - base % 256) % 256
}

/// The sending half of the process-level ARQ protocol: pops payloads
/// from `input`, emits sequence-tagged frames on `frame_out`
/// (retransmitting on a deterministic step-counted timer with
/// exponential backoff), and consumes cumulative acks from `ack_in`.
/// Carries [`Value::Int`] payloads only (the `Pair` wire format has one
/// integer slot).
///
/// On retry-budget exhaustion the sender *halts* instead of hanging: it
/// abandons its window, logs a [`FaultKind::RetryExhausted`] fault
/// event, and goes permanently idle — the network then quiesces and the
/// truncated history certifies as a smooth prefix.
pub struct ReliableSender {
    name: String,
    input: Chan,
    frame_out: Chan,
    ack_in: Chan,
    arq: ArqOptions,
    next_seq: u64,
    unacked: VecDeque<(u64, i64)>,
    timer: usize,
    attempt: usize,
    halted: bool,
    retransmits: u64,
}

impl ReliableSender {
    /// Creates a sender forwarding `input` payloads as frames on
    /// `frame_out`, acked via `ack_in`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= arq.window <= 127` (wire tags are mod 256, so
    /// unambiguous reconstruction needs a half-range window).
    pub fn new(
        name: impl Into<String>,
        input: Chan,
        frame_out: Chan,
        ack_in: Chan,
        arq: ArqOptions,
    ) -> ReliableSender {
        assert!(
            (1..=127).contains(&arq.window),
            "process-level ARQ windows must be in 1..=127 (mod-256 wire tags)"
        );
        ReliableSender {
            name: name.into(),
            input,
            frame_out,
            ack_in,
            arq,
            next_seq: 0,
            unacked: VecDeque::new(),
            timer: 0,
            attempt: 0,
            halted: false,
            retransmits: 0,
        }
    }

    /// Total retransmissions performed (recovery-cost diagnostic).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// True iff the sender halted — retry budget exhausted, or a
    /// wrong-shape payload poisoned it ([`FaultKind::PayloadRejected`]).
    pub fn halted(&self) -> bool {
        self.halted
    }
}

impl Process for ReliableSender {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input, self.ack_in]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.frame_out]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        // Drain acks first: cumulative, so only the newest matters.
        let mut advanced = false;
        while let Some(a) = ctx.pop(self.ack_in) {
            let Value::Int(tag) = a else { continue };
            let floor = self.unacked.front().map_or(self.next_seq, |&(s, _)| s);
            let upto = floor + tag_delta(tag.rem_euclid(256) as u64, floor);
            if upto > self.next_seq {
                continue; // stale tag from before the window advanced
            }
            while self.unacked.front().is_some_and(|&(s, _)| s < upto) {
                self.unacked.pop_front();
                advanced = true;
            }
        }
        if advanced {
            self.timer = self.arq.timeout_rounds;
            self.attempt = 0;
        }
        if self.halted {
            return if advanced {
                StepResult::Progress
            } else {
                StepResult::Idle
            };
        }
        // Window send.
        if self.unacked.len() < self.arq.window {
            if let Some(v) = ctx.pop(self.input) {
                let Value::Int(n) = v else {
                    // Int payloads only (the wire frame is `(seq, n)`).
                    // Anything else poisons the sender: log the rejected
                    // payload, abandon the window, and degrade — tenant
                    // wiring mistakes must never panic the runtime.
                    ctx.note_fault(FaultEvent {
                        chan: self.input,
                        seq: self.next_seq as usize + 1,
                        kind: FaultKind::PayloadRejected,
                        value: v,
                    });
                    self.halted = true;
                    self.unacked.clear();
                    return StepResult::Progress;
                };
                let s = self.next_seq;
                self.next_seq += 1;
                if self.unacked.is_empty() {
                    self.timer = self.arq.timeout_rounds;
                    self.attempt = 0;
                }
                self.unacked.push_back((s, n));
                ctx.send(self.frame_out, frame(s, n));
                return StepResult::Progress;
            }
        }
        // Retransmission timer: each scheduled step while frames are in
        // flight ticks it down; expiry retransmits the oldest frame or —
        // once the budget is spent — degrades.
        if !self.unacked.is_empty() {
            if self.timer > 1 {
                self.timer -= 1;
                return StepResult::Progress;
            }
            let &(s, n) = self.unacked.front().expect("nonempty");
            if self.attempt >= self.arq.max_retries {
                ctx.note_fault(FaultEvent {
                    chan: self.frame_out,
                    seq: s as usize + 1,
                    kind: FaultKind::RetryExhausted,
                    value: Value::Int(n),
                });
                self.halted = true;
                self.unacked.clear();
            } else {
                self.attempt += 1;
                self.retransmits += 1;
                self.timer = self.arq.backoff(self.attempt);
                ctx.send(self.frame_out, frame(s, n));
            }
            return StepResult::Progress;
        }
        if advanced {
            StepResult::Progress
        } else {
            StepResult::Idle
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::List(vec![
            StateCell::Nat(self.next_seq),
            StateCell::Nats(self.unacked.iter().map(|&(s, _)| s).collect()),
            StateCell::Values(self.unacked.iter().map(|&(_, n)| Value::Int(n)).collect()),
            StateCell::Nat(self.timer as u64),
            StateCell::Nat(self.attempt as u64),
            StateCell::Flag(self.halted),
            StateCell::Nat(self.retransmits),
        ]))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        let Some([next_seq, seqs, values, timer, attempt, halted, retransmits]) =
            state.as_list().and_then(|l| <&[_; 7]>::try_from(l).ok())
        else {
            return false;
        };
        let (Some(next_seq), Some(seqs), Some(values), Some(timer), Some(attempt)) = (
            next_seq.as_nat(),
            seqs.as_nats(),
            values.as_values(),
            timer.as_nat(),
            attempt.as_nat(),
        ) else {
            return false;
        };
        let (Some(halted), Some(retransmits)) = (halted.as_flag(), retransmits.as_nat()) else {
            return false;
        };
        if seqs.len() != values.len() {
            return false;
        }
        let mut unacked = VecDeque::with_capacity(seqs.len());
        for (&s, v) in seqs.iter().zip(values) {
            let Value::Int(n) = v else { return false };
            unacked.push_back((s, *n));
        }
        self.next_seq = next_seq;
        self.unacked = unacked;
        self.timer = timer as usize;
        self.attempt = attempt as usize;
        self.halted = halted;
        self.retransmits = retransmits;
        true
    }

    fn reset(&mut self) -> bool {
        self.next_seq = 0;
        self.unacked.clear();
        self.timer = 0;
        self.attempt = 0;
        self.halted = false;
        self.retransmits = 0;
        true
    }
}

/// The receiving half of the process-level ARQ protocol: pops frames
/// from `frame_in`, de-duplicates and re-sequences them in a mod-256
/// reorder window, delivers payloads in order on `output`, and emits a
/// cumulative ack on `ack_out` for every frame received (re-acking
/// duplicates is what recovers from lost acks).
pub struct ReliableReceiver {
    name: String,
    frame_in: Chan,
    output: Chan,
    ack_out: Chan,
    /// Next in-order sequence number to deliver.
    expected: u64,
    /// Out-of-order payloads buffered for re-sequencing.
    buffer: BTreeMap<u64, i64>,
    /// Set when a wrong-shape frame arrived: the receiver stops
    /// transporting (discarding further frames) instead of panicking.
    poisoned: bool,
}

impl ReliableReceiver {
    /// Creates a receiver re-sequencing `frame_in` onto `output`, acking
    /// on `ack_out`.
    pub fn new(
        name: impl Into<String>,
        frame_in: Chan,
        output: Chan,
        ack_out: Chan,
    ) -> ReliableReceiver {
        ReliableReceiver {
            name: name.into(),
            frame_in,
            output,
            ack_out,
            expected: 0,
            buffer: BTreeMap::new(),
            poisoned: false,
        }
    }

    /// True iff a wrong-shape frame poisoned this receiver
    /// ([`FaultKind::PayloadRejected`]).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }
}

impl Process for ReliableReceiver {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.frame_in]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output, self.ack_out]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match ctx.pop(self.frame_in) {
            Some(frame) if self.poisoned => {
                // Drain and discard: a poisoned receiver keeps the
                // channel from backing up but transports nothing.
                let _ = frame;
                StepResult::Progress
            }
            Some(Value::Pair(tag, n)) => {
                let delta = tag_delta(u64::from(tag), self.expected);
                if delta < 128 {
                    // In or ahead of the window: buffer (dedup by key)
                    // and flush whatever became contiguous.
                    self.buffer.entry(self.expected + delta).or_insert(n);
                    while let Some(n) = self.buffer.remove(&self.expected) {
                        ctx.send(self.output, Value::Int(n));
                        self.expected += 1;
                    }
                }
                // Behind the window (delta >= 128): a stale duplicate —
                // discard, but still re-ack.
                ctx.send(self.ack_out, Value::Int((self.expected % 256) as i64));
                StepResult::Progress
            }
            Some(other) => {
                // Pair frames only. A wrong-shape frame poisons the
                // receiver: log it, stop transporting, degrade — never
                // panic on data that may originate from a tenant spec.
                ctx.note_fault(FaultEvent {
                    chan: self.frame_in,
                    seq: self.expected as usize + 1,
                    kind: FaultKind::PayloadRejected,
                    value: other,
                });
                self.poisoned = true;
                self.buffer.clear();
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::List(vec![
            StateCell::Nat(self.expected),
            StateCell::Nats(self.buffer.keys().copied().collect()),
            StateCell::Values(self.buffer.values().map(|&n| Value::Int(n)).collect()),
            StateCell::Flag(self.poisoned),
        ]))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        let Some([expected, seqs, values, poisoned]) =
            state.as_list().and_then(|l| <&[_; 4]>::try_from(l).ok())
        else {
            return false;
        };
        let (Some(expected), Some(seqs), Some(values), Some(poisoned)) = (
            expected.as_nat(),
            seqs.as_nats(),
            values.as_values(),
            poisoned.as_flag(),
        ) else {
            return false;
        };
        if seqs.len() != values.len() {
            return false;
        }
        let mut buffer = BTreeMap::new();
        for (&s, v) in seqs.iter().zip(values) {
            let Value::Int(n) = v else { return false };
            buffer.insert(s, *n);
        }
        self.expected = expected;
        self.buffer = buffer;
        self.poisoned = poisoned;
        true
    }

    fn reset(&mut self) -> bool {
        self.expected = 0;
        self.buffer.clear();
        self.poisoned = false;
        true
    }
}

/// Wires a complete reliable transport from `input` to `output` into
/// `net`: a [`ReliableSender`], an optional [`FaultyLink`] data medium,
/// a [`ReliableReceiver`], and an optional [`FaultyLink`] ack medium.
/// `aux` supplies the four internal channels
/// `[frames, frames after the medium, acks, acks after the medium]`
/// (the post-medium channels are unused when the corresponding fault is
/// `None`). The composite subnetwork's description is the identity from
/// `input` to `output` — certify it with the auxiliary channels hidden
/// ([`ConformanceOptions::visible`](crate::ConformanceOptions)).
#[allow(clippy::too_many_arguments)]
pub fn wire(
    net: &mut Network,
    name: &str,
    input: Chan,
    output: Chan,
    aux: [Chan; 4],
    fault: Option<Fault>,
    ack_fault: Option<Fault>,
    arq: ArqOptions,
) {
    let [frames, frames_rx, acks, acks_rx] = aux;
    let receiver_in = match fault {
        Some(f) => {
            net.add(FaultyLink::new(
                format!("{name}.medium"),
                frames,
                frames_rx,
                f,
            ));
            frames_rx
        }
        None => frames,
    };
    let sender_ack = match ack_fault {
        Some(f) => {
            net.add(FaultyLink::new(
                format!("{name}.ack-medium"),
                acks,
                acks_rx,
                f,
            ));
            acks_rx
        }
        None => acks,
    };
    net.add(ReliableSender::new(
        format!("{name}.tx"),
        input,
        frames,
        sender_ack,
        arq,
    ));
    net.add(ReliableReceiver::new(
        format!("{name}.rx"),
        receiver_in,
        output,
        acks,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T: Copy>(m: &mut Medium<T>) -> Vec<T> {
        let mut out = Vec::new();
        for _ in 0..64 {
            let (items, _) = m.pump(true);
            if items.is_empty() && m.in_flight() == 0 {
                break;
            }
            out.extend(items);
        }
        out
    }

    #[test]
    fn clean_medium_is_one_round_of_latency() {
        let mut m: Medium<i64> = Medium::new(None);
        assert!(m.on_send(1).is_none());
        assert!(m.on_send(2).is_none());
        assert_eq!(m.in_flight(), 2);
        let (out, events) = m.pump(false);
        assert_eq!(out, vec![1, 2]);
        assert!(events.is_empty());
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn drop_medium_discards_periodically() {
        let mut m: Medium<i64> = Medium::new(Some(&Fault::Drop { period: 2 }));
        let mut dropped = Vec::new();
        for i in 1..=6 {
            if let Some(e) = m.on_send(i) {
                assert_eq!(e.kind, FaultKind::Dropped);
                dropped.push(e.item);
            }
        }
        assert_eq!(dropped, vec![2, 4, 6]);
        assert_eq!(drain(&mut m), vec![1, 3, 5]);
    }

    #[test]
    fn duplicate_medium_doubles_periodically() {
        let mut m: Medium<i64> = Medium::new(Some(&Fault::Duplicate { period: 3 }));
        for i in 1..=4 {
            let _ = m.on_send(i);
        }
        assert_eq!(drain(&mut m), vec![1, 2, 3, 3, 4]);
    }

    #[test]
    fn reorder_medium_permutes_but_preserves_content() {
        let mut m: Medium<i64> = Medium::new(Some(&Fault::Reorder { window: 3, seed: 9 }));
        for i in 1..=6 {
            assert!(m.on_send(i).is_none(), "reorder perturbs at release");
        }
        let mut out = drain(&mut m);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn delay_medium_holds_at_most_slack_without_force() {
        let mut m: Medium<i64> = Medium::new(Some(&Fault::Delay { slack: 2 }));
        for i in 1..=5 {
            let _ = m.on_send(i);
        }
        let (out, _) = m.pump(false);
        assert_eq!(out, vec![1, 2, 3], "releases above the slack, in order");
        let (out, _) = m.pump(true);
        assert_eq!(out, vec![4], "force releases one per pump");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let arq = ArqOptions {
            timeout_rounds: 3,
            max_backoff_rounds: 10,
            ..ArqOptions::default()
        };
        assert_eq!(arq.backoff(0), 3);
        assert_eq!(arq.backoff(1), 6);
        assert_eq!(arq.backoff(2), 10);
        assert_eq!(arq.backoff(500), 10, "shift saturates");
        let zero = ArqOptions {
            timeout_rounds: 0,
            ..ArqOptions::default()
        };
        assert_eq!(zero.backoff(0), 1, "never zero");
    }

    #[test]
    fn tag_reconstruction_round_trips_across_wraparound() {
        for base in [0u64, 100, 255, 256, 300, 1000] {
            for ahead in 0..127 {
                let seq = base + ahead;
                let tag = seq % 256;
                assert_eq!(base + tag_delta(tag, base), seq);
            }
        }
    }

    #[test]
    fn wrong_shape_payload_poisons_sender_instead_of_panicking() {
        use crate::procs::Source;
        use crate::scheduler::RoundRobin;
        use crate::{Network, RunOptions};
        let (input, frames, output, acks) =
            (Chan::new(0), Chan::new(1), Chan::new(2), Chan::new(3));
        let mut net = Network::new();
        // a Bit in an Int-only transport: tenant wiring mistake
        net.add(Source::new(
            "env",
            input,
            [Value::Int(1), Value::tt(), Value::Int(2)],
        ));
        net.add(ReliableSender::new(
            "tx",
            input,
            frames,
            acks,
            ArqOptions::default(),
        ));
        net.add(ReliableReceiver::new("rx", frames, output, acks));
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        // the payload before the poison still delivered; the rejection is
        // a named fault, not a process abort
        assert_eq!(
            report.trace.seq_on(output).take(10),
            vec![Value::Int(1)],
            "prefix before the poison delivers"
        );
        let rejected: Vec<_> = report
            .fault_log()
            .iter()
            .filter(|f| f.event.kind == FaultKind::PayloadRejected)
            .collect();
        assert_eq!(rejected.len(), 1, "{:?}", report.fault_log());
        assert_eq!(rejected[0].source, "tx");
        assert_eq!(rejected[0].event.value, Value::tt());
    }

    #[test]
    fn wrong_shape_frame_poisons_receiver_instead_of_panicking() {
        use crate::procs::Source;
        use crate::scheduler::RoundRobin;
        use crate::{Network, RunOptions};
        let (frames, output, acks) = (Chan::new(0), Chan::new(1), Chan::new(2));
        let mut net = Network::new();
        // raw non-Pair bytes straight into the receiver
        net.add(Source::new(
            "env",
            frames,
            [Value::Pair(0, 5), Value::Int(9), Value::Pair(1, 6)],
        ));
        net.add(ReliableReceiver::new("rx", frames, output, acks));
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        assert_eq!(
            report.trace.seq_on(output).take(10),
            vec![Value::Int(5)],
            "in-order prefix before the poison delivers; nothing after"
        );
        let rejected: Vec<_> = report
            .fault_log()
            .iter()
            .filter(|f| f.event.kind == FaultKind::PayloadRejected)
            .collect();
        assert_eq!(rejected.len(), 1, "{:?}", report.fault_log());
        assert_eq!(rejected[0].source, "rx");
        assert_eq!(rejected[0].event.value, Value::Int(9));
        assert!(report.quiescent, "the poisoned run still terminates");
    }

    #[test]
    #[should_panic(expected = "1..=127")]
    fn oversized_process_window_rejected() {
        let _ = ReliableSender::new(
            "tx",
            Chan::new(0),
            Chan::new(1),
            Chan::new(2),
            ArqOptions {
                window: 128,
                ..ArqOptions::default()
            },
        );
    }
}
