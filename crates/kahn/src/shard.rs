//! Sharded deterministic multicore runtime: partition a network's
//! processes across worker threads, step them in parallel, and commit
//! every observable effect — trace events, telemetry meters, checkpoint
//! state — in one canonical order that is *byte-identical for every
//! shard count*.
//!
//! # Protocol: epoch-commit BSP
//!
//! The coordinator owns the canonical run state (the mirror queues, the
//! trace, telemetry, counters, the scheduler, the monitor). Execution
//! proceeds in **epochs**:
//!
//! 1. **Plan.** Drain up to `budget` entries from the scheduler round in
//!    flight (`budget` truncates at the step bound, so an epoch can
//!    never overshoot it; checkpoints never truncate — captures happen
//!    only at round boundaries, keeping them pure observation). Each entry
//!    becomes a `Slot` carrying the process index and its per-process
//!    *offer serial*; the serial seeds that step's private RNG, so
//!    nondeterministic choices depend only on `(run seed, process,
//!    offer)` — never on the shard layout.
//! 2. **Scatter.** Every worker receives one `Cmd::Epoch` over its
//!    command ring: the cross-shard deliveries produced by the *previous*
//!    epoch's commits, plus its sub-plan (the plan entries owned by its
//!    shard, in plan order).
//! 3. **Step.** Workers apply deliveries, then step their sub-plan
//!    against their local queue fragments. Sends are *intercepted* (see
//!    `StepCtx::shard_out`) instead of delivered, and streamed back as
//!    `SlotResult`s over the result ring.
//! 4. **Commit.** The coordinator consumes results *in global plan
//!    order* and applies each one to the canonical state: pops mirror
//!    off the canonical queues, sends append to the trace and route to
//!    the consumer shard's next-epoch delivery buffer, counters and
//!    telemetry update exactly as the single-threaded engine would.
//!
//! Deliveries — including same-shard ones — become visible to processes
//! only at the *next* epoch. This bulk-synchronous visibility rule is
//! what makes the semantics a function of canonical state alone: a
//! worker's view at epoch `k` is "all sends committed before epoch `k`,
//! minus its own pops", regardless of which shard produced them.
//!
//! # Determinism (proof sketch, see DESIGN.md §13)
//!
//! By induction over epochs: (1) the epoch plan is a function of
//! canonical state only (scheduler round, step budget, checkpoint
//! target); (2) each slot's result is a function of the process state,
//! its local queues (= committed deliveries minus its own pops — the
//! single-consumer discipline makes these private), and an RNG derived
//! from `(seed, proc, serial)`; (3) commits apply results in global plan
//! order. Hence trace, telemetry, counters, verdicts and checkpoints are
//! byte-identical for every shard count, including the inline 1-shard
//! backend. Abramsky's generalized Kahn principle then licenses the
//! whole construction: any deterministic merge of the per-process
//! histories certifies identically against the description.
//!
//! # Deadlock freedom
//!
//! The coordinator consumes each shard's result ring in sub-plan order —
//! exactly the order the worker produces results. A worker blocked on a
//! full result ring implies the coordinator is behind on that ring, and
//! the result the coordinator awaits (on whatever ring) is computed by a
//! worker that shares no resource with it: workers never wait on each
//! other, only on the coordinator's epoch commands. No cycle exists.
//!
//! # Scope
//!
//! Sharded runs require every process to declare its
//! [`inputs`](crate::Process::inputs) (channel routing needs a consumer
//! map) and exclude bounded channels, fault injection, supervision, and
//! reliable links — those interpose on delivery, which the epoch
//! protocol owns. The seeded per-step RNG means nondeterministic
//! processes draw a *different* (but equally reproducible) stream than
//! the single-threaded engine; deterministic networks produce the same
//! per-channel histories either way, and certify identically.

use crate::chanmap::ChanMap;
use crate::conformance::Conformance;
use crate::monitor::{MonitorPolicy, SmoothnessMonitor};
use crate::network::{probe_quiescent, ProcCounters, RunOptions};
use crate::process::{Process, StepCtx, StepResult};
use crate::report::{
    ChannelReport, ConsumerViolation, FaultRecord, FaultSource, ProcessReport, RunReport,
    RunStatus, Telemetry,
};
use crate::scheduler::Scheduler;
use crate::snapshot::{Checkpoint, StateCell};
use crate::spsc::{self, Spsc, SpscReceiver};
use eqp_core::Description;
use eqp_trace::{Chan, Event, Trace, Value};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;

/// Command-ring capacity: at most one epoch is in flight, plus a
/// snapshot or shutdown chaser.
const CMD_RING: usize = 4;
/// Result-ring capacity: workers stream slot results ahead of the
/// commit cursor; a full ring merely throttles a worker that is ahead.
const REPLY_RING: usize = 256;

/// One scheduled step: which process, and its per-process offer serial
/// (the `serial`-th time this process has been offered a step).
#[derive(Debug, Clone, Copy)]
struct Slot {
    proc: usize,
    serial: u64,
}

/// Coordinator → worker messages.
enum Cmd {
    /// Deliver the previous epoch's cross-shard sends, then step the
    /// sub-plan, streaming one [`Reply::Slot`] per entry.
    Epoch {
        deliveries: Vec<(Chan, Value)>,
        plan: Vec<Slot>,
    },
    /// Reply with the shard's process state cells ([`Reply::Snapshot`]).
    Snapshot,
    /// Exit the worker loop.
    Shutdown,
}

/// Worker → coordinator messages.
enum Reply {
    Slot(SlotResult),
    Snapshot(Vec<(usize, Option<StateCell>)>),
}

/// Everything one step produced, shipped back for canonical commit.
struct SlotResult {
    result: StepResult,
    /// Intercepted sends, in send order.
    sends: Vec<(Chan, Value)>,
    /// `(channel, pops)` for each declared input the step consumed from,
    /// observed by diffing local queue depths around the step — the hot
    /// path carries no per-step telemetry structure at all; the commit
    /// meters receives (and sends) canonically. Empty for idle steps,
    /// which is the common case, so it usually never allocates.
    reads: Vec<(Chan, u32)>,
}

/// Derives the private RNG seed for one step from run seed, process
/// index, and offer serial (splitmix64 finalizer — any fixed mixing
/// works; shard-layout independence is what matters).
fn step_seed(seed: u64, proc: usize, serial: u64) -> u64 {
    let mut z = seed
        ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ serial.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard's slice of the network: `(global index, process, declared
/// inputs)` triples, ascending by index.
type ShardPart<'a> = Vec<(usize, &'a mut Box<dyn Process>, Vec<Chan>)>;

/// One shard's execution context: its processes (round-robin partition,
/// process `i` lives on shard `i % shards`) and the local fragments of
/// the queues its processes consume.
struct Worker<'a> {
    /// The shard's [`ShardPart`]. The inputs are captured once so the
    /// per-step read diff never calls the allocating
    /// [`Process::inputs`] hook.
    procs: ShardPart<'a>,
    /// Local queues for the channels this shard's processes consume.
    queues: ChanMap<VecDeque<Value>>,
    /// Derived run seed shared by all shards (see [`step_seed`]).
    seed: u64,
    /// Total shard count (for the `global index → local slot` map).
    shards: usize,
    /// Reusable pre-step queue-depth snapshot (one entry per declared
    /// input of the process being stepped).
    depths: Vec<usize>,
}

impl Worker<'_> {
    fn deliver(&mut self, deliveries: Vec<(Chan, Value)>) {
        for (c, v) in deliveries {
            self.queues.entry(c).or_default().push_back(v);
        }
    }

    fn step_slot(&mut self, slot: Slot) -> SlotResult {
        let local = slot.proc / self.shards;
        let (idx, p, inputs) = &mut self.procs[local];
        debug_assert_eq!(*idx, slot.proc, "round-robin partition out of sync");
        self.depths.clear();
        for c in inputs.iter() {
            self.depths
                .push(self.queues.get(c).map_or(0, VecDeque::len));
        }
        let mut sends = Vec::new();
        let mut scratch = Vec::new();
        let mut rng = StdRng::seed_from_u64(step_seed(self.seed, slot.proc, slot.serial));
        let result = {
            let mut ctx = StepCtx::bare(&mut self.queues, &mut scratch, &mut rng, None, slot.proc);
            ctx.shard_out = Some(&mut sends);
            p.step(&mut ctx)
        };
        debug_assert!(
            scratch.is_empty(),
            "sharded sends must be intercepted before reaching the trace"
        );
        // Pops can only land on declared inputs (routing delivers nothing
        // else to this shard), so diffing their depths recovers every
        // receive. Intercepted sends never touch local queues, so the
        // depth can only have shrunk.
        let mut reads = Vec::new();
        for (before, c) in self.depths.iter().zip(inputs.iter()) {
            let after = self.queues.get(c).map_or(0, VecDeque::len);
            if after < *before {
                reads.push((*c, (*before - after) as u32));
            }
        }
        SlotResult {
            result,
            sends,
            reads,
        }
    }

    fn run(mut self, mut cmds: SpscReceiver<Cmd>, mut replies: Spsc<Reply>) {
        loop {
            match cmds.pop() {
                Cmd::Epoch { deliveries, plan } => {
                    self.deliver(deliveries);
                    for slot in plan {
                        replies.push(Reply::Slot(self.step_slot(slot)));
                    }
                }
                Cmd::Snapshot => {
                    let cells = self
                        .procs
                        .iter()
                        .map(|(i, p, _)| (*i, p.snapshot()))
                        .collect();
                    replies.push(Reply::Snapshot(cells));
                }
                Cmd::Shutdown => return,
            }
        }
    }
}

/// The execution backend: the same [`Worker`] code drives both, so the
/// 1-shard run is byte-identical to every multi-shard run by
/// construction, not by special-casing.
enum Backend<'a> {
    /// Single shard, no threads, and no worker-local state at all: slots
    /// step directly against the coordinator's canonical mirror, trace
    /// and telemetry — the plain engine's own data path — while
    /// per-channel *visibility watermarks* (raised once per epoch, see
    /// [`StepCtx`]'s `visible` mode) enforce exactly the bulk-synchronous
    /// delivery rule the rings give the threaded backend: a send lands
    /// in the canonical queue immediately but stays invisible to its
    /// consumer until the next epoch. This keeps the 1-shard run
    /// byte-identical to every multi-shard run at near-zero overhead
    /// over the unsharded engine (no double bookkeeping, no staging).
    Inline {
        procs: &'a mut [Box<dyn Process>],
        /// How much of each declared channel's front is visible; raised
        /// to the full queue length at every epoch boundary. Undeclared
        /// (terminal) channels never get a watermark — nobody may read
        /// them, matching the threaded backend's routing.
        visible: ChanMap<usize>,
        /// Derived run seed (see [`step_seed`]).
        seed: u64,
    },
    /// One worker thread per shard, connected by SPSC rings.
    Threads {
        cmds: Vec<Spsc<Cmd>>,
        replies: Vec<SpscReceiver<Reply>>,
    },
}

impl Backend<'_> {
    /// Opens an epoch: raises the inline watermarks, or ships the
    /// previous epoch's deliveries plus the sub-plans to every worker
    /// (all of them — deliveries must land even on shards with empty
    /// sub-plans).
    fn begin_epoch(&mut self, state: &mut ShardState, plan: &[Slot]) {
        match self {
            Backend::Inline { visible, .. } => {
                for &c in state.consumer_of.keys() {
                    let len = state.mirror.get(&c).map_or(0, VecDeque::len);
                    visible.insert(c, len);
                }
            }
            Backend::Threads { cmds, .. } => {
                let shards = cmds.len();
                let mut subplans: Vec<Vec<Slot>> = vec![Vec::new(); shards];
                for &slot in plan {
                    subplans[slot.proc % shards].push(slot);
                }
                for (s, cmd) in cmds.iter_mut().enumerate() {
                    cmd.push(Cmd::Epoch {
                        deliveries: std::mem::take(&mut state.deliveries[s]),
                        plan: std::mem::take(&mut subplans[s]),
                    });
                }
            }
        }
    }

    /// Executes one slot end to end in global plan order: the inline
    /// backend steps the process directly on the canonical state; the
    /// threaded backend pulls the slot's result from its shard's ring
    /// (which delivers in sub-plan order) and commits it.
    fn execute_slot(&mut self, state: &mut ShardState, slot: Slot) {
        match self {
            Backend::Inline {
                procs,
                visible,
                seed,
            } => {
                let i = slot.proc;
                // same observation point as commit_slot: before the
                // step's own pops, after every earlier slot's effects
                let input_waiting = state.declared[i]
                    .iter()
                    .any(|c| state.mirror.get(c).is_some_and(|q| !q.is_empty()));
                let mut rng = StdRng::seed_from_u64(step_seed(*seed, i, slot.serial));
                let result = {
                    let mut ctx = StepCtx::bare(
                        &mut state.mirror,
                        &mut state.trace,
                        &mut rng,
                        Some(&mut state.telemetry),
                        i,
                    );
                    ctx.visible = Some(visible);
                    procs[i].step(&mut ctx)
                };
                account_result(state, i, result, input_waiting);
            }
            Backend::Threads { cmds, replies } => {
                let res = match replies[slot.proc % cmds.len()].pop() {
                    Reply::Slot(r) => r,
                    Reply::Snapshot(_) => unreachable!("no snapshot in flight during an epoch"),
                };
                commit_slot(state, slot, res);
            }
        }
    }

    /// Collects every process's state cell (quiescent rings only — never
    /// called with an epoch in flight).
    fn snapshot(&mut self, n: usize) -> Vec<Option<StateCell>> {
        let mut cells: Vec<Option<StateCell>> = (0..n).map(|_| None).collect();
        match self {
            Backend::Inline { procs, .. } => {
                for (i, p) in procs.iter().enumerate() {
                    cells[i] = p.snapshot();
                }
            }
            Backend::Threads { cmds, replies } => {
                for c in cmds.iter_mut() {
                    c.push(Cmd::Snapshot);
                }
                for r in replies.iter_mut() {
                    match r.pop() {
                        Reply::Snapshot(part) => {
                            for (i, cell) in part {
                                cells[i] = cell;
                            }
                        }
                        Reply::Slot(_) => unreachable!("epoch results fully drained"),
                    }
                }
            }
        }
        cells
    }
}

/// The coordinator's canonical state — everything the single-threaded
/// engine owns, *except* the processes (those are partitioned out to the
/// workers for the duration of the run).
struct ShardState {
    declared: Vec<Vec<Chan>>,
    /// Declared consumer of each channel (sharded routing requires
    /// declared inputs).
    consumer_of: ChanMap<usize>,
    /// Canonical queue mirror: committed sends minus committed pops.
    mirror: ChanMap<VecDeque<Value>>,
    trace: Vec<Event>,
    telemetry: Telemetry,
    counters: Vec<ProcCounters>,
    steps: usize,
    rounds: usize,
    max_steps: usize,
    deadline_rounds: Option<usize>,
    pending: VecDeque<usize>,
    round_progressed: bool,
    /// Per-process offer serials (incremented at planning time).
    offers: Vec<u64>,
    /// Per-shard deliveries accumulated by commits, shipped with the
    /// next epoch.
    deliveries: Vec<Vec<(Chan, Value)>>,
    monitor: Option<SmoothnessMonitor>,
    abort_armed: bool,
    /// Trace index up to which the monitor has observed.
    fed: usize,
    checkpoint_at: Option<usize>,
    captured: Option<Checkpoint>,
    /// Checkpoint-compatible RNG: seeded like the engine's shared RNG but
    /// never advanced by steps (each step derives its own); the
    /// end-of-run quiescence probe is its only consumer.
    resume_rng: StdRng,
}

/// How a sharded drive loop ended (the post-shutdown `finish` maps this
/// to a [`RunStatus`], probing quiescence at the bound).
enum Decision {
    Quiescent,
    AtBound,
    DeadlineExpired,
    MonitorAborted(usize),
}

/// What to layer onto a sharded run.
#[derive(Default)]
pub(crate) struct ShardJob<'d> {
    /// Arm an online smoothness monitor over this description.
    pub(crate) monitor: Option<(&'d Description, MonitorPolicy)>,
    /// Capture a whole-run checkpoint at the first round boundary at or
    /// after this progress step.
    pub(crate) checkpoint_at: Option<usize>,
    /// Resume from this checkpoint (process/scheduler state already
    /// restored by the caller).
    pub(crate) resume: Option<&'d Checkpoint>,
}

/// Everything a sharded run produces.
pub(crate) struct ShardOutcome {
    pub(crate) report: RunReport,
    /// Present iff a monitor was armed (or resumed).
    pub(crate) conformance: Option<Conformance>,
    pub(crate) captured: Option<Checkpoint>,
}

/// Runs `procs` under `sched` on `opts.shards` worker shards. The run is
/// byte-identical — trace, telemetry, counters, checkpoints, verdicts —
/// for every shard count, including 1 (which runs inline, threadless).
pub(crate) fn run_sharded(
    procs: &mut [Box<dyn Process>],
    sched: &mut dyn Scheduler,
    opts: RunOptions,
    job: ShardJob<'_>,
) -> ShardOutcome {
    assert!(
        opts.channel_capacity.is_none(),
        "sharded runs do not support bounded channels; use the single-threaded runner"
    );
    let n = procs.len();
    let shards = opts.shards.clamp(1, n.max(1));
    let declared: Vec<Vec<Chan>> = procs.iter().map(|p| p.inputs()).collect();
    let mut consumer_of = ChanMap::default();
    for (i, ins) in declared.iter().enumerate() {
        for &c in ins {
            consumer_of.insert(c, i);
        }
    }
    let mut state = ShardState {
        declared,
        consumer_of,
        mirror: ChanMap::default(),
        trace: Vec::new(),
        telemetry: Telemetry::default(),
        counters: vec![ProcCounters::default(); n],
        steps: 0,
        rounds: 0,
        max_steps: opts.max_steps,
        deadline_rounds: opts.deadline_rounds,
        pending: VecDeque::new(),
        round_progressed: false,
        offers: vec![0; n],
        deliveries: vec![Vec::new(); shards],
        monitor: None,
        abort_armed: false,
        fed: 0,
        checkpoint_at: job.checkpoint_at,
        captured: None,
        resume_rng: StdRng::seed_from_u64(opts.seed),
    };
    if opts.sketches {
        state.telemetry.sketches = Some(crate::report::capture_sketches());
        // slot results commit on the canonical state in plan order and
        // never roll back, so the coordinator inserts directly
        state.telemetry.direct = true;
    }
    if let Some(ckpt) = job.resume {
        state.mirror = ckpt.queues.clone();
        state.trace = ckpt.trace.clone();
        // the restored telemetry carries the captured sketch block (and
        // its enablement), stamps, and round clock wholesale
        state.telemetry = ckpt.telemetry.clone();
        state.counters = ckpt.counters.clone();
        state.steps = ckpt.steps;
        state.rounds = ckpt.rounds;
        state.pending = ckpt.pending_round.clone();
        state.round_progressed = ckpt.round_progressed;
        // every offered slot commits before a capture (captures happen
        // only at round boundaries), so the serials reconstruct exactly
        state.offers = ckpt
            .counters
            .iter()
            .map(|c| (c.progress + c.idle) as u64)
            .collect();
        state.monitor = ckpt.monitor.clone();
        state.resume_rng = ckpt.rng.clone();
        // sharded captures land at round boundaries with the counter
        // already advanced, so this is a no-op re-sync — kept for parity
        // with the single-threaded resume contract
        state.telemetry.round = state.rounds as u64;
        // the coordinator's notes already run in canonical plan order
        // with no rollback, so direct insertion is always safe here —
        // recompute rather than trust the captured flag
        state.telemetry.direct = state.telemetry.sketches.is_some();
    } else if let Some((desc, policy)) = job.monitor {
        state.monitor = Some(SmoothnessMonitor::new(desc, None, policy));
    }
    state.abort_armed = state
        .monitor
        .as_ref()
        .is_some_and(|m| m.policy() == MonitorPolicy::AbortOnViolation);
    state.fed = state.trace.len();
    // The worker seed derives from the checkpoint-compatible RNG (not
    // opts.seed directly), so a resumed run reconstructs the original
    // per-step streams even though resume ignores opts.seed — exactly
    // the single-threaded resume contract.
    let worker_seed = {
        let mut probe = state.resume_rng.clone();
        probe.next_u64()
    };
    let decision = if shards == 1 {
        // resumed queue contents need no routing: the inline backend
        // reads the mirror itself, and its first epoch's watermark raise
        // makes them visible — exactly when a threaded worker would see
        // its initial queue fragment
        let mut backend = Backend::Inline {
            procs: &mut *procs,
            visible: ChanMap::default(),
            seed: worker_seed,
        };
        let d = drive(&mut state, sched, &mut backend, n);
        drop(backend);
        d
    } else {
        // Route any resumed queue contents to their consumer's shard;
        // the mirror keeps the canonical copy either way.
        let mut initial: Vec<ChanMap<VecDeque<Value>>> = vec![ChanMap::default(); shards];
        for (c, q) in &state.mirror {
            if let Some(&i) = state.consumer_of.get(c) {
                initial[i % shards].insert(*c, q.clone());
            }
        }
        let mut parts: Vec<ShardPart<'_>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, p) in procs.iter_mut().enumerate() {
            let ins = state.declared[i].clone();
            parts[i % shards].push((i, p, ins));
        }
        std::thread::scope(|scope| {
            let mut cmds = Vec::with_capacity(shards);
            let mut replies = Vec::with_capacity(shards);
            let mut queues = initial.into_iter();
            for part in parts {
                let (cmd_tx, cmd_rx) = spsc::ring(CMD_RING);
                let (reply_tx, reply_rx) = spsc::ring(REPLY_RING);
                let worker = Worker {
                    procs: part,
                    queues: queues.next().expect("one queue map per shard"),
                    seed: worker_seed,
                    shards,
                    depths: Vec::new(),
                };
                scope.spawn(move || worker.run(cmd_rx, reply_tx));
                cmds.push(cmd_tx);
                replies.push(reply_rx);
            }
            let mut backend = Backend::Threads { cmds, replies };
            let d = drive(&mut state, sched, &mut backend, n);
            if let Backend::Threads { cmds, .. } = &mut backend {
                for c in cmds.iter_mut() {
                    c.push(Cmd::Shutdown);
                }
            }
            d
        })
    };
    finish(state, procs, decision)
}

/// The coordinator loop: plan → scatter → commit, with the same round
/// accounting, bound/deadline checks, and capture points as the
/// single-threaded engine.
fn drive(
    state: &mut ShardState,
    sched: &mut dyn Scheduler,
    backend: &mut Backend<'_>,
    n: usize,
) -> Decision {
    maybe_capture(state, sched, backend, n);
    let mut plan: Vec<Slot> = Vec::new();
    loop {
        if state.pending.is_empty() {
            state.pending = sched.round(n).into_iter().collect();
            state.round_progressed = false;
            if state.pending.is_empty() {
                // no processes: one empty round, then quiescence
                state.rounds += 1;
                state.telemetry.round = state.rounds as u64;
                return Decision::Quiescent;
            }
        }
        if state.steps >= state.max_steps {
            return Decision::AtBound;
        }
        // Plan: truncate the epoch so it cannot overshoot the step bound
        // — the truncation input is canonical, so every shard count
        // plans the same epochs. Checkpoints deliberately do NOT
        // truncate: captures happen only at round boundaries, so
        // arming one cannot perturb the epoch structure (capture is
        // pure observation, exactly like the single-threaded engine).
        let limit = state.max_steps - state.steps;
        let take = state.pending.len().min(limit);
        plan.clear();
        for _ in 0..take {
            let i = state.pending.pop_front().expect("take <= pending");
            plan.push(Slot {
                proc: i,
                serial: state.offers[i],
            });
            state.offers[i] += 1;
        }
        backend.begin_epoch(state, &plan);
        for &slot in &plan {
            backend.execute_slot(state, slot);
        }
        // every slot committed on the canonical state in plan order (the
        // sharded runtime has no rollback), so sketch observations were
        // inserted directly at note time — identically for every shard
        // count; nothing is ever staged here
        if state.abort_armed {
            if let Some(k) = drain_monitor(state) {
                return Decision::MonitorAborted(k);
            }
        }
        if state.pending.is_empty() {
            state.rounds += 1;
            state.telemetry.round = state.rounds as u64;
            if !state.round_progressed {
                return Decision::Quiescent;
            }
            if let Some(deadline) = state.deadline_rounds {
                if state.rounds >= deadline {
                    return Decision::DeadlineExpired;
                }
            }
            maybe_capture(state, sched, backend, n);
        }
    }
}

/// Applies one slot result to the canonical state, in global plan order:
/// starvation accounting, pop mirroring, send commit (trace + mirror +
/// meter + next-epoch routing), then the progress/idle counters.
fn commit_slot(state: &mut ShardState, slot: Slot, res: SlotResult) {
    let i = slot.proc;
    let shards = state.deliveries.len();
    // Same observation point as the single-threaded engine: before the
    // step's own pops (and, canonically, after every earlier slot's
    // commits).
    let input_waiting = state.declared[i]
        .iter()
        .any(|c| state.mirror.get(c).is_some_and(|q| !q.is_empty()));
    for (c, k) in res.reads {
        state.telemetry.note_consumer(c, i);
        for _ in 0..k {
            let popped = state.mirror.get_mut(&c).and_then(VecDeque::pop_front);
            debug_assert!(popped.is_some(), "worker pop must mirror a queued value");
            state.telemetry.note_receive(c);
        }
    }
    for (c, v) in res.sends {
        state.trace.push(Event::new(c, v));
        let q = state.mirror.entry(c).or_default();
        q.push_back(v);
        let depth = q.len();
        state.telemetry.note_send(c, depth, v);
        if let Some(&consumer) = state.consumer_of.get(&c) {
            state.deliveries[consumer % shards].push((c, v));
        }
        // no declared consumer: a terminal (environment-facing) channel —
        // the mirror keeps its history, nobody receives it
    }
    account_result(state, i, res.result, input_waiting);
}

/// The engine's progress/idle/starvation accounting for one step, shared
/// by both backends.
fn account_result(state: &mut ShardState, i: usize, result: StepResult, input_waiting: bool) {
    match result {
        StepResult::Progress => {
            state.round_progressed = true;
            state.steps += 1;
            state.counters[i].progress += 1;
            state.counters[i].starve_streak = 0;
        }
        StepResult::Idle => {
            state.counters[i].idle += 1;
            if input_waiting {
                state.counters[i].starve_streak += 1;
                state.counters[i].max_starved = state.counters[i]
                    .max_starved
                    .max(state.counters[i].starve_streak);
            } else {
                state.counters[i].starve_streak = 0;
            }
        }
    }
}

/// Feeds every not-yet-observed committed send to the monitor; returns
/// the convicted component on the first violation (see the engine's
/// `drain_monitor` — same contract, epoch-granular call sites).
fn drain_monitor(state: &mut ShardState) -> Option<usize> {
    let m = state.monitor.as_mut()?;
    if state.fed >= state.trace.len() {
        return None;
    }
    let convicted = m.feed_batch(&state.trace[state.fed..]);
    state.fed = state.trace.len();
    convicted
}

/// Captures the whole-run checkpoint at the first round boundary where
/// the step count has reached `checkpoint_at`.
fn maybe_capture(
    state: &mut ShardState,
    sched: &dyn Scheduler,
    backend: &mut Backend<'_>,
    n: usize,
) {
    let due = state
        .checkpoint_at
        .is_some_and(|at| state.steps >= at && state.captured.is_none());
    if !due {
        return;
    }
    // Only ever called at a round boundary (`pending` is empty and the
    // round accounting has run), so the capture stores pure end-of-round
    // state: every in-flight delivery is in the canonical queues, and a
    // resumed run's "everything visible at the next round" matches the
    // cut run's delivery visibility exactly. This is why the sharded
    // capture lands at the first round boundary at/after `at`, not at
    // the exact step the single-threaded engine would use: an exact
    // mid-round capture would need the (hidden) staged-delivery split.
    debug_assert!(state.pending.is_empty());
    // the captured monitor must have observed exactly the captured trace
    let _ = drain_monitor(state);
    state.captured = Some(Checkpoint {
        steps: state.steps,
        rounds: state.rounds,
        queues: state.mirror.clone(),
        trace: state.trace.clone(),
        rng: state.resume_rng.clone(),
        telemetry: state.telemetry.clone(),
        counters: state.counters.clone(),
        processes: backend.snapshot(n),
        scheduler: sched.snapshot(),
        pending_round: state.pending.clone(),
        round_progressed: false,
        monitor: state.monitor.clone(),
    });
}

/// Maps the drive decision to a status (probing quiescence at the step
/// bound, now that the workers have returned the processes), assembles
/// the report, and derives the conformance verdict if a monitor ran.
fn finish(
    mut state: ShardState,
    procs: &mut [Box<dyn Process>],
    decision: Decision,
) -> ShardOutcome {
    let status = match decision {
        Decision::Quiescent => RunStatus::Quiescent,
        Decision::DeadlineExpired => RunStatus::DeadlineExpired,
        Decision::MonitorAborted(k) => RunStatus::MonitorAborted { component: k },
        Decision::AtBound => {
            let crashed = vec![false; procs.len()];
            if probe_quiescent(
                procs,
                &crashed,
                &mut state.mirror,
                &mut state.trace,
                &mut state.resume_rng,
            ) {
                RunStatus::Quiescent
            } else {
                RunStatus::BudgetExhausted
            }
        }
    };
    // final safety drain: the monitor observes everything committed
    let _ = drain_monitor(&mut state);
    let quiescent = status.is_quiescent();
    let name_of = |i: usize| procs[i].name().to_owned();
    let processes = procs
        .iter()
        .enumerate()
        .zip(&state.counters)
        .map(|((_, p), c)| ProcessReport {
            name: p.name().to_owned(),
            progress: c.progress,
            idle: c.idle,
            max_starved_rounds: c.max_starved,
            crashed: p.crashed(),
            restarts: 0,
            send_blocked: c.send_blocked,
            max_blocked_rounds: c.max_blocked,
        })
        .collect();
    let channels = state
        .telemetry
        .channels
        .iter()
        .map(|(c, k)| ChannelReport {
            chan: *c,
            sends: k.sends,
            receives: k.receives,
            high_water: k.high_water,
            residual: state.mirror.get(c).map_or(0, VecDeque::len),
            consumer: k.consumer.map(name_of),
            capacity: None,
            blocked_sends: k.blocked,
            shed: k.shed,
        })
        .collect();
    let consumer_violations = state
        .telemetry
        .violations
        .iter()
        .map(|&(chan, first, second)| ConsumerViolation {
            chan,
            first: name_of(first),
            second: name_of(second),
        })
        .collect();
    let faults = state
        .telemetry
        .faults
        .iter()
        .map(|(src, e)| FaultRecord {
            source: match src {
                FaultSource::Proc(i) => name_of(*i),
                FaultSource::Link(c) => format!("link@{c}"),
            },
            event: e.clone(),
        })
        .collect();
    debug_assert!(
        state.telemetry.staged.is_empty(),
        "sketch observations staged past their epoch commit"
    );
    let report = RunReport {
        trace: Trace::finite(std::mem::take(&mut state.trace)),
        quiescent,
        status,
        steps: state.steps,
        rounds: state.rounds,
        processes,
        channels,
        consumer_violations,
        faults,
        recoveries: Vec::new(),
        sketches: state.telemetry.finish_sketches(),
    };
    let conformance = state.monitor.as_ref().map(|m| m.finish(&report.status));
    ShardOutcome {
        report,
        conformance,
        captured: state.captured.take(),
    }
}
