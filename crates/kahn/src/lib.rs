//! An operational Kahn-style dataflow network simulator.
//!
//! The paper's central semantic claim is an *adequacy* statement: the
//! smooth solutions of a network's description are exactly the traces of
//! its computations. Checking that claim needs an operational side — a
//! machine that actually runs message-communicating processes. This crate
//! is that machine:
//!
//! * [`Process`] — a state machine with input and output channels that
//!   consumes queued messages and produces sends.
//! * [`Network`] — processes wired by unbounded FIFO channels, with every
//!   send recorded in a global [`Trace`] (the paper's communication
//!   history: sends only, Section 3.1.1).
//! * [`Scheduler`] — pluggable nondeterminism: round-robin, seeded-random,
//!   and adversarial (skews towards starving late processes) schedulers.
//!   Every schedule of a Kahn network produces a trace whose projections
//!   are component histories; at quiescence the trace must satisfy the
//!   network description's smooth-solution conditions.
//! * [`procs`] — a standard library of small processes (sources, pointwise
//!   maps, copies, prefixers, oracle-driven merges) from which the paper's
//!   networks are assembled in `eqp-processes`.
//! * **Quiescence detection** — a run ends when no process can make
//!   progress (Section 3.1.1's "quiescent trace"), or at a step bound for
//!   networks that never quiesce (Ticks). Hitting the bound probes one
//!   zero-cost round, so quiescing in exactly `max_steps` steps is still
//!   reported as quiescence.
//! * [`conformance`] — the operational ⇄ denotational bridge: any run can
//!   be checked against the network's `Description` via
//!   `eqp_core::diagnose` — quiescent runs must be smooth *solutions*,
//!   cut runs smooth *prefixes*, and any deviation names the failing
//!   component equation.
//! * [`RunReport`] — structured run telemetry: per-process progress/idle
//!   and starvation streaks, per-channel send counts and queue high-water
//!   marks, runtime single-consumer violations, and a bottleneck summary.
//! * [`faults`] — fault injection: delay/reorder/duplicate/drop channel
//!   links and crash-at-step-K wrappers, for demonstrating which
//!   perturbations preserve smooth solutions (delay) and which break the
//!   limit condition (drop, duplicate — caught by the conformance
//!   bridge). Every injected event is named in the run's fault log.
//! * [`snapshot`] / [`supervisor`] — the checkpointed supervision runtime:
//!   [`Checkpoint`]s capture the full network state (queues, trace, RNG,
//!   per-process state via [`Process::snapshot`] hooks), and
//!   [`SupervisorOptions`] configures crash recovery — restore from the
//!   latest checkpoint or replay the observation journal from genesis,
//!   with one-for-one / backoff / escalate restart policies. The recovery
//!   invariant is Theorem 2's: a recovered quiescent run still certifies
//!   as a smooth *solution* of the original description.
//! * [`chaos`] — a seeded chaos harness: samples random fault schedules
//!   (crash points × link faults), classifies each run through the
//!   conformance bridge, and shrinks any conviction to a minimal
//!   reproducer via delta debugging.
//! * [`reliable`] — ARQ reliable transport over lossy links:
//!   sequence-numbered frames, cumulative acks, deterministic
//!   exponential-backoff retransmission with a retry budget, and a
//!   receive-side dedup/reorder window. The composite
//!   sender→lossy-channel→receiver is equationally the *identity*
//!   description, so drop/duplicate/reorder schedules that PR 2's oracle
//!   convicts certify as smooth solutions once the link is
//!   reliable-wrapped; budget exhaustion degrades to a named
//!   [`RunStatus::ReliabilityExhausted`] / `Verdict::Degraded` outcome
//!   instead of hanging.
//! * **Bounded channels** — [`RunOptions::channel_capacity`] bounds every
//!   consumed channel with credit-based backpressure
//!   ([`OverflowPolicy::Block`] rolls a blocked step back so
//!   backpressure is purely a scheduler restriction) or load shedding
//!   ([`OverflowPolicy::Shed`]), plus a round deadline for overload
//!   runs. Every quiescent bounded run certifies identically to the
//!   unbounded run.
//! * **Sketch telemetry + zero-copy durable images** —
//!   [`RunReport::sketches`] carries fixed-memory mergeable summaries
//!   (queue-depth/message-wait quantiles, heavy-hitter channels,
//!   distinct-value estimate; [`TelemetrySketches`]) captured inline at
//!   a gated ≤5% cost, identical across every backend and shard count,
//!   accumulated through checkpoint resume, and merged fleet-wide by
//!   `eqpd`. Checkpoint images (wire v2) validate and resume through
//!   the borrowing [`CheckpointView`] — full structural certification
//!   with zero decode allocation, then a single materializing walk
//!   moved into the engine ([`Network::resume_report_view`]), ~2× the
//!   decode+clone resume on large images.
//!
//! # Example
//!
//! ```
//! use eqp_kahn::{Network, RunOptions, procs};
//! use eqp_trace::{Chan, Value};
//!
//! // A source feeding a doubling process: c carries 1 2 3, d = 2×c.
//! let (c, d) = (Chan::new(0), Chan::new(1));
//! let mut net = Network::new();
//! net.add(procs::Source::new("env", c, [Value::Int(1), Value::Int(2), Value::Int(3)]));
//! net.add(procs::Apply::int_affine("double", c, d, 2, 0));
//! let run = net.run(&mut eqp_kahn::RoundRobin::new(), RunOptions::default());
//! assert!(run.quiescent);
//! assert_eq!(run.trace.seq_on(d).take(3), vec![Value::Int(2), Value::Int(4), Value::Int(6)]);
//! ```

// `deny` rather than `forbid`: the SPSC ring module ([`spsc`]) opts in
// with a module-level allow and per-site SAFETY arguments; everything
// else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod chanmap;
pub mod chaos;
pub mod conformance;
pub mod described;
pub mod faults;
pub mod monitor;
pub mod network;
pub mod oracle;
pub mod process;
pub mod procs;
pub mod reliable;
pub mod report;
pub mod scheduler;
pub mod shard;
pub mod snapshot;
pub mod spsc;
pub mod supervisor;
pub mod wire;

pub use chaos::{
    ChaosOptions, ChaosReport, Conviction, Scenario, SchedulerChoice, ShrinkResult, Trial,
};
pub use conformance::{Conformance, ConformanceOptions, Verdict};
pub use described::{ExprProc, FilterStep};
pub use faults::{
    CrashAt, CrashPoint, Fault, FaultEvent, FaultKind, FaultSchedule, FaultyLink, LinkFaultSpec,
};
pub use monitor::{MonitorPolicy, SmoothnessMonitor};
pub use network::{DrainedError, Network, OverflowPolicy, RunOptions, RunResult};
pub use oracle::Oracle;
pub use process::{Process, StepCtx, StepResult};
pub use reliable::{ArqOptions, ReliableConfig, ReliableReceiver, ReliableSender};
pub use report::{
    ChannelReport, ConsumerViolation, FaultRecord, ProcessReport, RunReport, RunStatus,
};
pub use scheduler::{Adversarial, RandomSched, RoundRobin, Scheduler};
pub use snapshot::{Checkpoint, SnapshotError, StateCell};
pub use spsc::{ring, Spsc, SpscReceiver};
pub use supervisor::{RecoveryRecord, RestartPolicy, RestoreMethod, SupervisorOptions};
pub use wire::{decode_checkpoint, encode_checkpoint, CheckpointView, WireError};

pub use eqp_sketch::{SketchStats, TelemetrySketches};
pub use eqp_trace::Trace;
