//! A standard library of small processes, from which the paper's networks
//! are assembled.

use crate::oracle::Oracle;
use crate::process::{Process, StepCtx, StepResult};
use crate::snapshot::StateCell;
use eqp_trace::{Chan, Lasso, Value};

/// Emits a fixed (finite or eventually periodic) sequence on a channel,
/// one message per step.
#[derive(Debug, Clone)]
pub struct Source {
    name: String,
    out: Chan,
    seq: Lasso<Value>,
    pos: usize,
}

impl Source {
    /// A source emitting the given finite sequence.
    pub fn new<I: IntoIterator<Item = Value>>(
        name: impl Into<String>,
        out: Chan,
        values: I,
    ) -> Source {
        Source::lasso(name, out, Lasso::finite(values))
    }

    /// A source emitting a lasso (never quiesces if infinite).
    pub fn lasso(name: impl Into<String>, out: Chan, seq: Lasso<Value>) -> Source {
        Source {
            name: name.into(),
            out,
            seq,
            pos: 0,
        }
    }
}

impl Process for Source {
    fn name(&self) -> &str {
        &self.name
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.out]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match self.seq.get(self.pos) {
            Some(&v) => {
                ctx.send(self.out, v);
                self.pos += 1;
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Nat(self.pos as u64))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_nat() {
            Some(n) => {
                self.pos = n as usize;
                true
            }
            None => false,
        }
    }

    fn reset(&mut self) -> bool {
        self.pos = 0;
        true
    }
}

/// Applies a pointwise function to every input message — the deterministic
/// one-in-one-out worker (the paper's P and Q are `Apply` with affine
/// maps, modulo P's prefixed `0`).
pub struct Apply {
    name: String,
    input: Chan,
    output: Chan,
    f: Box<dyn FnMut(Value) -> Value + Send>,
}

impl Apply {
    /// A pointwise process computing `f` on each message.
    pub fn new(
        name: impl Into<String>,
        input: Chan,
        output: Chan,
        f: impl FnMut(Value) -> Value + Send + 'static,
    ) -> Apply {
        Apply {
            name: name.into(),
            input,
            output,
            f: Box::new(f),
        }
    }

    /// The affine worker `n ↦ a·n + b` on integers.
    pub fn int_affine(name: impl Into<String>, input: Chan, output: Chan, a: i64, b: i64) -> Apply {
        Apply::new(name, input, output, move |v| match v {
            // Wrapping, matching `ValueMap::Affine`: the process and its
            // description must agree even at i64 overflow.
            Value::Int(n) => Value::Int(a.wrapping_mul(n).wrapping_add(b)),
            other => other,
        })
    }
}

impl Process for Apply {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match ctx.pop(self.input) {
            Some(v) => {
                let out = (self.f)(v);
                ctx.send(self.output, out);
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    // `Apply` holds no mutable state of its own: the closure is assumed
    // stateless (all constructors used by the paper's networks are — the
    // affine maps capture only immutable coefficients). A stateful closure
    // should use a bespoke process with real hooks instead.
    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Unit)
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        matches!(state, StateCell::Unit)
    }

    fn reset(&mut self) -> bool {
        true
    }
}

/// Copies input to output; optionally emits a fixed prelude first (the
/// second process of Figure 1's variant is `Copy::with_prelude(…, [0])`,
/// the paper's `b = 0; c`).
#[derive(Debug, Clone)]
pub struct Copy {
    name: String,
    input: Chan,
    output: Chan,
    prelude: Vec<Value>,
    sent_prelude: usize,
}

impl Copy {
    /// A plain copy process (`c = b` of Figure 1).
    pub fn new(name: impl Into<String>, input: Chan, output: Chan) -> Copy {
        Copy::with_prelude(name, input, output, [])
    }

    /// A copy process that first emits `prelude` unprompted.
    pub fn with_prelude<I: IntoIterator<Item = Value>>(
        name: impl Into<String>,
        input: Chan,
        output: Chan,
        prelude: I,
    ) -> Copy {
        Copy {
            name: name.into(),
            input,
            output,
            prelude: prelude.into_iter().collect(),
            sent_prelude: 0,
        }
    }
}

impl Process for Copy {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if self.sent_prelude < self.prelude.len() {
            let v = self.prelude[self.sent_prelude];
            self.sent_prelude += 1;
            ctx.send(self.output, v);
            return StepResult::Progress;
        }
        match ctx.pop(self.input) {
            Some(v) => {
                ctx.send(self.output, v);
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Nat(self.sent_prelude as u64))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_nat() {
            Some(n) => {
                self.sent_prelude = n as usize;
                true
            }
            None => false,
        }
    }

    fn reset(&mut self) -> bool {
        self.sent_prelude = 0;
        true
    }
}

/// An oracle-driven two-way merge: when both inputs have messages the
/// oracle bit picks (T → left), when one has messages it is taken, and the
/// per-source order is preserved — the operational fair merge of Sections
/// 2.2 and 4.10 (Park-style oracle).
pub struct Merge2 {
    name: String,
    left: Chan,
    right: Chan,
    output: Chan,
    oracle: Oracle,
}

impl Merge2 {
    /// A fair merge with the given oracle.
    pub fn new(
        name: impl Into<String>,
        left: Chan,
        right: Chan,
        output: Chan,
        oracle: Oracle,
    ) -> Merge2 {
        Merge2 {
            name: name.into(),
            left,
            right,
            output,
            oracle,
        }
    }
}

impl Process for Merge2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.left, self.right]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        let l = ctx.available(self.left) > 0;
        let r = ctx.available(self.right) > 0;
        let pick_left = match (l, r) {
            (false, false) => return StepResult::Idle,
            (true, false) => true,
            (false, true) => false,
            (true, true) => self.oracle.next_bit(),
        };
        let c = if pick_left { self.left } else { self.right };
        let v = ctx.pop(c).expect("checked nonempty");
        ctx.send(self.output, v);
        StepResult::Progress
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(self.oracle.snapshot())
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        self.oracle.restore(state)
    }

    fn reset(&mut self) -> bool {
        self.oracle.reset();
        true
    }
}

/// A unit-delay buffer: emits `initial` values first, then copies input
/// to output — the classic Kahn feedback element (`followed-by`). With
/// `initial = [v]` the output stream is `v` followed by the input stream.
#[derive(Debug, Clone)]
pub struct Delay {
    name: String,
    input: Chan,
    output: Chan,
    initial: std::collections::VecDeque<Value>,
}

impl Delay {
    /// Creates a delay buffer pre-loaded with `initial`.
    pub fn new<I: IntoIterator<Item = Value>>(
        name: impl Into<String>,
        input: Chan,
        output: Chan,
        initial: I,
    ) -> Delay {
        Delay {
            name: name.into(),
            input,
            output,
            initial: initial.into_iter().collect(),
        }
    }
}

impl Process for Delay {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if let Some(v) = self.initial.pop_front() {
            ctx.send(self.output, v);
            return StepResult::Progress;
        }
        match ctx.pop(self.input) {
            Some(v) => {
                ctx.send(self.output, v);
                StepResult::Progress
            }
            None => StepResult::Idle,
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Values(self.initial.iter().copied().collect()))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_values() {
            Some(vs) => {
                self.initial = vs.iter().copied().collect();
                true
            }
            None => false,
        }
    }
    // no `reset`: the constructor-time `initial` buffer is consumed by
    // stepping, so a Delay cannot rewind to genesis without remembering
    // it — snapshot/restore is the supported recovery path.
}

/// A pointwise binary worker: pops one value from each input (waiting
/// until both are available) and emits `f(a, b)` — the Kahn `zip`.
pub struct Zip2 {
    name: String,
    left: Chan,
    right: Chan,
    output: Chan,
    f: Box<dyn FnMut(Value, Value) -> Value + Send>,
}

impl Zip2 {
    /// Creates the binary worker.
    pub fn new(
        name: impl Into<String>,
        left: Chan,
        right: Chan,
        output: Chan,
        f: impl FnMut(Value, Value) -> Value + Send + 'static,
    ) -> Zip2 {
        Zip2 {
            name: name.into(),
            left,
            right,
            output,
            f: Box::new(f),
        }
    }

    /// Integer addition.
    pub fn add(name: impl Into<String>, left: Chan, right: Chan, output: Chan) -> Zip2 {
        Zip2::new(name, left, right, output, |a, b| match (a, b) {
            // Wrapping, matching `ValueZip::AddInts` (see its docs).
            (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
            _ => Value::Int(0),
        })
    }
}

impl Process for Zip2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.left, self.right]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if ctx.available(self.left) > 0 && ctx.available(self.right) > 0 {
            let a = ctx.pop(self.left).expect("nonempty");
            let b = ctx.pop(self.right).expect("nonempty");
            let out = (self.f)(a, b);
            ctx.send(self.output, out);
            StepResult::Progress
        } else {
            StepResult::Idle
        }
    }

    // Stateless apart from its (assumed-stateless) closure, like `Apply`.
    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Unit)
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        matches!(state, StateCell::Unit)
    }

    fn reset(&mut self) -> bool {
        true
    }
}

/// A process built from a closure — the escape hatch for bespoke state
/// machines (Brock–Ackermann's process B, the implication process, …).
pub struct FromFn<F> {
    name: String,
    f: F,
}

impl<F: FnMut(&mut StepCtx<'_>) -> StepResult + Send> FromFn<F> {
    /// Wraps a step closure as a process.
    pub fn new(name: impl Into<String>, f: F) -> FromFn<F> {
        FromFn {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(&mut StepCtx<'_>) -> StepResult + Send> Process for FromFn<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        (self.f)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, RunOptions};
    use crate::scheduler::RoundRobin;

    fn chans() -> (Chan, Chan, Chan) {
        (Chan::new(0), Chan::new(1), Chan::new(2))
    }

    #[test]
    fn source_emits_sequence_once() {
        let (c, _, _) = chans();
        let mut net = Network::new();
        net.add(Source::new("s", c, [Value::Int(1), Value::Int(2)]));
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(
            run.trace.seq_on(c).take(10),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn copy_with_prelude_is_figure1_variant() {
        // Fig 1 variant: second process emits 0 then copies c to b; first
        // copies b to c. Bounded run produces 0^k on both channels.
        let (b, c, _) = chans();
        let mut net = Network::new();
        net.add(Copy::new("top", b, c));
        net.add(Copy::with_prelude("bottom", c, b, [Value::Int(0)]));
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 40,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert!(!run.quiescent); // 0^ω: never quiesces
        let bs = run.trace.seq_on(b).take(100);
        let cs = run.trace.seq_on(c).take(100);
        assert!(bs.iter().all(|v| *v == Value::Int(0)));
        assert!(cs.iter().all(|v| *v == Value::Int(0)));
        assert!(bs.len() >= 10 && cs.len() >= 10);
    }

    #[test]
    fn plain_copy_network_quiesces_empty() {
        // Fig 1 as-is: both processes plain copies, no input → ⊥ traces,
        // matching the least fixpoint b = c = ε.
        let (b, c, _) = chans();
        let mut net = Network::new();
        net.add(Copy::new("top", b, c));
        net.add(Copy::new("bottom", c, b));
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert!(run.trace.is_empty());
    }

    #[test]
    fn merge_preserves_per_source_order() {
        let (l, r, o) = chans();
        let mut net = Network::new();
        net.add(Source::new(
            "ls",
            l,
            [Value::Int(0), Value::Int(2), Value::Int(4)],
        ));
        net.add(Source::new("rs", r, [Value::Int(1), Value::Int(3)]));
        net.add(Merge2::new("m", l, r, o, Oracle::fair(3, 2)));
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        let out = run.trace.seq_on(o).take(10);
        assert_eq!(out.len(), 5);
        let evens: Vec<Value> = out.iter().copied().filter(|v| v.is_even_int()).collect();
        let odds: Vec<Value> = out.iter().copied().filter(|v| v.is_odd_int()).collect();
        assert_eq!(evens, vec![Value::Int(0), Value::Int(2), Value::Int(4)]);
        assert_eq!(odds, vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn scripted_merge_realizes_chosen_interleaving() {
        let (l, r, o) = chans();
        let mut net = Network::new();
        net.add(Source::new("ls", l, [Value::Int(0), Value::Int(2)]));
        net.add(Source::new("rs", r, [Value::Int(1)]));
        net.add(Merge2::new(
            "m",
            l,
            r,
            o,
            Oracle::scripted(Lasso::finite(vec![false, true])),
        ));
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        let out = run.trace.seq_on(o).take(10);
        // The oracle is only consulted when both queues are nonempty; with
        // round-robin arrival the first contested pick goes right (F).
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().filter(|v| v.is_odd_int()).count(), 1);
    }

    #[test]
    fn stdlib_processes_snapshot_and_restore() {
        let (b, c, _) = chans();
        // Source: position survives the roundtrip
        let mut s = Source::new("s", c, [Value::Int(1), Value::Int(2), Value::Int(3)]);
        s.pos = 2;
        let cell = s.snapshot().unwrap();
        let mut s2 = Source::new("s", c, [Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(s2.restore(&cell));
        assert_eq!(s2.pos, 2);
        assert!(s2.reset() && s2.pos == 0);
        assert!(!s2.restore(&StateCell::Unit));
        // Copy: prelude progress survives
        let mut k = Copy::with_prelude("k", b, c, [Value::Int(0), Value::Int(0)]);
        k.sent_prelude = 1;
        let cell = k.snapshot().unwrap();
        let mut k2 = Copy::with_prelude("k", b, c, [Value::Int(0), Value::Int(0)]);
        assert!(k2.restore(&cell));
        assert_eq!(k2.sent_prelude, 1);
        // Delay: the remaining buffer is the state
        let d = Delay::new("d", b, c, [Value::Int(9)]);
        let cell = d.snapshot().unwrap();
        let mut d2 = Delay::new("d", b, c, []);
        assert!(d2.restore(&cell));
        assert_eq!(d2.initial.len(), 1);
        assert!(!d2.reset(), "Delay cannot rewind to genesis");
        // Merge2 defers to its oracle
        let m = Merge2::new("m", b, c, c, Oracle::fair(5, 2));
        assert!(m.snapshot().is_some());
    }

    #[test]
    fn from_fn_process() {
        let (c, d, _) = chans();
        let mut net = Network::new();
        net.add(Source::new("s", c, [Value::Int(7)]));
        net.add(FromFn::new(
            "negate",
            move |ctx: &mut StepCtx<'_>| match ctx.pop(c) {
                Some(Value::Int(n)) => {
                    ctx.send(d, Value::Int(-n));
                    StepResult::Progress
                }
                _ => StepResult::Idle,
            },
        ));
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert_eq!(run.trace.seq_on(d).take(4), vec![Value::Int(-7)]);
    }
}
