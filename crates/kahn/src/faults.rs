//! Fault injection: perturbed channel links and crashing processes.
//!
//! The conformance bridge ([`crate::conformance`]) makes the paper's
//! adequacy claim executable; this module supplies the perturbations that
//! stress it. Each [`Fault`] wraps a channel as a [`FaultyLink`] process
//! interposed between producer and consumer (the producer sends on a raw
//! channel, the link forwards — faultily — onto the real one), and
//! [`CrashAt`] wraps any process so it dies after a fixed number of
//! steps. For opaque networks that cannot be rewired (the zoo builders),
//! a [`FaultSchedule`] injects the same perturbations at the engine
//! level: [`CrashPoint`]s kill processes at global step counts and
//! [`LinkFaultSpec`]s intercept sends on a channel in-flight.
//!
//! Every harmful perturbation is logged as a [`FaultEvent`] in
//! [`RunReport::fault_log`](crate::RunReport::fault_log), so a convicting
//! run names the exact injected events alongside the violated equation.
//!
//! The taxonomy follows the paper's asynchronous-channel semantics:
//!
//! * **Delay** is *not* a fault at all — channels are unbounded FIFOs
//!   with no timing guarantees, so a delayed but order-and-content
//!   preserving link yields exactly the same quiescent channel histories
//!   and the conformance bridge still certifies the run.
//! * **Reorder** breaks the FIFO discipline: per-channel histories are
//!   permuted within a window, violating order-sensitive descriptions
//!   (though order-free specifications such as the bag accept it).
//! * **Duplicate** and **Drop** corrupt the history itself; at
//!   quiescence the description's limit condition `f(t) = g(t)` fails
//!   and [`diagnose`](eqp_core::diagnose::diagnose) names the component.
//! * **Crash** silences a process; whatever it still owed its
//!   description is missing at quiescence (a limit failure) — *unless* a
//!   supervisor ([`crate::supervisor`]) restores and replays it, in
//!   which case the recovered quiescent run still certifies.

use crate::process::{Process, StepCtx, StepResult};
use crate::snapshot::StateCell;
use eqp_trace::{Chan, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// A channel perturbation applied by a [`FaultyLink`] or a
/// [`LinkFaultSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward every message, order intact, but hold up to `slack`
    /// messages back. Benign: preserves quiescent channel histories.
    Delay {
        /// Messages the link may buffer before it must forward.
        slack: usize,
    },
    /// Forward every message, but release them in a random order from a
    /// sliding window of up to `window` buffered messages.
    Reorder {
        /// Maximum number of messages buffered for permutation.
        window: usize,
        /// Seed for the link's private release order RNG.
        seed: u64,
    },
    /// Forward every message, sending every `period`-th one twice.
    Duplicate {
        /// Duplicate each `period`-th message (1 = every message).
        period: usize,
    },
    /// Silently discard every `period`-th message.
    Drop {
        /// Drop each `period`-th message (1 = every message).
        period: usize,
    },
}

impl Fault {
    /// True iff the perturbation preserves quiescent channel histories
    /// (delay is the paper's own asynchrony; everything else corrupts
    /// order or content).
    pub fn is_benign(&self) -> bool {
        matches!(self, Fault::Delay { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Delay { slack } => write!(f, "delay(slack {slack})"),
            Fault::Reorder { window, seed } => write!(f, "reorder(window {window}, seed {seed})"),
            Fault::Duplicate { period } => write!(f, "duplicate(every {period})"),
            Fault::Drop { period } => write!(f, "drop(every {period})"),
        }
    }
}

/// What an injected fault did to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was discarded.
    Dropped,
    /// The message was delivered twice.
    Duplicated,
    /// The message was released ahead of an earlier-arrived one.
    Reordered,
    /// A reliable link ([`crate::reliable`]) gave up retransmitting the
    /// message after exhausting its retry budget; the message and
    /// everything queued behind it were abandoned.
    RetryExhausted,
    /// A reliable-transport endpoint received a message whose shape the
    /// protocol cannot carry (e.g. a non-`Int` payload into a
    /// [`crate::ReliableSender`]); the endpoint poisoned itself — it
    /// stops transporting but the run continues and degrades to a named
    /// verdict instead of panicking. The daemon path (`eqpd`) relies on
    /// this: a malformed tenant wiring must never abort the process.
    PayloadRejected,
}

impl FaultKind {
    /// Stable numeric tag for snapshot encoding.
    pub(crate) fn code(self) -> u64 {
        match self {
            FaultKind::Dropped => 0,
            FaultKind::Duplicated => 1,
            FaultKind::Reordered => 2,
            FaultKind::RetryExhausted => 3,
            FaultKind::PayloadRejected => 4,
        }
    }

    /// Inverse of [`code`](FaultKind::code).
    pub(crate) fn from_code(code: u64) -> Option<FaultKind> {
        Some(match code {
            0 => FaultKind::Dropped,
            1 => FaultKind::Duplicated,
            2 => FaultKind::Reordered,
            3 => FaultKind::RetryExhausted,
            4 => FaultKind::PayloadRejected,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Reordered => "reordered",
            FaultKind::RetryExhausted => "retry budget exhausted on",
            FaultKind::PayloadRejected => "wrong-shape payload rejected:",
        })
    }
}

/// One injected fault event: exactly which message, on which channel, was
/// perturbed how. Collected in
/// [`RunReport::fault_log`](crate::RunReport::fault_log) so convictions
/// are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The channel whose delivery was perturbed.
    pub chan: Chan,
    /// 1-based arrival index of the perturbed message on that link.
    pub seq: usize,
    /// What happened to it.
    pub kind: FaultKind,
    /// The message itself.
    pub value: Value,
}

impl FaultEvent {
    /// Encodes the event as a [`StateCell`] (snapshot participation: a
    /// restored [`FaultyLink`] must report the same
    /// [`fault_log`](FaultyLink::fault_log) as the uninterrupted run).
    pub(crate) fn to_cell(&self) -> StateCell {
        StateCell::List(vec![
            StateCell::Nat(u64::from(self.chan.index())),
            StateCell::Nat(self.seq as u64),
            StateCell::Nat(self.kind.code()),
            StateCell::Value(self.value),
        ])
    }

    /// Inverse of [`to_cell`](FaultEvent::to_cell).
    pub(crate) fn from_cell(cell: &StateCell) -> Option<FaultEvent> {
        let [chan, seq, kind, value] = cell.as_list().and_then(|l| <&[_; 4]>::try_from(l).ok())?;
        let StateCell::Value(value) = value else {
            return None;
        };
        Some(FaultEvent {
            chan: Chan::new(u32::try_from(chan.as_nat()?).ok()?),
            seq: seq.as_nat()? as usize,
            kind: FaultKind::from_code(kind.as_nat()?)?,
            value: *value,
        })
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} message #{} on {} ({})",
            self.kind, self.seq, self.chan, self.value
        )
    }
}

/// Kill a process once the network reaches a global progress-step count —
/// the engine-level crash used by chaos schedules on opaque networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Index of the process to kill (network insertion order).
    pub process: usize,
    /// Global progress-step count at which the crash fires.
    pub at_step: usize,
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash process #{} at step {}",
            self.process, self.at_step
        )
    }
}

/// An engine-interposed faulty link: every send on `chan` — by any
/// process — passes through the fault, no rewiring required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFaultSpec {
    /// The intercepted channel.
    pub chan: Chan,
    /// The perturbation.
    pub fault: Fault,
}

impl fmt::Display for LinkFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.fault, self.chan)
    }
}

/// A full engine-level fault schedule: crashes and link faults injected
/// into a run without touching the network's construction. Sampled and
/// shrunk by [`crate::chaos`].
///
/// When several link faults name the same channel, only the first one
/// intercepts sends — faults do not chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Engine-level crash injections.
    pub crashes: Vec<CrashPoint>,
    /// Engine-level link fault injections.
    pub links: Vec<LinkFaultSpec>,
}

impl FaultSchedule {
    /// The empty (fault-free) schedule.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Total number of injected fault elements (crashes + links) — the
    /// unit of delta-debugging in [`crate::chaos::shrink`].
    pub fn len(&self) -> usize {
        self.crashes.len() + self.links.len()
    }

    /// True iff the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.links.is_empty()
    }

    /// True iff every injected element preserves quiescent histories
    /// assuming crashed processes are recovered (delays only, plus any
    /// number of supervised crashes).
    pub fn is_benign(&self) -> bool {
        self.links.iter().all(|l| l.fault.is_benign())
    }

    /// The schedule with fault element `i` removed (crashes first, then
    /// links — the shrinker's removal order).
    pub fn without(&self, i: usize) -> FaultSchedule {
        let mut s = self.clone();
        if i < s.crashes.len() {
            s.crashes.remove(i);
        } else {
            s.links.remove(i - s.crashes.len());
        }
        s
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no faults");
        }
        let mut first = true;
        for c in &self.crashes {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        for l in &self.links {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        Ok(())
    }
}

/// The state machine shared by in-flight link interception.
#[derive(Debug)]
enum LinkCore {
    Delay {
        buffer: VecDeque<Value>,
        slack: usize,
    },
    Reorder {
        /// `(arrival index, value)` pairs awaiting release.
        buffer: Vec<(usize, Value)>,
        window: usize,
        rng: StdRng,
    },
    Duplicate {
        period: usize,
    },
    Drop {
        period: usize,
    },
}

impl LinkCore {
    fn new(fault: &Fault) -> LinkCore {
        match *fault {
            Fault::Delay { slack } => LinkCore::Delay {
                buffer: VecDeque::new(),
                slack,
            },
            Fault::Reorder { window, seed } => {
                assert!(window > 0, "reorder window must be positive");
                LinkCore::Reorder {
                    buffer: Vec::new(),
                    window,
                    rng: StdRng::seed_from_u64(seed),
                }
            }
            Fault::Duplicate { period } => {
                assert!(period > 0, "duplicate period must be positive");
                LinkCore::Duplicate { period }
            }
            Fault::Drop { period } => {
                assert!(period > 0, "drop period must be positive");
                LinkCore::Drop { period }
            }
        }
    }
}

/// An engine-interposed faulty link instance (built from a
/// [`LinkFaultSpec`] for the duration of one run).
#[derive(Debug)]
pub struct EngineLink {
    chan: Chan,
    core: LinkCore,
    /// Messages ingested so far (1-based seq of the next is `seen + 1`).
    seen: usize,
}

impl EngineLink {
    pub(crate) fn new(spec: &LinkFaultSpec) -> EngineLink {
        EngineLink {
            chan: spec.chan,
            core: LinkCore::new(&spec.fault),
            seen: 0,
        }
    }

    pub(crate) fn chan(&self) -> Chan {
        self.chan
    }

    /// Messages buffered awaiting release.
    pub(crate) fn pending(&self) -> usize {
        match &self.core {
            LinkCore::Delay { buffer, .. } => buffer.len(),
            LinkCore::Reorder { buffer, .. } => buffer.len(),
            LinkCore::Duplicate { .. } | LinkCore::Drop { .. } => 0,
        }
    }

    /// Intercepts one send: returns the messages to deliver *now* and an
    /// optional fault event (drop/duplicate happen at ingestion).
    pub(crate) fn on_send(&mut self, v: Value) -> (Vec<Value>, Option<FaultEvent>) {
        self.seen += 1;
        let seq = self.seen;
        match &mut self.core {
            LinkCore::Delay { buffer, .. } => {
                buffer.push_back(v);
                (Vec::new(), None)
            }
            LinkCore::Reorder { buffer, .. } => {
                buffer.push((seq, v));
                (Vec::new(), None)
            }
            LinkCore::Duplicate { period } => {
                if seq.is_multiple_of(*period) {
                    (
                        vec![v, v],
                        Some(FaultEvent {
                            chan: self.chan,
                            seq,
                            kind: FaultKind::Duplicated,
                            value: v,
                        }),
                    )
                } else {
                    (vec![v], None)
                }
            }
            LinkCore::Drop { period } => {
                if seq.is_multiple_of(*period) {
                    (
                        Vec::new(),
                        Some(FaultEvent {
                            chan: self.chan,
                            seq,
                            kind: FaultKind::Dropped,
                            value: v,
                        }),
                    )
                } else {
                    (vec![v], None)
                }
            }
        }
    }

    /// End-of-round release: delay links release everything above their
    /// slack, reorder links release whenever the window is full. With
    /// `force` (the rest of the network made no progress) each buffering
    /// link additionally releases one message, so buffers drain before
    /// quiescence.
    pub(crate) fn pump(&mut self, force: bool) -> Vec<(Value, Option<FaultEvent>)> {
        let mut out = Vec::new();
        match &mut self.core {
            LinkCore::Delay { buffer, slack } => {
                while buffer.len() > *slack {
                    out.push((buffer.pop_front().expect("nonempty"), None));
                }
                if force {
                    if let Some(v) = buffer.pop_front() {
                        out.push((v, None));
                    }
                }
            }
            LinkCore::Reorder {
                buffer,
                window,
                rng,
            } => {
                let chan = self.chan;
                let release = |buffer: &mut Vec<(usize, Value)>, rng: &mut StdRng| {
                    let i = rng.random_range(0..buffer.len());
                    let (seq, v) = buffer.swap_remove(i);
                    let overtook = buffer.iter().any(|&(s, _)| s < seq);
                    let event = overtook.then_some(FaultEvent {
                        chan,
                        seq,
                        kind: FaultKind::Reordered,
                        value: v,
                    });
                    (v, event)
                };
                while buffer.len() >= *window {
                    out.push(release(buffer, rng));
                }
                if force && !buffer.is_empty() {
                    out.push(release(buffer, rng));
                }
            }
            LinkCore::Duplicate { .. } | LinkCore::Drop { .. } => {}
        }
        out
    }
}

/// A faulty channel: reads `input`, forwards onto `output` subject to a
/// [`Fault`]. Interpose it by renaming the producer's output channel to a
/// fresh raw channel and letting the link feed the original one.
///
/// All randomness (reorder release order) comes from the seed stored in
/// the fault, so two runs with identical construction produce identical
/// deliveries *and* identical [`fault_log`](FaultyLink::fault_log)s.
pub struct FaultyLink {
    name: String,
    input: Chan,
    output: Chan,
    fault: Fault,
    state: LinkState,
    /// Messages ingested so far (1-based event seq).
    seen: usize,
    /// Local copy of every injected event (also reported through
    /// [`StepCtx::note_fault`] into the run's fault log).
    log: Vec<FaultEvent>,
}

#[derive(Debug)]
enum LinkState {
    Delay {
        buffer: VecDeque<Value>,
        slack: usize,
    },
    Reorder {
        /// `(arrival index, value)` pairs buffered for permutation.
        buffer: Vec<(usize, Value)>,
        window: usize,
        rng: StdRng,
    },
    Duplicate {
        period: usize,
    },
    Drop {
        period: usize,
    },
}

impl LinkState {
    fn new(fault: &Fault) -> LinkState {
        match *fault {
            Fault::Delay { slack } => LinkState::Delay {
                buffer: VecDeque::new(),
                slack,
            },
            Fault::Reorder { window, seed } => {
                assert!(window > 0, "reorder window must be positive");
                LinkState::Reorder {
                    buffer: Vec::new(),
                    window,
                    rng: StdRng::seed_from_u64(seed),
                }
            }
            Fault::Duplicate { period } => {
                assert!(period > 0, "duplicate period must be positive");
                LinkState::Duplicate { period }
            }
            Fault::Drop { period } => {
                assert!(period > 0, "drop period must be positive");
                LinkState::Drop { period }
            }
        }
    }
}

impl FaultyLink {
    /// Creates a link forwarding `input` to `output` under `fault`.
    ///
    /// # Panics
    ///
    /// Panics if a periodic fault has `period == 0` or a reorder fault
    /// has `window == 0`.
    pub fn new(name: impl Into<String>, input: Chan, output: Chan, fault: Fault) -> FaultyLink {
        let state = LinkState::new(&fault);
        FaultyLink {
            name: name.into(),
            input,
            output,
            fault,
            state,
            seen: 0,
            log: Vec::new(),
        }
    }

    /// Every fault event this link injected so far, in order. The same
    /// events are reported into
    /// [`RunReport::fault_log`](crate::RunReport::fault_log) with this
    /// link's name attached.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.log
    }

    fn emit_fault(&mut self, ctx: &mut StepCtx<'_>, event: FaultEvent) {
        ctx.note_fault(event.clone());
        self.log.push(event);
    }
}

impl Process for FaultyLink {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match &mut self.state {
            LinkState::Delay { buffer, slack } => {
                // Hold up to `slack` messages; once the buffer exceeds the
                // slack (or the upstream goes quiet) release the oldest,
                // so every message is eventually delivered in order.
                if buffer.len() > *slack {
                    let v = buffer.pop_front().expect("nonempty");
                    ctx.send(self.output, v);
                    StepResult::Progress
                } else if ctx.available(self.input) > 0 {
                    let v = ctx.pop(self.input).expect("nonempty");
                    self.seen += 1;
                    buffer.push_back(v);
                    StepResult::Progress
                } else if let Some(v) = buffer.pop_front() {
                    ctx.send(self.output, v);
                    StepResult::Progress
                } else {
                    StepResult::Idle
                }
            }
            LinkState::Reorder {
                buffer,
                window,
                rng,
            } => {
                if ctx.available(self.input) > 0 && buffer.len() < *window {
                    let v = ctx.pop(self.input).expect("nonempty");
                    self.seen += 1;
                    buffer.push((self.seen, v));
                    StepResult::Progress
                } else if !buffer.is_empty() {
                    let i = rng.random_range(0..buffer.len());
                    let (seq, v) = buffer.swap_remove(i);
                    let overtook = buffer.iter().any(|&(s, _)| s < seq);
                    let event = overtook.then_some(FaultEvent {
                        chan: self.output,
                        seq,
                        kind: FaultKind::Reordered,
                        value: v,
                    });
                    ctx.send(self.output, v);
                    if let Some(e) = event {
                        self.emit_fault(ctx, e);
                    }
                    StepResult::Progress
                } else {
                    StepResult::Idle
                }
            }
            LinkState::Duplicate { period } => match ctx.pop(self.input) {
                Some(v) => {
                    self.seen += 1;
                    let seq = self.seen;
                    let dup = seq.is_multiple_of(*period);
                    ctx.send(self.output, v);
                    if dup {
                        ctx.send(self.output, v);
                        self.emit_fault(
                            ctx,
                            FaultEvent {
                                chan: self.output,
                                seq,
                                kind: FaultKind::Duplicated,
                                value: v,
                            },
                        );
                    }
                    StepResult::Progress
                }
                None => StepResult::Idle,
            },
            LinkState::Drop { period } => match ctx.pop(self.input) {
                Some(v) => {
                    self.seen += 1;
                    let seq = self.seen;
                    if !seq.is_multiple_of(*period) {
                        ctx.send(self.output, v);
                    } else {
                        self.emit_fault(
                            ctx,
                            FaultEvent {
                                chan: self.output,
                                seq,
                                kind: FaultKind::Dropped,
                                value: v,
                            },
                        );
                    }
                    StepResult::Progress
                }
                None => StepResult::Idle,
            },
        }
    }

    fn snapshot(&self) -> Option<StateCell> {
        let core = match &self.state {
            LinkState::Delay { buffer, .. } => StateCell::Values(buffer.iter().copied().collect()),
            LinkState::Reorder { buffer, rng, .. } => StateCell::List(vec![
                StateCell::Nats(buffer.iter().map(|&(s, _)| s as u64).collect()),
                StateCell::Values(buffer.iter().map(|&(_, v)| v).collect()),
                StateCell::Rng(rng.clone()),
            ]),
            LinkState::Duplicate { .. } | LinkState::Drop { .. } => StateCell::Unit,
        };
        // The in-flight buffer *and* the fault log participate in the
        // snapshot, so checkpoint/resume through a lossy link reproduces
        // both the deliveries and the attributed fault events.
        Some(StateCell::List(vec![
            StateCell::Nat(self.seen as u64),
            core,
            StateCell::List(self.log.iter().map(FaultEvent::to_cell).collect()),
        ]))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        let Some([seen, core, log]) = state.as_list().and_then(|l| <&[_; 3]>::try_from(l).ok())
        else {
            return false;
        };
        let Some(seen) = seen.as_nat() else {
            return false;
        };
        let Some(log) = log
            .as_list()
            .map(|cells| cells.iter().map(FaultEvent::from_cell).collect())
            .and_then(|log: Option<Vec<FaultEvent>>| log)
        else {
            return false;
        };
        match (&mut self.state, core) {
            (LinkState::Delay { buffer, .. }, StateCell::Values(vs)) => {
                *buffer = vs.iter().copied().collect();
            }
            (LinkState::Reorder { buffer, rng, .. }, StateCell::List(parts)) => {
                let [seqs, values, saved_rng] = match <&[_; 3]>::try_from(parts.as_slice()) {
                    Ok(parts) => parts,
                    Err(_) => return false,
                };
                let (Some(seqs), Some(values), Some(saved_rng)) =
                    (seqs.as_nats(), values.as_values(), saved_rng.as_rng())
                else {
                    return false;
                };
                if seqs.len() != values.len() {
                    return false;
                }
                *buffer = seqs
                    .iter()
                    .zip(values)
                    .map(|(&s, &v)| (s as usize, v))
                    .collect();
                *rng = saved_rng.clone();
            }
            (LinkState::Duplicate { .. } | LinkState::Drop { .. }, StateCell::Unit) => {}
            _ => return false,
        }
        self.seen = seen as usize;
        self.log = log;
        true
    }

    fn reset(&mut self) -> bool {
        self.state = LinkState::new(&self.fault);
        self.seen = 0;
        self.log.clear();
        true
    }
}

/// Wraps a process so it crashes (silently idles forever) after making
/// `at_step` progress steps. The runtime detects the crash through
/// [`Process::crashed`]; a supervisor can then restore and
/// [`restart`](Process::restart) it — restarting defuses the fuse, so a
/// `CrashAt` fault is one-shot.
pub struct CrashAt<P> {
    name: String,
    inner: P,
    fuel: usize,
    initial_fuel: usize,
}

impl<P: Process> CrashAt<P> {
    /// Crashes `inner` after its `at_step`-th progress step (0 = dead on
    /// arrival).
    pub fn new(inner: P, at_step: usize) -> CrashAt<P> {
        CrashAt {
            name: format!("{}!crash@{at_step}", inner.name()),
            inner,
            fuel: at_step,
            initial_fuel: at_step,
        }
    }

    /// True iff the wrapper has exhausted its fuel.
    pub fn crashed(&self) -> bool {
        self.fuel == 0
    }
}

impl<P: Process> Process for CrashAt<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        self.inner.inputs()
    }

    fn outputs(&self) -> Vec<Chan> {
        self.inner.outputs()
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if self.fuel == 0 {
            return StepResult::Idle;
        }
        let r = self.inner.step(ctx);
        if r == StepResult::Progress {
            self.fuel -= 1;
        }
        r
    }

    fn snapshot(&self) -> Option<StateCell> {
        self.inner
            .snapshot()
            .map(|inner| StateCell::List(vec![StateCell::Nat(self.fuel as u64), inner]))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        let Some([fuel, inner]) = state.as_list().and_then(|l| <&[_; 2]>::try_from(l).ok()) else {
            return false;
        };
        let Some(fuel) = fuel.as_nat() else {
            return false;
        };
        if !self.inner.restore(inner) {
            return false;
        }
        self.fuel = fuel as usize;
        true
    }

    fn reset(&mut self) -> bool {
        if !self.inner.reset() {
            return false;
        }
        self.fuel = self.initial_fuel;
        true
    }

    fn crashed(&self) -> bool {
        self.fuel == 0
    }

    fn restart(&mut self) -> bool {
        // One-shot fault: a restarted process must not immediately
        // re-crash while replaying the very steps that exhausted it.
        self.fuel = usize::MAX;
        self.inner.restart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, RunOptions};
    use crate::procs::{Apply, Source};
    use crate::scheduler::RoundRobin;
    use crate::RunReport;

    fn raw() -> Chan {
        Chan::new(200)
    }
    fn out() -> Chan {
        Chan::new(201)
    }

    fn faulted_pipeline(fault: Fault) -> Network {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            raw(),
            (1..=4).map(Value::Int).collect::<Vec<_>>(),
        ));
        net.add(FaultyLink::new("link", raw(), out(), fault));
        net
    }

    fn report(fault: Fault) -> RunReport {
        let report =
            faulted_pipeline(fault).run_report(&mut RoundRobin::new(), RunOptions::default());
        assert!(report.quiescent);
        report
    }

    fn delivered(fault: Fault) -> Vec<Value> {
        report(fault).trace.seq_on(out()).take(32)
    }

    #[test]
    fn delay_delivers_everything_in_order() {
        let r = report(Fault::Delay { slack: 2 });
        assert_eq!(
            r.trace.seq_on(out()).take(32),
            (1..=4).map(Value::Int).collect::<Vec<_>>()
        );
        assert!(r.fault_log().is_empty(), "delay is benign, not logged");
    }

    #[test]
    fn duplicate_doubles_periodically_and_logs() {
        let r = report(Fault::Duplicate { period: 2 });
        assert_eq!(
            r.trace.seq_on(out()).take(32),
            [1, 2, 2, 3, 4, 4].map(Value::Int).to_vec()
        );
        let log = r.fault_log();
        assert_eq!(log.len(), 2);
        assert!(log
            .iter()
            .all(|f| f.source == "link" && f.event.kind == FaultKind::Duplicated));
        assert_eq!(log[0].event.seq, 2);
        assert_eq!(log[1].event.seq, 4);
    }

    #[test]
    fn drop_discards_periodically_and_logs() {
        let r = report(Fault::Drop { period: 2 });
        assert_eq!(
            r.trace.seq_on(out()).take(32),
            [1, 3].map(Value::Int).to_vec()
        );
        let log = r.fault_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].event.value, Value::Int(2));
        assert_eq!(log[1].event.value, Value::Int(4));
        assert!(log.iter().all(|f| f.event.kind == FaultKind::Dropped));
    }

    #[test]
    fn reorder_permutes_but_preserves_content() {
        let mut got = delivered(Fault::Reorder { window: 3, seed: 5 });
        got.sort();
        assert_eq!(got, (1..=4).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn identical_runs_produce_identical_fault_logs() {
        // Satellite: delay/reorder determinism under the stored seed.
        for fault in [
            Fault::Reorder { window: 3, seed: 9 },
            Fault::Drop { period: 2 },
            Fault::Duplicate { period: 3 },
            Fault::Delay { slack: 1 },
        ] {
            let a = report(fault.clone());
            let b = report(fault.clone());
            assert_eq!(a.trace, b.trace, "{fault}: traces must be identical");
            assert_eq!(
                a.fault_log(),
                b.fault_log(),
                "{fault}: fault logs must be identical"
            );
        }
    }

    #[test]
    fn crash_at_k_stops_after_k_steps() {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            raw(),
            (1..=4).map(Value::Int).collect::<Vec<_>>(),
        ));
        net.add(CrashAt::new(
            Apply::int_affine("double", raw(), out(), 2, 0),
            2,
        ));
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        assert!(
            report.quiescent,
            "a crashed process idles; the net quiesces"
        );
        assert_eq!(
            report.trace.seq_on(out()).take(8),
            [2, 4].map(Value::Int).to_vec()
        );
        // the crashed process leaves its input queued
        assert_eq!(report.channel(raw()).expect("metered").residual, 2);
        assert!(report
            .processes
            .iter()
            .any(|p| p.name.contains("crash@2") && p.progress == 2));
        // satellite: the dossier distinguishes crashed from starved
        let crashed = report
            .processes
            .iter()
            .find(|p| p.name.contains("crash@2"))
            .expect("wrapped process reported");
        assert!(crashed.crashed, "CrashAt feeds the crashed flag");
        assert_eq!(
            report.bottleneck().expect("crash with queued input").name,
            crashed.name,
            "a crashed process with waiting input is the bottleneck"
        );
    }

    #[test]
    fn fault_schedule_shrinking_surface() {
        let s = FaultSchedule {
            crashes: vec![CrashPoint {
                process: 1,
                at_step: 3,
            }],
            links: vec![
                LinkFaultSpec {
                    chan: raw(),
                    fault: Fault::Drop { period: 2 },
                },
                LinkFaultSpec {
                    chan: out(),
                    fault: Fault::Delay { slack: 1 },
                },
            ],
        };
        assert_eq!(s.len(), 3);
        assert!(!s.is_benign(), "drop convicts");
        let no_crash = s.without(0);
        assert!(no_crash.crashes.is_empty());
        assert_eq!(no_crash.links.len(), 2);
        let no_drop = s.without(1);
        assert!(no_drop.is_benign(), "crash + delay alone are benign");
        assert!(FaultSchedule::none().is_empty());
        assert!(s.to_string().contains("drop(every 2)"));
    }

    #[test]
    fn crash_at_snapshot_restore_restart_roundtrip() {
        let mut p = CrashAt::new(Apply::int_affine("f", raw(), out(), 1, 0), 2);
        let cell = p.snapshot().expect("Apply is hooked, so CrashAt is");
        assert!(p.reset(), "reset propagates to the (resettable) inner");
        assert!(!p.crashed());
        assert!(p.restore(&cell));
        assert!(p.restart(), "restart defuses the fuse");
        assert!(!Process::crashed(&p));
        // after restart the fuse is effectively infinite
        let again = p.snapshot().expect("still hooked");
        let fuel = again.as_list().unwrap()[0].as_nat().unwrap();
        assert_eq!(fuel, u64::MAX);
    }
}
