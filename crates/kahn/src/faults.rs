//! Fault injection: perturbed channel links and crashing processes.
//!
//! The conformance bridge ([`crate::conformance`]) makes the paper's
//! adequacy claim executable; this module supplies the perturbations that
//! stress it. Each [`Fault`] wraps a channel as a [`FaultyLink`] process
//! interposed between producer and consumer (the producer sends on a raw
//! channel, the link forwards — faultily — onto the real one), and
//! [`CrashAt`] wraps any process so it dies after a fixed number of
//! steps.
//!
//! The taxonomy follows the paper's asynchronous-channel semantics:
//!
//! * **Delay** is *not* a fault at all — channels are unbounded FIFOs
//!   with no timing guarantees, so a delayed but order-and-content
//!   preserving link yields exactly the same quiescent channel histories
//!   and the conformance bridge still certifies the run.
//! * **Reorder** breaks the FIFO discipline: per-channel histories are
//!   permuted within a window, violating order-sensitive descriptions
//!   (though order-free specifications such as the bag accept it).
//! * **Duplicate** and **Drop** corrupt the history itself; at
//!   quiescence the description's limit condition `f(t) = g(t)` fails
//!   and [`diagnose`](eqp_core::diagnose::diagnose) names the component.
//! * **Crash** silences a process; whatever it still owed its
//!   description is missing at quiescence (a limit failure), and the
//!   residual queue on its input shows up in [`crate::RunReport`].

use crate::process::{Process, StepCtx, StepResult};
use eqp_trace::{Chan, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// A channel perturbation applied by a [`FaultyLink`].
#[derive(Debug, Clone)]
pub enum Fault {
    /// Forward every message, order intact, but hold up to `slack`
    /// messages back. Benign: preserves quiescent channel histories.
    Delay {
        /// Messages the link may buffer before it must forward.
        slack: usize,
    },
    /// Forward every message, but release them in a random order from a
    /// sliding window of up to `window` buffered messages.
    Reorder {
        /// Maximum number of messages buffered for permutation.
        window: usize,
        /// Seed for the link's private release order RNG.
        seed: u64,
    },
    /// Forward every message, sending every `period`-th one twice.
    Duplicate {
        /// Duplicate each `period`-th message (1 = every message).
        period: usize,
    },
    /// Silently discard every `period`-th message.
    Drop {
        /// Drop each `period`-th message (1 = every message).
        period: usize,
    },
}

enum LinkState {
    Delay {
        buffer: VecDeque<Value>,
        slack: usize,
    },
    Reorder {
        buffer: Vec<Value>,
        window: usize,
        rng: StdRng,
    },
    Duplicate {
        period: usize,
        seen: usize,
    },
    Drop {
        period: usize,
        seen: usize,
    },
}

/// A faulty channel: reads `input`, forwards onto `output` subject to a
/// [`Fault`]. Interpose it by renaming the producer's output channel to a
/// fresh raw channel and letting the link feed the original one.
pub struct FaultyLink {
    name: String,
    input: Chan,
    output: Chan,
    state: LinkState,
}

impl FaultyLink {
    /// Creates a link forwarding `input` to `output` under `fault`.
    ///
    /// # Panics
    ///
    /// Panics if a periodic fault has `period == 0` or a reorder fault
    /// has `window == 0`.
    pub fn new(name: impl Into<String>, input: Chan, output: Chan, fault: Fault) -> FaultyLink {
        let state = match fault {
            Fault::Delay { slack } => LinkState::Delay {
                buffer: VecDeque::new(),
                slack,
            },
            Fault::Reorder { window, seed } => {
                assert!(window > 0, "reorder window must be positive");
                LinkState::Reorder {
                    buffer: Vec::new(),
                    window,
                    rng: StdRng::seed_from_u64(seed),
                }
            }
            Fault::Duplicate { period } => {
                assert!(period > 0, "duplicate period must be positive");
                LinkState::Duplicate { period, seen: 0 }
            }
            Fault::Drop { period } => {
                assert!(period > 0, "drop period must be positive");
                LinkState::Drop { period, seen: 0 }
            }
        };
        FaultyLink {
            name: name.into(),
            input,
            output,
            state,
        }
    }
}

impl Process for FaultyLink {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        vec![self.input]
    }

    fn outputs(&self) -> Vec<Chan> {
        vec![self.output]
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        match &mut self.state {
            LinkState::Delay { buffer, slack } => {
                // Hold up to `slack` messages; once the buffer exceeds the
                // slack (or the upstream goes quiet) release the oldest,
                // so every message is eventually delivered in order.
                if buffer.len() > *slack {
                    let v = buffer.pop_front().expect("nonempty");
                    ctx.send(self.output, v);
                    StepResult::Progress
                } else if ctx.available(self.input) > 0 {
                    let v = ctx.pop(self.input).expect("nonempty");
                    buffer.push_back(v);
                    StepResult::Progress
                } else if let Some(v) = buffer.pop_front() {
                    ctx.send(self.output, v);
                    StepResult::Progress
                } else {
                    StepResult::Idle
                }
            }
            LinkState::Reorder {
                buffer,
                window,
                rng,
            } => {
                if ctx.available(self.input) > 0 && buffer.len() < *window {
                    let v = ctx.pop(self.input).expect("nonempty");
                    buffer.push(v);
                    StepResult::Progress
                } else if !buffer.is_empty() {
                    let i = rng.random_range(0..buffer.len());
                    let v = buffer.swap_remove(i);
                    ctx.send(self.output, v);
                    StepResult::Progress
                } else {
                    StepResult::Idle
                }
            }
            LinkState::Duplicate { period, seen } => match ctx.pop(self.input) {
                Some(v) => {
                    *seen += 1;
                    ctx.send(self.output, v);
                    if *seen % *period == 0 {
                        ctx.send(self.output, v);
                    }
                    StepResult::Progress
                }
                None => StepResult::Idle,
            },
            LinkState::Drop { period, seen } => match ctx.pop(self.input) {
                Some(v) => {
                    *seen += 1;
                    if *seen % *period != 0 {
                        ctx.send(self.output, v);
                    }
                    StepResult::Progress
                }
                None => StepResult::Idle,
            },
        }
    }
}

/// Wraps a process so it crashes (silently idles forever) after making
/// `at_step` progress steps.
pub struct CrashAt<P> {
    name: String,
    inner: P,
    fuel: usize,
}

impl<P: Process> CrashAt<P> {
    /// Crashes `inner` after its `at_step`-th progress step (0 = dead on
    /// arrival).
    pub fn new(inner: P, at_step: usize) -> CrashAt<P> {
        CrashAt {
            name: format!("{}!crash@{at_step}", inner.name()),
            inner,
            fuel: at_step,
        }
    }

    /// True iff the wrapper has exhausted its fuel.
    pub fn crashed(&self) -> bool {
        self.fuel == 0
    }
}

impl<P: Process> Process for CrashAt<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Chan> {
        self.inner.inputs()
    }

    fn outputs(&self) -> Vec<Chan> {
        self.inner.outputs()
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        if self.fuel == 0 {
            return StepResult::Idle;
        }
        let r = self.inner.step(ctx);
        if r == StepResult::Progress {
            self.fuel -= 1;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, RunOptions};
    use crate::procs::{Apply, Source};
    use crate::scheduler::RoundRobin;

    fn raw() -> Chan {
        Chan::new(200)
    }
    fn out() -> Chan {
        Chan::new(201)
    }

    fn faulted_pipeline(fault: Fault) -> Network {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            raw(),
            (1..=4).map(Value::Int).collect::<Vec<_>>(),
        ));
        net.add(FaultyLink::new("link", raw(), out(), fault));
        net
    }

    fn delivered(fault: Fault) -> Vec<Value> {
        let run = faulted_pipeline(fault).run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        run.trace.seq_on(out()).take(32)
    }

    #[test]
    fn delay_delivers_everything_in_order() {
        assert_eq!(
            delivered(Fault::Delay { slack: 2 }),
            (1..=4).map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_doubles_periodically() {
        assert_eq!(
            delivered(Fault::Duplicate { period: 2 }),
            [1, 2, 2, 3, 4, 4].map(Value::Int).to_vec()
        );
    }

    #[test]
    fn drop_discards_periodically() {
        assert_eq!(
            delivered(Fault::Drop { period: 2 }),
            [1, 3].map(Value::Int).to_vec()
        );
    }

    #[test]
    fn reorder_permutes_but_preserves_content() {
        let mut got = delivered(Fault::Reorder { window: 3, seed: 5 });
        got.sort();
        assert_eq!(got, (1..=4).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn crash_at_k_stops_after_k_steps() {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            raw(),
            (1..=4).map(Value::Int).collect::<Vec<_>>(),
        ));
        net.add(CrashAt::new(
            Apply::int_affine("double", raw(), out(), 2, 0),
            2,
        ));
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        assert!(
            report.quiescent,
            "a crashed process idles; the net quiesces"
        );
        assert_eq!(
            report.trace.seq_on(out()).take(8),
            [2, 4].map(Value::Int).to_vec()
        );
        // the crashed process leaves its input queued
        assert_eq!(report.channel(raw()).expect("metered").residual, 2);
        assert!(report
            .processes
            .iter()
            .any(|p| p.name.contains("crash@2") && p.progress == 2));
    }
}
