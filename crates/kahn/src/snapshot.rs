//! Checkpointing: capture the full state of a running network and restore
//! it — into the same network, or into a freshly built identical one.
//!
//! The paper's Theorem 2 makes recovery *certifiable*: a network's
//! quiescent traces are exactly the smooth solutions of its description,
//! so any recovery mechanism that preserves the trace (and the process
//! states that will extend it) preserves the semantics — the recovered
//! run still certifies under [`crate::conformance`]. This module supplies
//! the mechanism:
//!
//! * [`StateCell`] — a small algebraic encoding of mutable process (and
//!   scheduler) state. Processes expose their state through
//!   [`Process::snapshot`](crate::Process::snapshot) /
//!   [`Process::restore`](crate::Process::restore); the cell only carries
//!   what *changes* over a run (positions, buffers, RNG states), never
//!   construction-time constants — restore therefore targets an
//!   identically constructed process.
//! * [`Checkpoint`] — everything a run is: channel queues, the trace so
//!   far, the shared RNG, telemetry meters, per-process counters and
//!   state cells, scheduler state, and the position inside the current
//!   scheduling round. Capturing at step `k` and resuming yields a run
//!   byte-identical to the uninterrupted one (trace *and* report meters)
//!   — the property suite `tests/checkpoint_resume.rs` proves it across
//!   the zoo × all three schedulers.
//!
//! The supervisor ([`crate::supervisor`]) uses per-process cells from
//! periodic checkpoints to restore crashed components one-for-one,
//! replaying their journaled inputs and RNG draws since the checkpoint.

use crate::chanmap::ChanMap;
use crate::report::Telemetry;
use crate::scheduler::Scheduler;
use eqp_trace::{Event, Value};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::fmt;

/// A small algebraic encoding of mutable run state.
///
/// Only *mutable* state belongs in a cell: a process's message buffers,
/// sequence positions, halted flags, private RNGs. Construction-time
/// constants (channel wiring, periods, schedules) are supplied by
/// rebuilding the process identically, so restore is meaningful exactly
/// when applied to a process constructed with the same parameters.
#[derive(Debug, Clone)]
pub enum StateCell {
    /// No mutable state (stateless processes).
    Unit,
    /// A boolean flag (halted, primed, …).
    Flag(bool),
    /// An unsigned counter or position.
    Nat(u64),
    /// A signed quantity.
    Int(i64),
    /// A single buffered value.
    Value(Value),
    /// An ordered buffer of values.
    Values(Vec<Value>),
    /// A list of unsigned values (orderings, fuel vectors, …).
    Nats(Vec<u64>),
    /// A private RNG mid-stream.
    Rng(StdRng),
    /// A composite of nested cells, in a fixed positional layout.
    List(Vec<StateCell>),
}

impl StateCell {
    /// The flag, if this cell is one.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            StateCell::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// The counter, if this cell is one.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            StateCell::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// The signed value, if this cell is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            StateCell::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value buffer, if this cell is one.
    pub fn as_values(&self) -> Option<&[Value]> {
        match self {
            StateCell::Values(vs) => Some(vs),
            _ => None,
        }
    }

    /// The nat list, if this cell is one.
    pub fn as_nats(&self) -> Option<&[u64]> {
        match self {
            StateCell::Nats(ns) => Some(ns),
            _ => None,
        }
    }

    /// The RNG, if this cell is one.
    pub fn as_rng(&self) -> Option<&StdRng> {
        match self {
            StateCell::Rng(r) => Some(r),
            _ => None,
        }
    }

    /// The sub-cells, if this cell is a composite.
    pub fn as_list(&self) -> Option<&[StateCell]> {
        match self {
            StateCell::List(cells) => Some(cells),
            _ => None,
        }
    }
}

/// Why a checkpoint could not be captured or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A process has no snapshot hook (its
    /// [`Process::snapshot`](crate::Process::snapshot) returns `None`),
    /// so its state cannot be
    /// captured or restored directly. The supervisor falls back to
    /// replay-from-genesis for such processes; whole-run checkpointing
    /// cannot.
    UnsupportedProcess {
        /// Index of the hookless process.
        index: usize,
        /// Its diagnostic name.
        name: String,
    },
    /// A process rejected the state cell offered to it (wrong shape —
    /// the checkpoint was taken from a differently built network).
    RestoreRejected {
        /// Index of the rejecting process.
        index: usize,
        /// Its diagnostic name.
        name: String,
    },
    /// The checkpoint holds state for a different number of processes.
    ArityMismatch {
        /// Processes in the checkpoint.
        expected: usize,
        /// Processes in the network being restored.
        found: usize,
    },
    /// The scheduler could not capture or restore its state.
    SchedulerUnsupported,
    /// A monitored resume was requested but the checkpoint was captured
    /// from an unmonitored run, so there is no monitor state to restore —
    /// online certification cannot pick up mid-trace without it.
    NoMonitor,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedProcess { index, name } => write!(
                f,
                "process {index} (`{name}`) has no snapshot hook; its state cannot be captured"
            ),
            SnapshotError::RestoreRejected { index, name } => write!(
                f,
                "process {index} (`{name}`) rejected the checkpointed state cell \
                 (was the checkpoint taken from an identically built network?)"
            ),
            SnapshotError::ArityMismatch { expected, found } => write!(
                f,
                "checkpoint holds {expected} process states but the network has {found} processes"
            ),
            SnapshotError::SchedulerUnsupported => {
                write!(f, "the scheduler does not support snapshot/restore")
            }
            SnapshotError::NoMonitor => {
                write!(
                    f,
                    "the checkpoint was captured from an unmonitored run; \
                     monitored resume needs the monitor's evaluator state"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A full capture of a run in flight: restore it into an identically
/// built network (and scheduler) and the resumed run is byte-identical —
/// trace and report meters — to the uninterrupted one.
///
/// Obtained from
/// [`Network::run_report_checkpointed`](crate::Network::run_report_checkpointed);
/// consumed by [`Network::resume_report`](crate::Network::resume_report).
#[derive(Clone)]
pub struct Checkpoint {
    /// Progress steps completed at capture time.
    pub(crate) steps: usize,
    /// Scheduler rounds completed at capture time.
    pub(crate) rounds: usize,
    /// Channel queue contents.
    pub(crate) queues: ChanMap<VecDeque<Value>>,
    /// The trace so far.
    pub(crate) trace: Vec<Event>,
    /// The shared nondeterminism RNG mid-stream.
    pub(crate) rng: StdRng,
    /// Telemetry meters so far.
    pub(crate) telemetry: Telemetry,
    /// Per-process progress/idle/starvation counters.
    pub(crate) counters: Vec<crate::network::ProcCounters>,
    /// Per-process state cells (`None` for hookless processes — such a
    /// checkpoint supports supervisor fallback but not whole-run resume).
    pub(crate) processes: Vec<Option<StateCell>>,
    /// Scheduler state, if the scheduler supports snapshotting.
    pub(crate) scheduler: Option<StateCell>,
    /// Unstepped process indices remaining in the scheduling round that
    /// was in flight at capture time.
    pub(crate) pending_round: VecDeque<usize>,
    /// Whether any process had already progressed in that round.
    pub(crate) round_progressed: bool,
    /// The online smoothness monitor's evaluator state (monitored runs
    /// only). The engine drains committed sends into the monitor *before*
    /// any capture, so the monitor here has observed exactly `trace` and
    /// a resumed run re-certifies without re-feeding the prefix.
    pub(crate) monitor: Option<crate::monitor::SmoothnessMonitor>,
}

impl Checkpoint {
    /// Progress steps completed when the checkpoint was captured.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Trace length (events recorded) at capture time.
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Number of processes whose state was captured through a hook.
    pub fn hooked_processes(&self) -> usize {
        self.processes.iter().filter(|c| c.is_some()).count()
    }

    /// True iff every process state was captured — required for
    /// whole-run [`resume`](crate::Network::resume_report).
    pub fn is_complete(&self) -> bool {
        self.processes.iter().all(|c| c.is_some()) && self.scheduler.is_some()
    }

    /// The state cell captured for process `i`, if hooked.
    pub fn process_state(&self, i: usize) -> Option<&StateCell> {
        self.processes.get(i).and_then(|c| c.as_ref())
    }

    /// True iff the checkpoint carries online-monitor state (captured
    /// from a monitored run) and so supports
    /// [`resume_report_monitored`](crate::Network::resume_report_monitored).
    pub fn has_monitor(&self) -> bool {
        self.monitor.is_some()
    }

    /// A deterministic digest of the *entire* capture — steps, rounds,
    /// queues (in channel order), trace, RNG, telemetry, counters,
    /// process cells, scheduler cell, and round position. Two
    /// checkpoints with equal fingerprints captured byte-identical run
    /// states; the sharded differential suite uses this to assert that
    /// checkpoints agree across every shard count.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.steps.hash(&mut h);
        self.rounds.hash(&mut h);
        let mut chans: Vec<_> = self.queues.iter().collect();
        chans.sort_by_key(|(c, _)| **c);
        for (c, q) in chans {
            format!("{c:?}:{q:?}").hash(&mut h);
        }
        format!("{:?}", self.trace).hash(&mut h);
        format!("{:?}", self.rng).hash(&mut h);
        format!("{:?}", self.telemetry).hash(&mut h);
        format!("{:?}", self.counters).hash(&mut h);
        format!("{:?}", self.processes).hash(&mut h);
        format!("{:?}", self.scheduler).hash(&mut h);
        format!("{:?}", self.pending_round).hash(&mut h);
        self.round_progressed.hash(&mut h);
        self.monitor.is_some().hash(&mut h);
        h.finish()
    }

    /// Restores scheduler state into `sched`.
    pub(crate) fn restore_scheduler(&self, sched: &mut dyn Scheduler) -> Result<(), SnapshotError> {
        match &self.scheduler {
            Some(cell) if sched.restore(cell) => Ok(()),
            _ => Err(SnapshotError::SchedulerUnsupported),
        }
    }
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("steps", &self.steps)
            .field("rounds", &self.rounds)
            .field("trace_len", &self.trace.len())
            .field("hooked", &self.hooked_processes())
            .field("total", &self.processes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_accessors_roundtrip() {
        assert_eq!(StateCell::Flag(true).as_flag(), Some(true));
        assert_eq!(StateCell::Nat(7).as_nat(), Some(7));
        assert_eq!(StateCell::Int(-3).as_int(), Some(-3));
        assert_eq!(
            StateCell::Values(vec![Value::Int(1)]).as_values(),
            Some(&[Value::Int(1)][..])
        );
        assert_eq!(StateCell::Nats(vec![2, 3]).as_nats(), Some(&[2, 3][..]));
        let list = StateCell::List(vec![StateCell::Unit, StateCell::Nat(1)]);
        assert_eq!(list.as_list().map(<[_]>::len), Some(2));
        // mismatched accessors return None
        assert_eq!(StateCell::Unit.as_flag(), None);
        assert_eq!(StateCell::Flag(false).as_nat(), None);
    }

    #[test]
    fn snapshot_errors_display() {
        let e = SnapshotError::UnsupportedProcess {
            index: 2,
            name: "B".into(),
        };
        assert!(e.to_string().contains("no snapshot hook"));
        let e = SnapshotError::ArityMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(SnapshotError::SchedulerUnsupported
            .to_string()
            .contains("scheduler"));
    }
}
