//! The chaos harness: seeded fault storms with delta-debugged convictions.
//!
//! The conformance bridge ([`crate::conformance`]) turns the paper's
//! adequacy theorems into an executable oracle; the supervision runtime
//! ([`crate::supervisor`]) claims that crash recovery preserves it. This
//! module stress-tests both claims at once: [`storm`] samples seeded
//! random [`FaultSchedule`]s — crash points × link faults × scheduler
//! choices — runs each against a [`Scenario`] under supervision, and
//! classifies the outcome through [`check_report`]:
//!
//! * a **benign** schedule (delays plus supervised crashes within the
//!   restart budget) must stay conformant — a non-conformant benign run
//!   is a harness conviction of the *runtime*, and fails
//!   [`ChaosReport::harness_ok`];
//! * a **harmful** schedule (drop, duplicate, reorder, or an escalated
//!   crash) is *expected* to convict — the interesting artifact is the
//!   minimal reproducer, so every conviction is [`shrink`]-ed by greedy
//!   delta debugging over the schedule's fault elements until no single
//!   removal still convicts;
//! * every verdict must be **reproducible**: the same trial re-run yields
//!   the same trace and verdict, or the harness itself is convicted.
//!
//! A surviving [`Conviction`] names the violated component equation and
//! the exact injected fault events, so the failure is actionable without
//! re-running anything.

use crate::conformance::{check_report, ConformanceOptions, Verdict};
use crate::faults::{CrashPoint, Fault, FaultSchedule, LinkFaultSpec};
use crate::monitor::MonitorPolicy;
use crate::network::{Network, RunOptions};
use crate::reliable::{ArqOptions, ReliableConfig};
use crate::report::{FaultRecord, RunReport, RunStatus};
use crate::scheduler::{Adversarial, RandomSched, RoundRobin, Scheduler};
use crate::supervisor::SupervisorOptions;
use eqp_core::Description;
use eqp_trace::Chan;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::fmt;

/// A network under chaos test: a builder (fresh, identically constructed
/// network per run — chaos needs many runs), its description for the
/// conformance oracle, and a step budget. Deliberately opaque boxed
/// closures so zoo crates can adapt their entries without this crate
/// depending on them.
pub struct Scenario {
    name: String,
    max_steps: usize,
    build: Box<dyn Fn(u64) -> Network + Send + Sync>,
    describe: Box<dyn Fn() -> Description + Send + Sync>,
    /// Channels wrapped in reliable (ARQ) links for every trial run —
    /// sampled faults on them are masked, not physics.
    protect: Vec<Chan>,
    /// ARQ configuration for the protected channels.
    arq: ArqOptions,
}

impl Scenario {
    /// Creates a scenario from a seeded network builder and a description
    /// builder.
    pub fn new(
        name: impl Into<String>,
        max_steps: usize,
        build: impl Fn(u64) -> Network + Send + Sync + 'static,
        describe: impl Fn() -> Description + Send + Sync + 'static,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            max_steps,
            build: Box::new(build),
            describe: Box::new(describe),
            protect: Vec::new(),
            arq: ArqOptions::default(),
        }
    }

    /// Wraps `channels` in reliable (ARQ) links for every trial run:
    /// storms whose link faults all land on protected channels are masked
    /// by retransmission and classified *benign* — they must never
    /// convict. A schedule that exhausts a link's retry budget
    /// ([`RunStatus::ReliabilityExhausted`]) is still harmful and shrinks
    /// to a minimal reproducer naming the exhausted link.
    #[must_use]
    pub fn with_reliable(
        mut self,
        channels: impl IntoIterator<Item = Chan>,
        arq: ArqOptions,
    ) -> Scenario {
        self.protect = channels.into_iter().collect();
        self.arq = arq;
        self
    }

    /// The channels wrapped in reliable links for every trial run.
    pub fn protected(&self) -> &[Chan] {
        &self.protect
    }

    /// The scenario's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-run step budget.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Builds a fresh network for the given seed.
    pub fn build(&self, seed: u64) -> Network {
        (self.build)(seed)
    }

    /// The description the conformance oracle checks runs against.
    pub fn description(&self) -> Description {
        (self.describe)()
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("max_steps", &self.max_steps)
            .finish_non_exhaustive()
    }
}

/// Which scheduler a trial runs under — part of the sampled fault space,
/// since different schedules expose different crash interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// Rotating round-robin.
    RoundRobin,
    /// Seeded uniform-random permutations.
    Random(u64),
    /// Seeded adversarial bursts.
    Adversarial(u64),
}

impl SchedulerChoice {
    fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerChoice::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerChoice::Random(seed) => Box::new(RandomSched::new(seed)),
            SchedulerChoice::Adversarial(seed) => Box::new(Adversarial::new(seed)),
        }
    }
}

impl fmt::Display for SchedulerChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerChoice::RoundRobin => f.write_str("round-robin"),
            SchedulerChoice::Random(s) => write!(f, "random(seed {s})"),
            SchedulerChoice::Adversarial(s) => write!(f, "adversarial(seed {s})"),
        }
    }
}

/// One sampled point in the chaos space: a network seed, a scheduler, and
/// a fault schedule. Fully determines a run.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Seed fed to the scenario's network builder (oracles etc.).
    pub net_seed: u64,
    /// The scheduler the run uses.
    pub scheduler: SchedulerChoice,
    /// The injected faults.
    pub schedule: FaultSchedule,
}

impl fmt::Display for Trial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} under {}: {}",
            self.net_seed, self.scheduler, self.schedule
        )
    }
}

/// Options bounding a chaos [`storm`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Number of trials to sample.
    pub trials: usize,
    /// Master seed: everything else — network seeds, scheduler choices,
    /// fault schedules — derives from it, so a storm is reproducible.
    pub seed: u64,
    /// Maximum crash points per schedule.
    pub max_crashes: usize,
    /// Maximum link faults per schedule.
    pub max_link_faults: usize,
    /// Supervision configuration for every trial run.
    pub supervisor: SupervisorOptions,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            trials: 16,
            seed: 0xC4A05,
            max_crashes: 1,
            max_link_faults: 2,
            supervisor: SupervisorOptions::one_for_one(),
        }
    }
}

/// A non-conformant trial, shrunk to its minimal reproducer.
#[derive(Debug, Clone)]
pub struct Conviction {
    /// The originally sampled trial.
    pub trial: Trial,
    /// The delta-debugged minimal schedule that still convicts.
    pub minimal: FaultSchedule,
    /// The verdict of the minimal run.
    pub verdict: Verdict,
    /// The violated component equation (`f_k ⟸ g_k`), if the verdict
    /// names one.
    pub equation: Option<String>,
    /// The fault events the minimal run actually injected.
    pub fault_log: Vec<FaultRecord>,
    /// How the minimal run ended.
    pub status: RunStatus,
    /// True iff the convicting schedule was benign — recovery should have
    /// preserved conformance, so this convicts the *runtime*.
    pub benign: bool,
    /// False iff re-running the original trial changed its trace or
    /// verdict — a harness failure.
    pub reproducible: bool,
    /// True iff the minimal schedule is non-empty and the empty schedule
    /// runs clean: the conviction is genuinely caused by the injected
    /// faults. An unshrinkable conviction means the scenario fails even
    /// fault-free.
    pub shrinkable: bool,
}

impl fmt::Display for Conviction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conviction: {}", self.trial)?;
        writeln!(f, "  minimal reproducer: {}", self.minimal)?;
        writeln!(f, "  run ended: {}", self.status)?;
        match &self.equation {
            Some(eq) => writeln!(f, "  violated equation: {eq}")?,
            None => writeln!(f, "  verdict: {:?}", self.verdict)?,
        }
        for rec in &self.fault_log {
            writeln!(f, "  injected: {rec}")?;
        }
        if self.benign {
            writeln!(f, "  !! benign schedule convicted — runtime bug")?;
        }
        if !self.reproducible {
            writeln!(f, "  !! verdict not reproducible — harness bug")?;
        }
        if !self.shrinkable {
            writeln!(f, "  !! unshrinkable — scenario fails fault-free")?;
        }
        Ok(())
    }
}

/// The outcome of one chaos [`storm`].
#[derive(Debug)]
pub struct ChaosReport {
    /// The scenario's name.
    pub scenario: String,
    /// Trials sampled.
    pub trials: usize,
    /// Trials whose runs stayed conformant.
    pub conformant: usize,
    /// Non-conformant trials, each shrunk to a minimal reproducer.
    pub convictions: Vec<Conviction>,
}

impl ChaosReport {
    /// True iff the harness's own invariants held: every conviction is
    /// reproducible, shrinkable, and caused by a harmful schedule. (A
    /// conviction from drop/duplicate faults is the *expected* physics —
    /// it does not fail the harness.)
    pub fn harness_ok(&self) -> bool {
        self.convictions
            .iter()
            .all(|c| !c.benign && c.reproducible && c.shrinkable)
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos(`{}`): {} trials, {} conformant, {} convictions",
            self.scenario,
            self.trials,
            self.conformant,
            self.convictions.len()
        )?;
        for c in &self.convictions {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Runs one trial (fresh network, fresh scheduler, supervised, faulted)
/// and checks it against the scenario's description.
pub fn run_trial(
    scenario: &Scenario,
    trial: &Trial,
    sup: SupervisorOptions,
) -> (RunReport, crate::conformance::Conformance) {
    let mut net = scenario.build(trial.net_seed);
    let mut sched = trial.scheduler.build();
    let opts = RunOptions {
        max_steps: scenario.max_steps,
        seed: trial.net_seed,
        ..RunOptions::default()
    };
    let report = if scenario.protect.is_empty() {
        net.run_supervised_faulted(&mut sched, opts, sup, &trial.schedule)
    } else {
        let cfg = ReliableConfig::new(scenario.protect.clone()).arq(scenario.arq);
        net.run_supervised_reliable(&mut sched, opts, sup, &trial.schedule, &cfg)
    };
    let conf = check_report(
        &scenario.description(),
        &report,
        &ConformanceOptions::default(),
    );
    (report, conf)
}

/// Runs one trial with the online [`SmoothnessMonitor`](crate::monitor)
/// certifying as events commit. Under
/// [`MonitorPolicy::AbortOnViolation`] a smoothness-violating candidate
/// halts at the convicting step instead of running to the step bound and
/// re-checking post-hoc — the ddmin speedup.
pub fn run_trial_monitored(
    scenario: &Scenario,
    trial: &Trial,
    sup: SupervisorOptions,
    policy: MonitorPolicy,
) -> (RunReport, crate::conformance::Conformance) {
    let mut net = scenario.build(trial.net_seed);
    let mut sched = trial.scheduler.build();
    let opts = RunOptions {
        max_steps: scenario.max_steps,
        seed: trial.net_seed,
        ..RunOptions::default()
    }
    .with_monitor(policy);
    let desc = scenario.description();
    if scenario.protect.is_empty() {
        net.run_supervised_monitored_faulted(&desc, &mut sched, opts, sup, &trial.schedule)
    } else {
        let cfg = ReliableConfig::new(scenario.protect.clone()).arq(scenario.arq);
        net.run_supervised_monitored_reliable(&desc, &mut sched, opts, sup, &trial.schedule, &cfg)
    }
}

/// The outcome of a [`shrink_report`] pass: the minimal schedule plus the
/// cost counters the early-abort monitor saved.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The delta-debugged minimal schedule that still convicts —
    /// identical to what the post-hoc [`shrink`] finds (pinned in
    /// `tests/chaos_zoo.rs`).
    pub minimal: FaultSchedule,
    /// Candidate trials executed during the shrink.
    pub trials_run: usize,
    /// Step budget saved by early abort, summed over the candidate runs
    /// the monitor halted: `Σ (max_steps − steps_at_abort)` — each such
    /// run would otherwise have been free to grind to the scenario's
    /// step bound before the post-hoc check convicted it.
    pub steps_saved: usize,
}

/// Greedy delta debugging (ddmin-lite): repeatedly removes single fault
/// elements from the schedule while the trial still convicts, returning
/// the locally minimal schedule. A convicting drop-fault schedule
/// typically shrinks to the single dropped-message injection.
///
/// This is the post-hoc reference path (full run + O(n²) trace re-walk
/// per candidate); [`shrink_report`] finds the same minimal schedule with
/// early-abort monitored candidates and reports the cost saved.
pub fn shrink(scenario: &Scenario, trial: &Trial, sup: SupervisorOptions) -> FaultSchedule {
    let mut current = trial.schedule.clone();
    loop {
        let mut progressed = false;
        for i in 0..current.len() {
            let candidate = Trial {
                schedule: current.without(i),
                ..trial.clone()
            };
            if !run_trial(scenario, &candidate, sup).1.is_conformant() {
                current = candidate.schedule;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// [`shrink`] with every candidate run under the early-abort online
/// monitor: a smoothness-violating candidate halts at the convicting
/// step (amortized O(1) certification, no post-hoc re-walk), so noisy
/// schedules shrink in a fraction of the step budget. The minimal
/// schedule is identical to the post-hoc path's — the monitored verdict
/// equals the post-hoc verdict on every run (differential suite), and a
/// run the monitor aborts is convicted by the post-hoc check too (the
/// violating prefix pair is already in the trace and smoothness never
/// heals).
pub fn shrink_report(scenario: &Scenario, trial: &Trial, sup: SupervisorOptions) -> ShrinkResult {
    let mut current = trial.schedule.clone();
    let mut trials_run = 0;
    let mut steps_saved = 0;
    loop {
        let mut progressed = false;
        for i in 0..current.len() {
            let candidate = Trial {
                schedule: current.without(i),
                ..trial.clone()
            };
            let (report, conf) =
                run_trial_monitored(scenario, &candidate, sup, MonitorPolicy::AbortOnViolation);
            trials_run += 1;
            if matches!(report.status, RunStatus::MonitorAborted { .. }) {
                steps_saved += scenario.max_steps.saturating_sub(report.steps);
            }
            if !conf.is_conformant() {
                current = candidate.schedule;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return ShrinkResult {
                minimal: current,
                trials_run,
                steps_saved,
            };
        }
    }
}

/// Samples one fault schedule over the scenario's processes and channels.
fn sample_schedule(
    rng: &mut StdRng,
    n_procs: usize,
    channels: &[eqp_trace::Chan],
    max_steps: usize,
    opts: &ChaosOptions,
) -> FaultSchedule {
    let mut schedule = FaultSchedule::none();
    if n_procs > 0 {
        let n_crashes = rng.random_range(0..opts.max_crashes + 1);
        for _ in 0..n_crashes {
            schedule.crashes.push(CrashPoint {
                process: rng.random_range(0..n_procs),
                at_step: rng.random_range(1..(max_steps / 2).max(2)),
            });
        }
    }
    if !channels.is_empty() {
        let n_links = rng.random_range(0..opts.max_link_faults + 1);
        for _ in 0..n_links {
            let chan = channels[rng.random_range(0..channels.len())];
            let fault = match rng.random_range(0..4u32) {
                0 => Fault::Delay {
                    slack: rng.random_range(1..4usize),
                },
                1 => Fault::Reorder {
                    window: rng.random_range(2..5usize),
                    seed: rng.next_u64(),
                },
                2 => Fault::Duplicate {
                    period: rng.random_range(1..4usize),
                },
                _ => Fault::Drop {
                    period: rng.random_range(1..4usize),
                },
            };
            schedule.links.push(LinkFaultSpec { chan, fault });
        }
    }
    schedule
}

/// Samples one full trial.
fn sample_trial(
    rng: &mut StdRng,
    n_procs: usize,
    channels: &[eqp_trace::Chan],
    max_steps: usize,
    opts: &ChaosOptions,
) -> Trial {
    let net_seed = rng.next_u64();
    let scheduler = match rng.random_range(0..3u32) {
        0 => SchedulerChoice::RoundRobin,
        1 => SchedulerChoice::Random(rng.next_u64()),
        _ => SchedulerChoice::Adversarial(rng.next_u64()),
    };
    let schedule = sample_schedule(rng, n_procs, channels, max_steps, opts);
    Trial {
        net_seed,
        scheduler,
        schedule,
    }
}

/// Whether a run's outcome counts as benign for invariant purposes: the
/// schedule injected only history-preserving perturbations *and* the
/// supervisor actually kept up (an escalated or budget-cut-mid-recovery
/// run legitimately loses history even under a benign schedule). With
/// reliable-wrapped channels, any fault on a protected channel is also
/// benign — ARQ masks it — unless the run actually exhausted a retry
/// budget, which legitimately abandons history.
fn counts_as_benign(scenario: &Scenario, trial: &Trial, status: &RunStatus) -> bool {
    trial
        .schedule
        .links
        .iter()
        .all(|l| l.fault.is_benign() || scenario.protect.contains(&l.chan))
        && !matches!(
            status,
            RunStatus::Escalated { .. }
                | RunStatus::BudgetExhaustedDuringRecovery
                | RunStatus::ReliabilityExhausted { .. }
        )
}

/// Runs a seeded chaos storm against the scenario: samples
/// [`ChaosOptions::trials`] trials, classifies each through the
/// conformance bridge, verifies reproducibility, and shrinks every
/// conviction to a minimal reproducer.
pub fn storm(scenario: &Scenario, opts: &ChaosOptions) -> ChaosReport {
    let probe = scenario.build(opts.seed);
    let n_procs = probe.len();
    let channels = probe.channels();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut conformant = 0;
    let mut convictions = Vec::new();
    for _ in 0..opts.trials {
        let trial = sample_trial(&mut rng, n_procs, &channels, scenario.max_steps, opts);
        let (report, conf) = run_trial(scenario, &trial, opts.supervisor);
        let benign_run = counts_as_benign(scenario, &trial, &report.status);
        if conf.is_conformant() {
            conformant += 1;
            continue;
        }
        // reproducibility: the identical trial must reproduce the verdict
        let (report2, conf2) = run_trial(scenario, &trial, opts.supervisor);
        let reproducible = conf2.verdict == conf.verdict && report2.trace == report.trace;
        // shrink to a minimal reproducer (early-abort monitored
        // candidates — same minimum, fraction of the step budget), then
        // characterize it
        let minimal = shrink_report(scenario, &trial, opts.supervisor).minimal;
        let min_trial = Trial {
            schedule: minimal.clone(),
            ..trial.clone()
        };
        let (min_report, min_conf) = run_trial(scenario, &min_trial, opts.supervisor);
        // an empty minimal schedule means removal-to-nothing still
        // convicted: the scenario fails fault-free — unshrinkable
        let shrinkable = !minimal.is_empty();
        let equation = min_conf
            .failing_component()
            .and_then(|k| min_conf.component_equation(k))
            .map(str::to_owned);
        convictions.push(Conviction {
            trial,
            minimal,
            verdict: min_conf.verdict.clone(),
            equation,
            fault_log: min_report.fault_log().to_vec(),
            status: min_report.status.clone(),
            benign: benign_run,
            reproducible,
            shrinkable,
        });
    }
    ChaosReport {
        scenario: scenario.name().to_owned(),
        trials: opts.trials,
        conformant,
        convictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs::{Apply, Source};
    use eqp_seqfn::paper::ch;
    use eqp_seqfn::SeqExpr;
    use eqp_trace::{Chan, Value};

    fn c() -> Chan {
        Chan::new(0)
    }
    fn d() -> Chan {
        Chan::new(1)
    }

    /// The doubling pipeline: d = 2·c, c = 1 2 3.
    fn scenario() -> Scenario {
        Scenario::new(
            "double-pipeline",
            10_000,
            |_seed| {
                let mut net = Network::new();
                net.add(Source::new(
                    "env",
                    c(),
                    [Value::Int(1), Value::Int(2), Value::Int(3)],
                ));
                net.add(Apply::int_affine("double", c(), d(), 2, 0));
                net
            },
            || {
                Description::new("double-pipeline")
                    .equation(ch(c()), SeqExpr::const_ints([1, 2, 3]))
                    .equation(ch(d()), SeqExpr::affine(2, 0, ch(c())))
            },
        )
    }

    #[test]
    fn clean_trial_is_conformant() {
        let s = scenario();
        let trial = Trial {
            net_seed: 1,
            scheduler: SchedulerChoice::RoundRobin,
            schedule: FaultSchedule::none(),
        };
        let (_, conf) = run_trial(&s, &trial, SupervisorOptions::one_for_one());
        assert_eq!(conf.verdict, Verdict::SmoothSolution);
    }

    #[test]
    fn drop_fault_shrinks_to_single_event_reproducer() {
        // A noisy schedule — a benign delay, a supervised crash, and one
        // drop — must shrink to the drop alone.
        let s = scenario();
        let trial = Trial {
            net_seed: 7,
            scheduler: SchedulerChoice::RoundRobin,
            schedule: FaultSchedule {
                crashes: vec![CrashPoint {
                    process: 1,
                    at_step: 2,
                }],
                links: vec![
                    LinkFaultSpec {
                        chan: d(),
                        fault: Fault::Delay { slack: 1 },
                    },
                    LinkFaultSpec {
                        chan: c(),
                        fault: Fault::Drop { period: 2 },
                    },
                ],
            },
        };
        let sup = SupervisorOptions::one_for_one();
        let (_, conf) = run_trial(&s, &trial, sup);
        assert!(!conf.is_conformant(), "the drop convicts");
        let minimal = shrink(&s, &trial, sup);
        assert_eq!(minimal.len(), 1, "shrinks to a single fault: {minimal}");
        assert!(minimal.crashes.is_empty());
        assert_eq!(
            minimal.links[0].fault,
            Fault::Drop { period: 2 },
            "the surviving element is the drop"
        );
    }

    #[test]
    fn monitored_shrink_finds_the_same_minimum_and_saves_steps() {
        let s = scenario();
        let trial = Trial {
            net_seed: 7,
            scheduler: SchedulerChoice::RoundRobin,
            schedule: FaultSchedule {
                crashes: vec![CrashPoint {
                    process: 1,
                    at_step: 2,
                }],
                links: vec![
                    LinkFaultSpec {
                        chan: d(),
                        fault: Fault::Delay { slack: 1 },
                    },
                    LinkFaultSpec {
                        chan: c(),
                        fault: Fault::Drop { period: 2 },
                    },
                ],
            },
        };
        let sup = SupervisorOptions::one_for_one();
        let posthoc = shrink(&s, &trial, sup);
        let monitored = shrink_report(&s, &trial, sup);
        assert_eq!(
            monitored.minimal, posthoc,
            "early-abort shrink must find the post-hoc minimum"
        );
        assert!(monitored.trials_run > 0);
        // the surviving drop convicts by smoothness ([1,3] ⋢ [1,2,3]), so
        // convicting candidates abort at the violating step instead of
        // exhausting the 10k step budget
        assert!(
            monitored.steps_saved > 0,
            "smoothness-convicting candidates must abort early"
        );
    }

    #[test]
    fn storm_over_clean_scenario_upholds_harness_invariants() {
        let s = scenario();
        let opts = ChaosOptions {
            trials: 12,
            seed: 0xD15EA5E,
            ..ChaosOptions::default()
        };
        let report = storm(&s, &opts);
        assert_eq!(report.trials, 12);
        assert!(report.harness_ok(), "harness invariants hold:\n{report}");
        // with drops and duplicates in the fault space, some trials convict
        for conviction in &report.convictions {
            assert!(!conviction.minimal.is_empty());
            assert!(conviction.reproducible);
            assert!(!conviction.benign);
        }
        assert!(report.to_string().contains("chaos(`double-pipeline`)"));
    }
}
