//! Schedulers: the external nondeterminism of a network run.
//!
//! A scheduler orders the processes within each round. Kahn's determinism
//! result says the *final* channel histories of a deterministic network do
//! not depend on this order; for nondeterministic networks different
//! schedules realize different smooth solutions. The test suites use all
//! three schedulers to cover the space.
//!
//! Bounded channels ([`RunOptions::channel_capacity`](crate::RunOptions))
//! compose with every scheduler as a further *restriction* of it: a
//! process whose send would overflow a full channel is skipped for the
//! round (its step rolls back transactionally) and is re-offered once the
//! consumer drains credit. Since this only removes interleavings that
//! Kahn's result already proves irrelevant to channel histories, bounded
//! runs certify identically to unbounded ones — the invariance is checked
//! wholesale in `tests/kahn_determinism_props.rs`.

use crate::snapshot::StateCell;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Orders process indices for one scheduling round.
pub trait Scheduler {
    /// Returns the order in which the `n` processes should be offered a
    /// step this round.
    fn round(&mut self, n: usize) -> Vec<usize>;

    /// Diagnostic name.
    fn name(&self) -> &str {
        "<scheduler>"
    }

    /// Captures the scheduler's mutable state for a
    /// [`Checkpoint`](crate::snapshot::Checkpoint). The default `None`
    /// marks the scheduler as unsupported by whole-run resume (supervised
    /// recovery of individual processes does not need it). All three
    /// built-in schedulers implement it.
    fn snapshot(&self) -> Option<StateCell> {
        None
    }

    /// Restores state captured by [`snapshot`](Scheduler::snapshot) on an
    /// identically constructed scheduler. Returns `false` on shape
    /// mismatch (or if unsupported, the default).
    fn restore(&mut self, state: &StateCell) -> bool {
        let _ = state;
        false
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn round(&mut self, n: usize) -> Vec<usize> {
        (**self).round(n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn snapshot(&self) -> Option<StateCell> {
        (**self).snapshot()
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        (**self).restore(state)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn round(&mut self, n: usize) -> Vec<usize> {
        (**self).round(n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn snapshot(&self) -> Option<StateCell> {
        (**self).snapshot()
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        (**self).restore(state)
    }
}

/// Fixed round-robin order `0, 1, …, n-1`, rotating the starting point
/// each round so no process is permanently favored.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    offset: usize,
}

impl RoundRobin {
    /// Creates a rotating round-robin scheduler.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn round(&mut self, n: usize) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let start = self.offset % n;
        self.offset = self.offset.wrapping_add(1);
        (0..n).map(|i| (start + i) % n).collect()
    }

    fn name(&self) -> &str {
        "round-robin"
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Nat(self.offset as u64))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_nat() {
            Some(n) => {
                self.offset = n as usize;
                true
            }
            None => false,
        }
    }
}

/// Uniformly random permutation each round, from a fixed seed
/// (reproducible runs).
#[derive(Debug)]
pub struct RandomSched {
    rng: StdRng,
}

impl RandomSched {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> RandomSched {
        RandomSched {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomSched {
    fn round(&mut self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut self.rng);
        order
    }

    fn name(&self) -> &str {
        "random"
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::Rng(self.rng.clone()))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        match state.as_rng() {
            Some(r) => {
                self.rng = r.clone();
                true
            }
            None => false,
        }
    }
}

/// An adversarial scheduler: repeatedly favors a single victim ordering for
/// long bursts before switching, maximizing transient starvation. Kahn
/// quiescence is scheduler-independent, so even this schedule must land on
/// a smooth solution — the tests rely on that.
#[derive(Debug)]
pub struct Adversarial {
    rng: StdRng,
    burst_left: usize,
    order: Vec<usize>,
}

impl Adversarial {
    /// Creates a seeded adversarial scheduler.
    pub fn new(seed: u64) -> Adversarial {
        Adversarial {
            rng: StdRng::seed_from_u64(seed),
            burst_left: 0,
            order: Vec::new(),
        }
    }
}

impl Scheduler for Adversarial {
    fn round(&mut self, n: usize) -> Vec<usize> {
        if self.burst_left == 0 || self.order.len() != n {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut self.rng);
            self.order = order;
            self.burst_left = 1 + (self.rng.random_range(0..16usize));
        }
        self.burst_left -= 1;
        self.order.clone()
    }

    fn name(&self) -> &str {
        "adversarial"
    }

    fn snapshot(&self) -> Option<StateCell> {
        Some(StateCell::List(vec![
            StateCell::Rng(self.rng.clone()),
            StateCell::Nat(self.burst_left as u64),
            StateCell::Nats(self.order.iter().map(|&i| i as u64).collect()),
        ]))
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        let Some([rng, burst, order]) = state.as_list().and_then(|l| <&[_; 3]>::try_from(l).ok())
        else {
            return false;
        };
        let (Some(rng), Some(burst), Some(order)) = (rng.as_rng(), burst.as_nat(), order.as_nats())
        else {
            return false;
        };
        self.rng = rng.clone();
        self.burst_left = burst as usize;
        self.order = order.iter().map(|&i| i as usize).collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::new();
        assert_eq!(s.round(3), vec![0, 1, 2]);
        assert_eq!(s.round(3), vec![1, 2, 0]);
        assert_eq!(s.round(3), vec![2, 0, 1]);
        assert_eq!(s.round(0), Vec::<usize>::new());
        assert_eq!(s.name(), "round-robin");
    }

    #[test]
    fn random_is_permutation() {
        let mut s = RandomSched::new(42);
        for _ in 0..10 {
            let mut r = s.round(5);
            r.sort_unstable();
            assert_eq!(r, vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(s.name(), "random");
    }

    #[test]
    fn random_is_reproducible() {
        let a: Vec<Vec<usize>> = {
            let mut s = RandomSched::new(7);
            (0..5).map(|_| s.round(4)).collect()
        };
        let b: Vec<Vec<usize>> = {
            let mut s = RandomSched::new(7);
            (0..5).map(|_| s.round(4)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_schedule() {
        // each scheduler, snapshotted mid-stream and restored into a
        // freshly constructed twin, continues with identical rounds
        fn roundtrip<S: Scheduler>(mut live: S, mut fresh: S) {
            for _ in 0..7 {
                let _ = live.round(5);
            }
            let cell = live.snapshot().expect("built-in schedulers are hooked");
            assert!(fresh.restore(&cell));
            for _ in 0..10 {
                assert_eq!(fresh.round(5), live.round(5));
            }
        }
        roundtrip(RoundRobin::new(), RoundRobin::new());
        roundtrip(RandomSched::new(11), RandomSched::new(11));
        roundtrip(Adversarial::new(4), Adversarial::new(4));
        // shape mismatches are rejected, not mis-applied
        let mut rr = RoundRobin::new();
        assert!(!rr.restore(&StateCell::Flag(true)));
    }

    #[test]
    fn adversarial_bursts_are_permutations() {
        let mut s = Adversarial::new(3);
        for _ in 0..40 {
            let mut r = s.round(4);
            r.sort_unstable();
            assert_eq!(r, vec![0, 1, 2, 3]);
        }
        assert_eq!(s.name(), "adversarial");
    }
}
