//! Online incremental conformance monitoring: amortized O(1) per-event
//! certification of the smoothness condition.
//!
//! The post-hoc bridge in [`crate::conformance`] re-walks every one-step
//! prefix pair of the *final* trace and fully re-evaluates `f(v)`/`g(u)`
//! each time — O(n²) in trace length. But the smoothness condition
//! `∀ u pre v :: f(v) ⊑ g(u)` is exactly a per-step invariant: each new
//! event extends `u` to `v` by one, so a monitor that keeps *resumable*
//! evaluator states for both sides of every component equation
//! ([`eqp_seqfn::CompiledSideEval`], the register machine over the fused
//! IR of [`eqp_seqfn::compile`]) can check the new pair by freezing `g`'s
//! output length, stepping both sides one event, and comparing only the
//! freshly appended positions — amortized O(1) per event. The compiled
//! channel masks sharpen this further: a pair whose `f` side provably
//! ignores an event skips the check outright (sound once `f(ε) ⊑ g(ε)` is
//! established — see `PairState::base_ok`). The limit condition
//! `f(t) = g(t)` is certified once at quiescence from the final states,
//! so no prefix is ever re-walked.
//!
//! Sides without an incremental hook (infinite constants, hookless
//! `Custom` functions) transparently fall back to full re-evaluation per
//! event, mirroring `delta.rs` — correctness never depends on the fast
//! path being available.
//!
//! The monitor produces the *same* [`SmoothReport`] / [`Conformance`] /
//! [`Verdict`] as the post-hoc path: violations are recorded in the same
//! `(u, v)`-pair-then-component order as [`eqp_core::diagnose`], and the
//! final verdict is derived by the same shared function
//! (`conformance::verdict_from_report`). The differential suite
//! `tests/monitor_equivalence.rs` pins this equivalence across the whole
//! zoo.

use crate::conformance::{verdict_from_report, Conformance, Verdict};
use crate::report::RunStatus;
use eqp_core::diagnose::{LimitVerdict, SmoothReport, SmoothnessViolation};
use eqp_core::Description;
use eqp_seqfn::compile::{batch_advance, step_check};
use eqp_seqfn::{CompiledExpr, CompiledSideEval};
use eqp_trace::{ChanSet, Event, Seq, Trace};

/// What the engine does when the monitor observes a smoothness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorPolicy {
    /// Keep running; the violation is reported in the final
    /// [`Conformance`] exactly as the post-hoc check would.
    #[default]
    Observe,
    /// Halt the run at the violating step with
    /// [`RunStatus::MonitorAborted`] naming the convicted component
    /// equation — fault-injection and chaos trials stop at the offending
    /// event instead of running to the step bound and re-checking.
    AbortOnViolation,
}

/// Resumable evaluator pair for one component equation `f_k ⟸ g_k`,
/// running on the compiled IR ([`eqp_seqfn::compile`]).
#[derive(Debug, Clone)]
struct PairState {
    f: CompiledSideEval,
    g: CompiledSideEval,
    /// Positions of `f`'s output already verified against `g`'s — the
    /// amortization frontier of the incremental fast path.
    verified: usize,
    /// `f(ε) ⊑ g(ε)`, established once at construction. This is the base
    /// case of the skip argument: when it holds and `f` provably ignores
    /// an event (compiled channel mask), the new check `f(u·e) ⊑ g(u)`
    /// collapses to the already-established `f(u) ⊑ g(u)` — so the pair
    /// can skip freezing and checking entirely (stepping `g` only if `g`
    /// reads the event). When it does *not* hold, nothing is ever skipped:
    /// the very first check on a doubly-foreign event is exactly
    /// `f(ε) ⊑ g(ε)` and must be allowed to fail.
    base_ok: bool,
}

impl PairState {
    fn new(f: &CompiledExpr, g: &CompiledExpr) -> PairState {
        let f = CompiledSideEval::new(f);
        let g = CompiledSideEval::new(g);
        // `⊑` is prefix order, so on incremental sides the base case is a
        // slice compare on the bottom outputs — no `Seq` materialization.
        let base_ok = match (f.delta_out(), g.delta_out()) {
            (Some(fo), Some(go)) => fo.len() <= go.len() && *fo == go[..fo.len()],
            _ => f.value().leq(&g.value()),
        };
        PairState {
            f,
            g,
            verified: 0,
            base_ok,
        }
    }
}

/// An online smoothness monitor over one [`Description`].
///
/// Feed it every committed send via [`feed`](SmoothnessMonitor::feed)
/// (events outside the visible channel set are ignored, performing the
/// same projection as the post-hoc checker, without building a second
/// trace), then derive the final [`Conformance`] from the run status via
/// [`finish`](SmoothnessMonitor::finish).
///
/// The monitor is `Clone` so [`crate::snapshot::Checkpoint`] can carry it:
/// capturing and restoring mid-run resumes certification without
/// re-feeding the prefix.
#[derive(Debug, Clone)]
pub struct SmoothnessMonitor {
    /// Description name, owned — reports carry it without holding the
    /// whole `Description`.
    name: String,
    /// Pre-rendered `f ⟸ g` strings (cached on the description), so
    /// `finish` never formats.
    equations: Vec<String>,
    /// The compiled equation sides (cheap `Arc` handles) — kept so a dirty
    /// fused batch can rebuild fresh evaluators and replay exactly.
    sides: Vec<(CompiledExpr, CompiledExpr)>,
    keep: ChanSet,
    policy: MonitorPolicy,
    pairs: Vec<PairState>,
    events: Vec<Event>,
    violation: Option<SmoothnessViolation>,
}

impl SmoothnessMonitor {
    /// Builds a monitor for `desc`. `visible` overrides the projection
    /// channel set (default: the description's own channels, matching
    /// [`crate::conformance::ConformanceOptions`]).
    pub fn new(desc: &Description, visible: Option<ChanSet>, policy: MonitorPolicy) -> Self {
        let keep = visible.unwrap_or_else(|| desc.channels());
        let sides: Vec<(CompiledExpr, CompiledExpr)> = desc
            .lhs_compiled()
            .iter()
            .cloned()
            .zip(desc.rhs_compiled().iter().cloned())
            .collect();
        let pairs = sides.iter().map(|(f, g)| PairState::new(f, g)).collect();
        SmoothnessMonitor {
            name: desc.name().to_owned(),
            equations: desc.equations_rendered().to_vec(),
            sides,
            keep,
            policy,
            pairs,
            events: Vec::new(),
            violation: None,
        }
    }

    /// The abort policy this monitor was built with.
    pub fn policy(&self) -> MonitorPolicy {
        self.policy
    }

    /// Number of events observed so far (after projection).
    pub fn observed(&self) -> usize {
        self.events.len()
    }

    /// True iff every side of every component equation is running on the
    /// incremental fast path (no full re-evaluation per event).
    pub fn fully_incremental(&self) -> bool {
        self.pairs
            .iter()
            .all(|p| p.f.is_incremental() && p.g.is_incremental())
    }

    /// The first smoothness violation's component index, if one has been
    /// observed.
    pub fn violation_component(&self) -> Option<usize> {
        self.violation.as_ref().map(|v| v.component)
    }

    /// Observes one committed send.
    ///
    /// Returns `Some(component)` exactly when this event produced the
    /// *first* smoothness violation and the policy is
    /// [`MonitorPolicy::AbortOnViolation`] — the engine's signal to halt.
    /// Events on channels outside the visible set are ignored. After a
    /// violation the monitor keeps stepping its evaluator states (the
    /// limit condition still needs the full trace) but checks nothing
    /// further, mirroring `diagnose`'s first-violation semantics.
    pub fn feed(&mut self, ev: Event) -> Option<usize> {
        if !self.keep.contains(ev.chan) {
            return None;
        }
        let at = self.events.len();
        self.events.push(ev);
        // After the first violation the monitor only keeps its states
        // current (the limit condition still needs the full trace),
        // mirroring `diagnose`'s first-violation semantics.
        let checking = self.violation.is_none();
        // (component, f(v), frozen g(u)) of this event's conviction, if
        // any — the lowest component index wins, matching `diagnose`.
        let mut convicted: Option<(usize, Seq, Seq)> = None;
        for (k, pair) in self.pairs.iter_mut().enumerate() {
            if pair.base_ok && !pair.f.reads(ev.chan) {
                // `f` provably appends nothing on this event, so the
                // pair's check `f(u·e) ⊑ g(u)` collapses to the invariant
                // `f(u) ⊑ g(u)` already established (base case: `base_ok`;
                // step case: `g`'s output only grows). Keep `g` current
                // and move on — the skipped check would provably pass, so
                // first-violation ordering is untouched.
                if pair.g.reads(ev.chan) {
                    pair.g.step(ev);
                }
                continue;
            }
            let frozen = pair.g.freeze();
            pair.f.step(ev);
            pair.g.step(ev);
            if checking
                && !step_check(&pair.f, &pair.g, &frozen, &mut pair.verified)
                && convicted.is_none()
            {
                convicted = Some((k, pair.f.value(), pair.g.frozen_value(&frozen)));
            }
        }
        let (k, lhs_v, rhs_u) = convicted?;
        self.violation = Some(SmoothnessViolation {
            component: k,
            u: Trace::finite(self.events[..at].to_vec()),
            v: Trace::finite(self.events[..=at].to_vec()),
            lhs_v,
            rhs_u,
        });
        match self.policy {
            MonitorPolicy::AbortOnViolation => Some(k),
            MonitorPolicy::Observe => None,
        }
    }

    /// Observes a batch of committed sends in order, semantically
    /// identical to calling [`feed`](SmoothnessMonitor::feed) per event:
    /// the first violation is selected by minimal `(event index,
    /// component index)`.
    ///
    /// Large fully-incremental batches (the engine's lazy Observe drain)
    /// take a fused fast path: each pair steps the whole batch in one
    /// tight loop with only the O(1) *length* half of the per-step check
    /// inline, and the value half — comparing `f`'s appended tail against
    /// `g`'s output — deferred to a single slice compare per pair. Both
    /// outputs are append-only, so a position compares equal at the end
    /// iff it compared equal the step it appeared: the deferred pass
    /// accepts exactly the batches the per-event loop accepts. Any pair
    /// that looks dirty triggers an exact per-event replay from a
    /// pre-batch snapshot to recover the precise first violation.
    pub fn feed_batch(&mut self, evs: &[Event]) -> Option<usize> {
        if evs.len() >= 8 && self.fully_incremental() {
            return self.feed_batch_fused(evs);
        }
        let mut aborted = None;
        for &ev in evs {
            if let Some(k) = self.feed(ev) {
                aborted.get_or_insert(k);
            }
        }
        aborted
    }

    /// The fused batch drain. Requires every side on the incremental
    /// path (`delta_out` available).
    fn feed_batch_fused(&mut self, evs: &[Event]) -> Option<usize> {
        let start = self.events.len();
        self.events.reserve(evs.len());
        for &ev in evs {
            if self.keep.contains(ev.chan) {
                self.events.push(ev);
            }
        }
        if self.events.len() == start {
            return None;
        }
        let checking = self.violation.is_none();
        let new = &self.events[start..];
        let mut clean = true;
        for pair in self.pairs.iter_mut() {
            let lengths_ok = batch_advance(&mut pair.f, &mut pair.g, new);
            if !checking {
                continue;
            }
            let fo = pair.f.delta_out().unwrap_or(&[]);
            let go = pair.g.delta_out().unwrap_or(&[]);
            if lengths_ok
                && fo.len() <= go.len()
                && fo[pair.verified..] == go[pair.verified..fo.len()]
            {
                pair.verified = fo.len();
            } else {
                clean = false;
            }
        }
        if !checking || clean {
            return None;
        }
        // Dirty: rebuild fresh evaluators from the compiled sides and
        // replay the whole observed stream through the exact per-event
        // path — first-violation placement (and the abort signal under
        // AbortOnViolation) comes out exactly as if every event had been
        // fed individually. At most one replay ever runs: after it the
        // violation is recorded and later batches skip checking.
        self.pairs = self
            .sides
            .iter()
            .map(|(f, g)| PairState::new(f, g))
            .collect();
        let all = std::mem::take(&mut self.events);
        let mut aborted = None;
        for &ev in &all {
            if let Some(k) = self.feed(ev) {
                aborted.get_or_insert(k);
            }
        }
        aborted
    }

    /// The diagnostic report over everything observed so far: limit
    /// verdicts straight from the final evaluator states (no re-walk),
    /// the first smoothness violation if any, and the checked depth.
    ///
    /// Identical to `diagnose(desc, &observed_trace, observed_len)` — the
    /// differential suite pins this.
    pub fn report(&self) -> SmoothReport {
        // Build each verdict straight from the evaluator pair — the final
        // values move into the verdict instead of being cloned through an
        // intermediate slice pair.
        let limits = self
            .pairs
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let lhs = p.f.value();
                let rhs = p.g.value();
                LimitVerdict {
                    component: k,
                    holds: lhs == rhs,
                    lhs,
                    rhs,
                }
            })
            .collect();
        SmoothReport {
            description: self.name.clone(),
            limits,
            violation: self.violation.clone(),
            depth: self.events.len(),
        }
    }

    /// Derives the final [`Conformance`] from the run's terminal status,
    /// mirroring [`crate::conformance::check_report`]: quiescent runs are
    /// held to the limit condition, bounded runs are excused, and a
    /// cleanly-passing run whose reliable link exhausted its retry budget
    /// is reported as [`Verdict::Degraded`] naming the link.
    pub fn finish(&self, status: &RunStatus) -> Conformance {
        if let RunStatus::ReliabilityExhausted { link } = status {
            let mut conf = self.conformance(false);
            if conf.verdict == Verdict::SmoothPrefix {
                conf.verdict = Verdict::Degraded { link: link.clone() };
            }
            return conf;
        }
        self.conformance(status.is_quiescent())
    }

    fn conformance(&self, quiescent: bool) -> Conformance {
        let report = self.report();
        let verdict = verdict_from_report(&report, quiescent);
        Conformance {
            description: self.name.clone(),
            verdict,
            report,
            quiescent,
            checked: Trace::finite(self.events.clone()),
            equations: self.equations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{check_trace, ConformanceOptions};
    use eqp_seqfn::paper::{ch, even, odd};
    use eqp_trace::Chan;

    fn b() -> Chan {
        Chan::new(0)
    }
    fn c() -> Chan {
        Chan::new(1)
    }
    fn d() -> Chan {
        Chan::new(2)
    }

    fn dfm() -> Description {
        Description::new("dfm")
            .equation(even(ch(d())), ch(b()))
            .equation(odd(ch(d())), ch(c()))
    }

    fn feed_all(m: &mut SmoothnessMonitor, events: &[Event]) -> Option<usize> {
        let mut aborted = None;
        for &ev in events {
            if let Some(k) = m.feed(ev) {
                aborted.get_or_insert(k);
            }
        }
        aborted
    }

    fn assert_matches_posthoc(events: Vec<Event>, quiescent: bool) {
        let desc = dfm();
        let mut m = SmoothnessMonitor::new(&desc, None, MonitorPolicy::Observe);
        feed_all(&mut m, &events);
        let online = m.conformance(quiescent);
        let posthoc = check_trace(
            &desc,
            &Trace::finite(events),
            quiescent,
            &ConformanceOptions::default(),
        );
        assert_eq!(online.verdict, posthoc.verdict);
        assert_eq!(online.report, posthoc.report);
        assert_eq!(online.checked, posthoc.checked);
    }

    #[test]
    fn solution_prefix_and_violations_match_posthoc() {
        let good = vec![
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
            Event::int(d(), 21),
        ];
        assert_matches_posthoc(good.clone(), true);
        assert_matches_posthoc(good[..3].to_vec(), false);
        // quiescent but incomplete: limit violation
        assert_matches_posthoc(good[..3].to_vec(), true);
        // output before any justifying input: smoothness violation
        assert_matches_posthoc(vec![Event::int(d(), 10), Event::int(b(), 10)], false);
    }

    #[test]
    fn projection_ignores_foreign_channels() {
        let desc = dfm();
        let mut m = SmoothnessMonitor::new(&desc, None, MonitorPolicy::Observe);
        assert_eq!(m.feed(Event::int(Chan::new(99), 7)), None);
        assert_eq!(m.observed(), 0);
    }

    #[test]
    fn abort_policy_convicts_at_the_violating_event() {
        let desc = dfm();
        let mut m = SmoothnessMonitor::new(&desc, None, MonitorPolicy::AbortOnViolation);
        assert_eq!(m.feed(Event::int(b(), 10)), None);
        // d echoes an even value no input justified — convicted
        // immediately, on the even-component (index 0), same as
        // diagnose's ordering.
        assert_eq!(m.feed(Event::int(d(), 98)), Some(0));
        assert_eq!(m.violation_component(), Some(0));
        // observe policy stays quiet on the same stream
        let mut obs = SmoothnessMonitor::new(&desc, None, MonitorPolicy::Observe);
        assert_eq!(
            feed_all(&mut obs, &[Event::int(b(), 10), Event::int(d(), 98)]),
            None
        );
        assert_eq!(obs.violation_component(), Some(0));
    }

    #[test]
    fn finish_maps_statuses_like_check_report() {
        let desc = dfm();
        let good = [
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
            Event::int(d(), 21),
        ];
        let mut m = SmoothnessMonitor::new(&desc, None, MonitorPolicy::Observe);
        feed_all(&mut m, &good);
        assert_eq!(
            m.finish(&RunStatus::Quiescent).verdict,
            Verdict::SmoothSolution
        );
        assert_eq!(
            m.finish(&RunStatus::BudgetExhausted).verdict,
            Verdict::SmoothPrefix
        );
        assert_eq!(
            m.finish(&RunStatus::ReliabilityExhausted {
                link: "arq@ch2".into()
            })
            .verdict,
            Verdict::Degraded {
                link: "arq@ch2".into()
            }
        );
    }

    #[test]
    fn clone_resumes_certification_identically() {
        // snapshot mid-stream, keep feeding both: identical conformance.
        let desc = dfm();
        let events = [
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
            Event::int(d(), 21),
        ];
        let mut m = SmoothnessMonitor::new(&desc, None, MonitorPolicy::Observe);
        feed_all(&mut m, &events[..2]);
        let mut resumed = m.clone();
        feed_all(&mut m, &events[2..]);
        feed_all(&mut resumed, &events[2..]);
        let a = m.conformance(true);
        let b = resumed.conformance(true);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.report, b.report);
        assert_eq!(a.checked, b.checked);
    }

    #[test]
    fn dfm_runs_fully_incremental() {
        let m = SmoothnessMonitor::new(&dfm(), None, MonitorPolicy::Observe);
        assert!(m.fully_incremental());
    }
}
