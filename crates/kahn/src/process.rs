//! The process trait and the step context through which processes touch
//! their channels.

use crate::report::Telemetry;
use eqp_trace::{Chan, Event, Value};
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::{HashMap, VecDeque};

/// What a process accomplished in one scheduled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The process consumed input and/or produced output.
    Progress,
    /// The process cannot currently act (waiting for input, or done).
    Idle,
}

/// The channel interface handed to a process during a step: FIFO reads on
/// the input side, recorded sends on the output side, and a seeded RNG for
/// internal nondeterministic choices.
///
/// Reads ([`pop`](StepCtx::pop)/[`peek`](StepCtx::peek)) and sends are
/// also metered by the run's telemetry: the first reader of a channel is
/// recorded as its consumer, and a second distinct reader is reported as
/// a [`ConsumerViolation`](crate::report::ConsumerViolation) — the
/// runtime backstop for processes that don't declare
/// [`Process::inputs`].
pub struct StepCtx<'a> {
    pub(crate) queues: &'a mut HashMap<Chan, VecDeque<Value>>,
    pub(crate) trace: &'a mut Vec<Event>,
    pub(crate) rng: &'a mut StdRng,
    /// Telemetry sink; `None` during quiescence probes and in bare test
    /// harnesses.
    pub(crate) telemetry: Option<&'a mut Telemetry>,
    /// Index of the process currently being stepped (for consumer
    /// attribution).
    pub(crate) current: usize,
}

impl StepCtx<'_> {
    /// Number of messages waiting on `c`.
    pub fn available(&self, c: Chan) -> usize {
        self.queues.get(&c).map_or(0, VecDeque::len)
    }

    /// Looks at the `i`-th waiting message on `c` without consuming it.
    pub fn peek(&mut self, c: Chan, i: usize) -> Option<Value> {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_consumer(c, self.current);
        }
        self.queues.get(&c).and_then(|q| q.get(i)).copied()
    }

    /// Consumes the head message of `c`.
    pub fn pop(&mut self, c: Chan) -> Option<Value> {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_consumer(c, self.current);
        }
        let v = self.queues.get_mut(&c).and_then(VecDeque::pop_front);
        if v.is_some() {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_receive(c);
            }
        }
        v
    }

    /// Sends `v` along `c`: appended to the global trace and to `c`'s
    /// queue for its consumer.
    pub fn send(&mut self, c: Chan, v: Value) {
        self.trace.push(Event::new(c, v));
        let q = self.queues.entry(c).or_default();
        q.push_back(v);
        let depth = q.len();
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_send(c, depth);
        }
    }

    /// A nondeterministic coin flip (seeded at the network level, so runs
    /// are reproducible).
    pub fn flip(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }

    /// A nondeterministic choice in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "choose(0)");
        self.rng.random_range(0..n)
    }
}

/// A message-communicating process: a state machine stepped by the
/// scheduler.
///
/// `step` should perform a bounded amount of work (typically: consume at
/// most one input and/or emit at most one output) and report whether it
/// made progress; the network detects quiescence when every process
/// reports [`StepResult::Idle`] in a full round.
pub trait Process {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// The channels this process consumes from. Kahn networks require a
    /// single consumer per channel; [`crate::Network::add`] validates the
    /// declarations of all added processes for disjointness, and the
    /// runtime additionally meters actual reads (catching undeclared
    /// second readers). Declared inputs also drive starvation detection
    /// in [`RunReport`](crate::RunReport). The default (empty) opts out
    /// of the static validation — declare inputs wherever possible.
    fn inputs(&self) -> Vec<Chan> {
        Vec::new()
    }

    /// The channels this process sends on (diagnostic only).
    fn outputs(&self) -> Vec<Chan> {
        Vec::new()
    }

    /// Performs one step against the channel context.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (HashMap<Chan, VecDeque<Value>>, Vec<Event>, StdRng) {
        (HashMap::new(), Vec::new(), StdRng::seed_from_u64(7))
    }

    #[test]
    fn send_records_and_queues() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx {
            queues: &mut q,
            trace: &mut t,
            rng: &mut r,
            telemetry: None,
            current: 0,
        };
        let c = Chan::new(0);
        ctx.send(c, Value::Int(1));
        ctx.send(c, Value::Int(2));
        assert_eq!(ctx.available(c), 2);
        assert_eq!(ctx.peek(c, 1), Some(Value::Int(2)));
        assert_eq!(ctx.pop(c), Some(Value::Int(1)));
        assert_eq!(ctx.available(c), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pop_empty_is_none() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx {
            queues: &mut q,
            trace: &mut t,
            rng: &mut r,
            telemetry: None,
            current: 0,
        };
        assert_eq!(ctx.pop(Chan::new(3)), None);
        assert_eq!(ctx.peek(Chan::new(3), 0), None);
        assert_eq!(ctx.available(Chan::new(3)), 0);
    }

    #[test]
    fn rng_choices_in_range() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx {
            queues: &mut q,
            trace: &mut t,
            rng: &mut r,
            telemetry: None,
            current: 0,
        };
        for _ in 0..50 {
            assert!(ctx.choose(3) < 3);
            let _ = ctx.flip();
        }
    }

    #[test]
    fn telemetry_meters_reads_and_detects_second_reader() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut tel = Telemetry::default();
        let c = Chan::new(5);
        {
            let mut ctx = StepCtx {
                queues: &mut q,
                trace: &mut t,
                rng: &mut r,
                telemetry: Some(&mut tel),
                current: 0,
            };
            ctx.send(c, Value::Int(1));
            ctx.send(c, Value::Int(2));
            assert_eq!(ctx.pop(c), Some(Value::Int(1)));
        }
        {
            let mut ctx = StepCtx {
                queues: &mut q,
                trace: &mut t,
                rng: &mut r,
                telemetry: Some(&mut tel),
                current: 1,
            };
            assert_eq!(ctx.pop(c), Some(Value::Int(2)));
            // repeated reads by the same offender stay deduplicated
            assert_eq!(ctx.pop(c), None);
        }
        let counters = &tel.channels[&c];
        assert_eq!(counters.sends, 2);
        assert_eq!(counters.receives, 2);
        assert_eq!(counters.high_water, 2);
        assert_eq!(counters.consumer, Some(0));
        assert_eq!(tel.violations, vec![(c, 0, 1)]);
    }
}
