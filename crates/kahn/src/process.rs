//! The process trait and the step context through which processes touch
//! their channels.

use crate::chanmap::ChanMap;
use crate::faults::{EngineLink, FaultEvent};
use crate::network::OverflowPolicy;
use crate::reliable::ReliableLink;
use crate::report::{ChannelCounters, CounterSnap, Telemetry};
use crate::snapshot::StateCell;
use crate::supervisor::{Journal, Op, Replay};
use eqp_trace::{Chan, Event, Value};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt};
use std::collections::{BTreeSet, VecDeque};

/// What a process accomplished in one scheduled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The process consumed input and/or produced output.
    Progress,
    /// The process cannot currently act (waiting for input, or done).
    Idle,
}

/// The channel interface handed to a process during a step: FIFO reads on
/// the input side, recorded sends on the output side, and a seeded RNG for
/// internal nondeterministic choices.
///
/// Reads ([`pop`](StepCtx::pop)/[`peek`](StepCtx::peek)) and sends are
/// also metered by the run's telemetry: the first reader of a channel is
/// recorded as its consumer, and a second distinct reader is reported as
/// a [`ConsumerViolation`](crate::report::ConsumerViolation) — the
/// runtime backstop for processes that don't declare
/// [`Process::inputs`].
///
/// Under a supervised run ([`crate::supervisor`]) the context journals
/// every observation a process makes (queue depths, peeks, pops, RNG
/// draws) and every send; after a crash the journal is replayed to the
/// restored process so its re-execution is deterministic even though the
/// rest of the network moved on. Engine-interposed faulty links
/// ([`crate::faults::FaultSchedule`]) intercept sends on their channel.
/// None of this machinery is active — or paid for — in bare runs.
pub struct StepCtx<'a> {
    pub(crate) queues: &'a mut ChanMap<VecDeque<Value>>,
    pub(crate) trace: &'a mut Vec<Event>,
    pub(crate) rng: &'a mut StdRng,
    /// Telemetry sink; `None` during quiescence probes and in bare test
    /// harnesses.
    pub(crate) telemetry: Option<&'a mut Telemetry>,
    /// Index of the process currently being stepped (for consumer
    /// attribution).
    pub(crate) current: usize,
    /// Observation journal for the current process (supervised runs
    /// only; `None` while its replay is active).
    pub(crate) journal: Option<&'a mut Journal>,
    /// Replay buffer for the current process — set while it re-executes
    /// its journaled history after a restart.
    pub(crate) replay: Option<&'a mut Replay>,
    /// Engine-interposed faulty links (chaos schedules only).
    pub(crate) links: Option<&'a mut [EngineLink]>,
    /// Engine-level reliable links (ARQ-protected channels) intercepting
    /// sends on their channel.
    pub(crate) reliables: Option<&'a mut [ReliableLink]>,
    /// Bounded-channel flow control (capacity-bounded runs only): the
    /// capacity configuration plus the per-step transaction that lets
    /// the engine roll a blocked step back.
    pub(crate) flow: Option<&'a mut FlowControl>,
    /// Sharded-run send interception ([`crate::shard`]): when set, sends
    /// are collected here instead of being delivered — the coordinator
    /// commits them (trace, queues, telemetry) in canonical epoch order.
    pub(crate) shard_out: Option<&'a mut Vec<(Chan, Value)>>,
    /// Sharded 1-shard (inline) backend: per-channel visibility
    /// watermarks implementing the epoch protocol's bulk-synchronous
    /// delivery rule directly on the canonical queues. Reads see only
    /// the watermarked prefix of each queue; sends append past the
    /// watermark (invisible until the next epoch flush raises it), and
    /// consumer attribution happens only on successful pops — exactly
    /// the threaded commit path's observable behavior.
    pub(crate) visible: Option<&'a mut ChanMap<usize>>,
}

/// Bounded-channel flow control: the run's capacity configuration plus
/// the per-step transaction used to roll a blocked step back (so
/// backpressure is purely a *scheduler restriction* — a blocked step
/// never happened, and is simply retried once credit frees up).
#[derive(Debug)]
pub(crate) struct FlowControl {
    /// Queue capacity applied to every managed channel.
    pub(crate) capacity: usize,
    /// What to do with a send on a full channel.
    pub(crate) policy: OverflowPolicy,
    /// Channels the capacity applies to: every *declared input* of some
    /// process. Channels nobody declares as input (environment-facing
    /// outputs) have no consumer to grant credit and stay unbounded.
    pub(crate) managed: BTreeSet<Chan>,
    /// The in-flight step's transaction.
    pub(crate) txn: FlowTxn,
}

/// Undo log for one step under flow control.
#[derive(Debug, Default)]
pub(crate) struct FlowTxn {
    /// Set when the step hit a full channel under
    /// [`OverflowPolicy::Block`] — the engine will roll the step back.
    pub(crate) blocked: Option<Chan>,
    /// Channels delivered to during the step, in delivery order.
    pub(crate) sends: Vec<Chan>,
    /// Values popped during the step, in pop order.
    pub(crate) pops: Vec<(Chan, Value)>,
    /// Per-channel telemetry meter snapshots saved before the step's
    /// first mutation (`None` = the channel had no counters entry yet).
    /// `Copy` meters only — stamp queues are never touched inside a
    /// transaction (see [`CounterSnap`]), so the save path never
    /// allocates.
    pub(crate) saved: Vec<(Chan, Option<CounterSnap>)>,
}

impl FlowTxn {
    /// Clears the transaction for a fresh step.
    pub(crate) fn begin(&mut self) {
        self.blocked = None;
        self.sends.clear();
        self.pops.clear();
        self.saved.clear();
    }
}

impl<'a> StepCtx<'a> {
    /// A context with no supervision or fault machinery attached (the
    /// bare-run configuration).
    pub(crate) fn bare(
        queues: &'a mut ChanMap<VecDeque<Value>>,
        trace: &'a mut Vec<Event>,
        rng: &'a mut StdRng,
        telemetry: Option<&'a mut Telemetry>,
        current: usize,
    ) -> StepCtx<'a> {
        StepCtx {
            queues,
            trace,
            rng,
            telemetry,
            current,
            journal: None,
            replay: None,
            links: None,
            reliables: None,
            flow: None,
            shard_out: None,
            visible: None,
        }
    }

    /// Saves channel `c`'s telemetry meters into the flow transaction
    /// (first touch only), so a rolled-back step restores them exactly.
    fn flow_save(&mut self, c: Chan) {
        let prev = self
            .telemetry
            .as_deref()
            .and_then(|t| t.channels.get(&c).map(ChannelCounters::snap));
        let Some(f) = self.flow.as_deref_mut() else {
            return;
        };
        if f.txn.saved.iter().any(|&(sc, _)| sc == c) {
            return;
        }
        f.txn.saved.push((c, prev));
    }

    /// Number of messages waiting on `c`.
    ///
    /// Journaled as an observation under supervision: during replay the
    /// recorded depth is served instead of the live one, so a restored
    /// process re-takes exactly the branches it took before the crash.
    pub fn available(&mut self, c: Chan) -> usize {
        if let Some(vis) = self.visible.as_deref() {
            // sharded inline mode: only the previous-epoch prefix counts
            return vis.get(&c).copied().unwrap_or(0);
        }
        if let Some(r) = self.replay.as_deref_mut() {
            if let Some(op) = r.ops.pop_front() {
                match op {
                    Op::Available(rc, n) if rc == c => return n,
                    other => replay_diverged(r, "available", c, &other),
                }
            }
        }
        let n = self.queues.get(&c).map_or(0, VecDeque::len);
        if let Some(j) = self.journal.as_deref_mut() {
            j.ops.push(Op::Available(c, n));
        }
        n
    }

    /// Looks at the `i`-th waiting message on `c` without consuming it.
    pub fn peek(&mut self, c: Chan, i: usize) -> Option<Value> {
        if let Some(vis) = self.visible.as_deref() {
            // sharded inline mode: peeks stop at the watermark and go
            // unmetered, like the threaded workers (whose results carry
            // no peek information back to the commit)
            if vis.get(&c).is_none_or(|&a| i >= a) {
                return None;
            }
            return self.queues.get(&c).and_then(|q| q.get(i)).copied();
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_consumer(c, self.current);
        }
        if let Some(r) = self.replay.as_deref_mut() {
            if let Some(op) = r.ops.pop_front() {
                match op {
                    Op::Peek(rc, ri, v) if rc == c && ri == i => return v,
                    other => replay_diverged(r, "peek", c, &other),
                }
            }
        }
        let v = self.queues.get(&c).and_then(|q| q.get(i)).copied();
        if let Some(j) = self.journal.as_deref_mut() {
            j.ops.push(Op::Peek(c, i, v));
        }
        v
    }

    /// Consumes the head message of `c`.
    pub fn pop(&mut self, c: Chan) -> Option<Value> {
        if let Some(vis) = self.visible.as_deref_mut() {
            // Sharded inline mode: only the flushed prefix is poppable,
            // and — matching the threaded commit path, which meters from
            // the pops workers actually made — consumer attribution
            // happens only on success.
            match vis.get_mut(&c) {
                Some(a) if *a > 0 => *a -= 1,
                _ => return None,
            }
            let v = self.queues.get_mut(&c).and_then(VecDeque::pop_front);
            debug_assert!(v.is_some(), "visibility watermark exceeded the queue");
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_consumer(c, self.current);
                t.note_receive(c);
            }
            return v;
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_consumer(c, self.current);
        }
        if let Some(r) = self.replay.as_deref_mut() {
            if let Some(op) = r.ops.pop_front() {
                match op {
                    Op::Pop(rc, expected) if rc == c => {
                        if expected.is_some() {
                            // the journaled value was re-queued at restart;
                            // consume it again (metering already counted it
                            // the first time around)
                            let live = self.queues.get_mut(&c).and_then(VecDeque::pop_front);
                            if live != expected {
                                replay_diverged(r, "pop", c, &Op::Pop(c, expected));
                                return live;
                            }
                        }
                        return expected;
                    }
                    other => replay_diverged(r, "pop", c, &other),
                }
            }
        }
        let v = self.queues.get_mut(&c).and_then(VecDeque::pop_front);
        if let Some(v) = v {
            if self.flow.is_some() {
                self.flow_save(c);
                self.flow
                    .as_deref_mut()
                    .expect("flow is present")
                    .txn
                    .pops
                    .push((c, v));
            }
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_receive(c);
            }
        }
        if let Some(j) = self.journal.as_deref_mut() {
            j.ops.push(Op::Pop(c, v));
        }
        v
    }

    /// Sends `v` along `c`: appended to the global trace and to `c`'s
    /// queue for its consumer. If a chaos schedule interposes a faulty
    /// link on `c`, the message passes through the link instead (and may
    /// be dropped, duplicated, or buffered for later release).
    pub fn send(&mut self, c: Chan, v: Value) {
        if let Some(r) = self.replay.as_deref_mut() {
            if let Some(op) = r.ops.pop_front() {
                match op {
                    // Re-emitted sends were already delivered (trace, queue
                    // and telemetry) before the crash: suppress.
                    Op::Sent(rc, rv) if rc == c && rv == v => return,
                    other => replay_diverged(r, "send", c, &other),
                }
            }
        }
        if let Some(j) = self.journal.as_deref_mut() {
            j.ops.push(Op::Sent(c, v));
        }
        if let Some(out) = self.shard_out.as_deref_mut() {
            // sharded run: the send commits canonically at the epoch
            // boundary — no local delivery, no local send meter
            out.push((c, v));
            return;
        }
        if let Some(rels) = self.reliables.as_deref_mut() {
            if let Some(link) = rels.iter_mut().find(|l| l.chan() == c) {
                // ARQ-protected channel: the message enters the sender's
                // window/backlog; delivery happens (in order, exactly
                // once) when the engine pumps the link between rounds.
                // With clean media the protocol is the identity, so the
                // link steps aside and the send falls through to the
                // ordinary direct-delivery path below.
                if !link.is_passthrough() {
                    link.on_send(v, self.telemetry.as_deref_mut());
                    return;
                }
            }
        }
        if let Some(links) = self.links.as_deref_mut() {
            if let Some(link) = links.iter_mut().find(|l| l.chan() == c) {
                let (deliveries, event) = link.on_send(v);
                if let (Some(t), Some(e)) = (self.telemetry.as_deref_mut(), event) {
                    t.note_link_fault(c, e);
                }
                for d in deliveries {
                    raw_send(self.queues, self.trace, self.telemetry.as_deref_mut(), c, d);
                }
                return;
            }
        }
        let mut policy_if_full = None;
        if let Some(f) = self.flow.as_deref() {
            if f.txn.blocked.is_some() {
                // The step is already doomed to roll back; suppress
                // further deliveries.
                return;
            }
            if f.managed.contains(&c) && self.queues.get(&c).map_or(0, VecDeque::len) >= f.capacity
            {
                policy_if_full = Some(f.policy);
            }
        }
        match policy_if_full {
            Some(OverflowPolicy::Block) => {
                self.flow
                    .as_deref_mut()
                    .expect("flow is present")
                    .txn
                    .blocked = Some(c);
                return;
            }
            Some(OverflowPolicy::Shed) => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    let _ = t.note_shed(c);
                }
                return;
            }
            None => {}
        }
        if self.flow.is_some() {
            self.flow_save(c);
            self.flow
                .as_deref_mut()
                .expect("flow is present")
                .txn
                .sends
                .push(c);
        }
        raw_send(self.queues, self.trace, self.telemetry.as_deref_mut(), c, v);
    }

    /// A nondeterministic coin flip (seeded at the network level, so runs
    /// are reproducible).
    pub fn flip(&mut self) -> bool {
        JournaledRng { ctx: self }.random_bool(0.5)
    }

    /// A nondeterministic choice in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "choose(0)");
        JournaledRng { ctx: self }.random_range(0..n)
    }

    /// Reports an injected fault event (used by [`crate::FaultyLink`] and
    /// available to custom fault processes) so convicting runs can name
    /// the exact perturbations alongside the violated equation — see
    /// [`RunReport::fault_log`](crate::RunReport::fault_log).
    pub fn note_fault(&mut self, event: FaultEvent) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_proc_fault(self.current, event);
        }
    }

    /// One raw RNG word: served from the replay buffer after a restart,
    /// journaled under supervision, drawn live otherwise.
    fn next_word(&mut self) -> u64 {
        if let Some(r) = self.replay.as_deref_mut() {
            if let Some(op) = r.ops.pop_front() {
                match op {
                    Op::Draw(w) => return w,
                    other => replay_diverged(r, "rng draw", Chan::new(0), &other),
                }
            }
        }
        let w = self.rng.next_u64();
        if let Some(j) = self.journal.as_deref_mut() {
            j.ops.push(Op::Draw(w));
        }
        w
    }
}

/// Delivers `v` on `c` for real: trace event, queue append, telemetry.
pub(crate) fn raw_send(
    queues: &mut ChanMap<VecDeque<Value>>,
    trace: &mut Vec<Event>,
    telemetry: Option<&mut Telemetry>,
    c: Chan,
    v: Value,
) {
    trace.push(Event::new(c, v));
    let q = queues.entry(c).or_default();
    q.push_back(v);
    let depth = q.len();
    if let Some(t) = telemetry {
        t.note_send(c, depth, v);
    }
}

/// Records a replay divergence on `r`: the restored process performed a
/// different operation than its journal records, so it is not
/// deterministic given its observations. The replay is abandoned (the
/// remaining ops are dropped and the caller falls through to the live
/// observation) and the engine escalates the process at the end of the
/// step — a diverging process fails its own recovery, never the whole
/// daemon.
#[cold]
fn replay_diverged(r: &mut Replay, what: &str, c: Chan, got: &Op) {
    if r.diverged.is_none() {
        r.diverged = Some(format!(
            "deterministic replay diverged at {what} on {c}: journal records {got:?}"
        ));
    }
    r.ops.clear();
}

/// Adapter routing `RngExt` sampling through the journaled word stream,
/// so rejection sampling draws the same number of words on replay.
struct JournaledRng<'a, 'b> {
    ctx: &'b mut StepCtx<'a>,
}

impl RngCore for JournaledRng<'_, '_> {
    fn next_u64(&mut self) -> u64 {
        self.ctx.next_word()
    }
}

/// A message-communicating process: a state machine stepped by the
/// scheduler.
///
/// `step` should perform a bounded amount of work (typically: consume at
/// most one input and/or emit at most one output) and report whether it
/// made progress; the network detects quiescence when every process
/// reports [`StepResult::Idle`] in a full round.
///
/// # Supervision hooks
///
/// The five defaulted methods below opt a process into the checkpointed
/// supervision runtime ([`crate::snapshot`], [`crate::supervisor`]). All
/// defaults are safe no-ops: a process that implements none of them still
/// runs everywhere, but cannot be checkpointed and can only be recovered
/// by the supervisor if it supports [`reset`](Process::reset)
/// (replay-from-genesis).
///
/// Processes are `Send` so the sharded runtime ([`crate::shard`]) can
/// partition them across worker threads; a process owns its state
/// outright (channels are the only communication medium), so this costs
/// nothing in practice.
pub trait Process: Send {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// The channels this process consumes from. Kahn networks require a
    /// single consumer per channel; [`crate::Network::add`] validates the
    /// declarations of all added processes for disjointness, and the
    /// runtime additionally meters actual reads (catching undeclared
    /// second readers). Declared inputs also drive starvation detection
    /// in [`RunReport`](crate::RunReport). The default (empty) opts out
    /// of the static validation — declare inputs wherever possible.
    fn inputs(&self) -> Vec<Chan> {
        Vec::new()
    }

    /// The channels this process sends on (diagnostic only).
    fn outputs(&self) -> Vec<Chan> {
        Vec::new()
    }

    /// Performs one step against the channel context.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult;

    /// Captures the process's *mutable* state as a [`StateCell`] —
    /// positions, buffers, flags, private RNGs — never construction-time
    /// constants. Stateless processes should return
    /// `Some(StateCell::Unit)`; the default `None` marks the process as
    /// un-checkpointable.
    fn snapshot(&self) -> Option<StateCell> {
        None
    }

    /// Restores state previously captured by [`snapshot`](Process::snapshot)
    /// on an *identically constructed* process. Returns `false` if the
    /// cell does not have the expected shape (or the hook is unsupported,
    /// the default).
    fn restore(&mut self, state: &StateCell) -> bool {
        let _ = state;
        false
    }

    /// Resets the process to its just-constructed (genesis) state.
    /// Enables the supervisor's replay-from-genesis fallback for
    /// processes without snapshot hooks; also used to model the state
    /// loss of a crash. Returns `false` if unsupported (the default).
    fn reset(&mut self) -> bool {
        false
    }

    /// True iff the process has crashed and will never progress again on
    /// its own (see [`crate::CrashAt`]). The runtime polls this to feed
    /// the per-process `crashed` flag in [`RunReport`](crate::RunReport)
    /// and to trigger supervised recovery.
    fn crashed(&self) -> bool {
        false
    }

    /// Revives the process after a crash (called by the supervisor after
    /// state restoration; [`crate::CrashAt`] uses it to defuse its fuel).
    /// Returns `false` if the process cannot be revived. The default
    /// succeeds: an externally crashed process needs no cooperation.
    fn restart(&mut self) -> bool {
        true
    }
}

impl<P: Process + ?Sized> Process for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn inputs(&self) -> Vec<Chan> {
        (**self).inputs()
    }

    fn outputs(&self) -> Vec<Chan> {
        (**self).outputs()
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepResult {
        (**self).step(ctx)
    }

    fn snapshot(&self) -> Option<StateCell> {
        (**self).snapshot()
    }

    fn restore(&mut self, state: &StateCell) -> bool {
        (**self).restore(state)
    }

    fn reset(&mut self) -> bool {
        (**self).reset()
    }

    fn crashed(&self) -> bool {
        (**self).crashed()
    }

    fn restart(&mut self) -> bool {
        (**self).restart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (ChanMap<VecDeque<Value>>, Vec<Event>, StdRng) {
        (ChanMap::default(), Vec::new(), StdRng::seed_from_u64(7))
    }

    #[test]
    fn send_records_and_queues() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
        let c = Chan::new(0);
        ctx.send(c, Value::Int(1));
        ctx.send(c, Value::Int(2));
        assert_eq!(ctx.available(c), 2);
        assert_eq!(ctx.peek(c, 1), Some(Value::Int(2)));
        assert_eq!(ctx.pop(c), Some(Value::Int(1)));
        assert_eq!(ctx.available(c), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pop_empty_is_none() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
        assert_eq!(ctx.pop(Chan::new(3)), None);
        assert_eq!(ctx.peek(Chan::new(3), 0), None);
        assert_eq!(ctx.available(Chan::new(3)), 0);
    }

    #[test]
    fn rng_choices_in_range() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
        for _ in 0..50 {
            assert!(ctx.choose(3) < 3);
            let _ = ctx.flip();
        }
    }

    #[test]
    fn telemetry_meters_reads_and_detects_second_reader() {
        let (mut q, mut t, mut r) = ctx_parts();
        let mut tel = Telemetry::default();
        let c = Chan::new(5);
        {
            let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, Some(&mut tel), 0);
            ctx.send(c, Value::Int(1));
            ctx.send(c, Value::Int(2));
            assert_eq!(ctx.pop(c), Some(Value::Int(1)));
        }
        {
            let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, Some(&mut tel), 1);
            assert_eq!(ctx.pop(c), Some(Value::Int(2)));
            // repeated reads by the same offender stay deduplicated
            assert_eq!(ctx.pop(c), None);
        }
        let counters = &tel.channels[&c];
        assert_eq!(counters.sends, 2);
        assert_eq!(counters.receives, 2);
        assert_eq!(counters.high_water, 2);
        assert_eq!(counters.consumer, Some(0));
        assert_eq!(tel.violations, vec![(c, 0, 1)]);
    }

    #[test]
    fn journal_records_observations_and_replay_serves_them() {
        let (mut q, mut t, mut r) = ctx_parts();
        let c = Chan::new(9);
        q.entry(c).or_default().push_back(Value::Int(4));
        let mut journal = Journal::default();
        let (word, flipped) = {
            let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
            ctx.journal = Some(&mut journal);
            assert_eq!(ctx.available(c), 1);
            assert_eq!(ctx.pop(c), Some(Value::Int(4)));
            ctx.send(c, Value::Int(8));
            let f = ctx.flip();
            let w = match journal_last_draw(&journal) {
                Some(w) => w,
                None => panic!("flip must journal its word"),
            };
            (w, f)
        };
        assert!(journal.ops.len() >= 4);
        // replay: re-queue the popped value, then serve every op back
        q.get_mut(&c).expect("queued").push_front(Value::Int(4));
        let mut replay = Replay::from_journal(&journal);
        {
            let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
            ctx.replay = Some(&mut replay);
            assert_eq!(ctx.available(c), 1);
            assert_eq!(ctx.pop(c), Some(Value::Int(4)));
            ctx.send(c, Value::Int(8)); // suppressed: no new trace event
            assert_eq!(ctx.flip(), flipped);
        }
        assert!(replay.ops.is_empty(), "replay fully consumed");
        assert_eq!(t.len(), 1, "the replayed send is suppressed");
        let _ = word;
    }

    fn journal_last_draw(j: &Journal) -> Option<u64> {
        j.ops.iter().rev().find_map(|op| match op {
            Op::Draw(w) => Some(*w),
            _ => None,
        })
    }

    #[test]
    fn replay_divergence_is_flagged_not_fatal() {
        let (mut q, mut t, mut r) = ctx_parts();
        let c = Chan::new(2);
        q.entry(c).or_default().push_back(Value::Int(7));
        let mut journal = Journal::default();
        journal.ops.push(Op::Available(c, 3));
        journal.ops.push(Op::Available(c, 3));
        let mut replay = Replay::from_journal(&journal);
        {
            let mut ctx = StepCtx::bare(&mut q, &mut t, &mut r, None, 0);
            ctx.replay = Some(&mut replay);
            // journal says `available`, process does `pop`: the replay is
            // abandoned, the live observation is served, and the marker is
            // set for the engine to escalate — no panic
            assert_eq!(ctx.pop(c), Some(Value::Int(7)));
        }
        let why = replay.diverged.expect("divergence recorded");
        assert!(why.contains("diverged at pop"), "{why}");
        assert!(replay.ops.is_empty(), "replay abandoned");
    }

    #[test]
    fn default_hooks_are_inert() {
        struct Plain;
        impl Process for Plain {
            fn name(&self) -> &str {
                "plain"
            }
            fn step(&mut self, _: &mut StepCtx<'_>) -> StepResult {
                StepResult::Idle
            }
        }
        let mut p = Plain;
        assert!(p.snapshot().is_none());
        assert!(!p.restore(&StateCell::Unit));
        assert!(!p.reset());
        assert!(!p.crashed());
        assert!(p.restart());
        // the blanket Box impl forwards
        let b: Box<dyn Process> = Box::new(Plain);
        assert!(b.snapshot().is_none());
        assert!(!b.crashed());
    }
}
