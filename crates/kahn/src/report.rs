//! Structured run telemetry: what each process and channel did during a
//! run, who the bottleneck was, whether the single-consumer discipline
//! held at runtime, which faults were injected, and how crashed
//! processes were recovered.
//!
//! [`RunReport`] extends the minimal [`RunResult`]
//! (trace + status + step count) with per-process progress/idle
//! counters, starvation streaks (a process repeatedly offered a step
//! while input waits on one of its declared channels, yet reporting
//! idle), crash flags and restart counts, per-channel send/receive
//! counts and queue-depth high-water marks, runtime-detected
//! single-consumer violations, the [`fault_log`](RunReport::fault_log)
//! of injected perturbations, and the supervisor's
//! [`recoveries`](RunReport::recoveries) — the operational observability
//! layer the paper's quiescent-trace semantics leaves implicit.

use crate::faults::FaultEvent;
use crate::network::RunResult;
use crate::supervisor::RecoveryRecord;
use eqp_sketch::{splitmix64, SketchConfig, SketchStats, TelemetrySketches};
use eqp_trace::{Chan, Trace, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A cheap, well-mixed 64-bit hash of a [`Value`] for the distinct-value
/// hyperloglog — one or two `splitmix64` rounds, no allocation, safe for
/// the engine hot loop.
pub(crate) fn value_hash(v: Value) -> u64 {
    match v {
        Value::Int(n) => splitmix64(0x496e_7456 ^ (n as u64)),
        Value::Bit(b) => splitmix64(0x4269_7456 ^ u64::from(b)),
        Value::Pair(t, n) => splitmix64(splitmix64(0x5061_6972 ^ u64::from(t)) ^ (n as u64)),
    }
}

/// Distinct-value sampling exponent for the capture layer: the HLL sees
/// a deterministic 1-in-`2^5` partition of the value space, and
/// [`TelemetrySketches::stats`] scales the estimate back by `2^5`. The
/// ≤5% capture budget is what forces sampling here — a full `splitmix64`
/// plus an HLL register probe on *every* send is a measurable fraction
/// of an engine step all by itself.
pub(crate) const VALUE_SAMPLE_LOG2: u8 = 5;

/// Quantile sampling period (log2) for the capture layer: the
/// queue-depth and latency sketches observe one message in
/// `2^QUANTILE_SAMPLE_LOG2`, keyed on the per-channel enqueue index (see
/// [`Telemetry::note_send`]). Dialing this up is the main lever on
/// capture overhead — each sampled send pays a stamp push plus a sketch
/// insert, each sampled pop a stamp pop plus an insert, and everything
/// unsampled pays one masked compare.
pub(crate) const QUANTILE_SAMPLE_LOG2: u32 = 5;

/// `2^QUANTILE_SAMPLE_LOG2 - 1`, the enqueue-index mask.
pub(crate) const QUANTILE_SAMPLE_MASK: u64 = (1 << QUANTILE_SAMPLE_LOG2) - 1;

/// Whether `v` falls in the sampled 1-in-`2^VALUE_SAMPLE_LOG2` value
/// partition. Deliberately cheaper than [`value_hash`] — one multiply
/// and a shift (Fibonacci hashing) — so the unsampled sends pay almost
/// nothing; only sampled values pay the full hash. A pure function of
/// the value, so every backend partitions identically.
#[inline]
pub(crate) fn value_sampled(v: Value) -> bool {
    let key = match v {
        Value::Int(n) => n as u64,
        Value::Bit(b) => u64::from(b),
        Value::Pair(t, n) => (n as u64) ^ (u64::from(t) << 56),
    };
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - VALUE_SAMPLE_LOG2 as u32) == 0
}

/// A fresh sketch block configured for engine capture (the workspace
/// default footprint plus the distinct-value sampling exponent).
pub(crate) fn capture_sketches() -> Box<TelemetrySketches> {
    Box::new(TelemetrySketches::new(SketchConfig {
        value_sample_log2: VALUE_SAMPLE_LOG2,
        quantile_bits: 5,
        ..SketchConfig::default()
    }))
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The network quiesced: no process could make further progress (the
    /// step bound is probed, so a network that quiesces in exactly
    /// `max_steps` steps still counts).
    Quiescent,
    /// The step bound cut the run short.
    BudgetExhausted,
    /// The step bound fired while at least one crashed process was still
    /// awaiting or performing recovery — the run is *not* a truncated
    /// quiescent prefix of the original network (part of its history is
    /// simply missing), so conformance prefix checks against it would be
    /// misleading.
    BudgetExhaustedDuringRecovery,
    /// A crash escalated: the policy forbids restarts, the process
    /// exceeded its restart budget, or its state could not be restored.
    Escalated {
        /// Name of the process whose crash escalated.
        process: String,
    },
    /// A reliable link ([`crate::reliable`]) exhausted its retransmission
    /// budget and degraded: the undelivered tail on the named link was
    /// abandoned, so the run terminated cleanly but its history is a
    /// *prefix* of the masked network's, not a complete solution. The
    /// conformance bridge maps this status to
    /// [`Verdict::Degraded`](crate::Verdict).
    ReliabilityExhausted {
        /// Diagnostic name of the exhausted link (`arq@<chan>`).
        link: String,
    },
    /// Flow-control deadlock under bounded channels
    /// ([`RunOptions::channel_capacity`](crate::RunOptions)): a full
    /// round passed in which no process progressed but at least one was
    /// blocked trying to send on a full channel — the network can never
    /// drain itself.
    Backpressured {
        /// Name of a blocked process (the first observed in the final
        /// round).
        process: String,
        /// The full channel it was blocked on.
        chan: Chan,
    },
    /// The round deadline
    /// ([`RunOptions::deadline_rounds`](crate::RunOptions)) expired
    /// before quiescence — the overload-run exit for networks throttled
    /// below their offered load.
    DeadlineExpired,
    /// The online [`SmoothnessMonitor`](crate::monitor::SmoothnessMonitor)
    /// observed a smoothness violation under
    /// [`MonitorPolicy::AbortOnViolation`](crate::monitor::MonitorPolicy)
    /// and halted the run at the offending step — no point running to the
    /// step bound once the trace is convicted.
    MonitorAborted {
        /// Index of the convicted component equation.
        component: usize,
    },
}

impl RunStatus {
    /// True iff the run quiesced.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunStatus::Quiescent)
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Quiescent => f.write_str("quiescent"),
            RunStatus::BudgetExhausted => f.write_str("step bound hit"),
            RunStatus::BudgetExhaustedDuringRecovery => f.write_str("step bound hit mid-recovery"),
            RunStatus::Escalated { process } => {
                write!(f, "escalated (`{process}` crashed and was not recovered)")
            }
            RunStatus::ReliabilityExhausted { link } => {
                write!(f, "degraded (`{link}` exhausted its retry budget)")
            }
            RunStatus::Backpressured { process, chan } => {
                write!(
                    f,
                    "backpressured (`{process}` blocked on full channel {chan})"
                )
            }
            RunStatus::DeadlineExpired => f.write_str("round deadline expired"),
            RunStatus::MonitorAborted { component } => {
                write!(
                    f,
                    "monitor aborted (smoothness violation in component {component})"
                )
            }
        }
    }
}

/// One injected fault event attributed to its source — a
/// [`FaultyLink`](crate::FaultyLink) process by name, or an
/// engine-interposed link from a chaos
/// [`FaultSchedule`](crate::faults::FaultSchedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Diagnostic name of the injector (process name, or `link@<chan>`
    /// for engine-interposed links).
    pub source: String,
    /// What was injected.
    pub event: FaultEvent,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by `{}`", self.event, self.source)
    }
}

/// Telemetry for one process over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessReport {
    /// The process's diagnostic name.
    pub name: String,
    /// Steps in which the process made progress.
    pub progress: usize,
    /// Steps in which the process was offered a turn but stayed idle.
    pub idle: usize,
    /// Longest streak of consecutive rounds the process stayed idle
    /// *while at least one of its declared input channels had messages
    /// waiting* — the operational signature of starvation. Processes
    /// that declare no [`inputs`](crate::Process::inputs) always report
    /// zero.
    pub max_starved_rounds: usize,
    /// True iff the process ended the run crashed (reported by
    /// [`Process::crashed`](crate::Process::crashed) or killed by an
    /// engine [`CrashPoint`](crate::faults::CrashPoint) and never
    /// restarted) — distinguishing a dead process from a merely starved
    /// or finished one.
    pub crashed: bool,
    /// Times the supervisor restarted this process.
    pub restarts: usize,
    /// Steps refused (and rolled back) because the process tried to send
    /// on a channel that was at capacity
    /// ([`RunOptions::channel_capacity`](crate::RunOptions)). Always zero
    /// in unbounded runs. Distinct from [`idle`](ProcessReport::idle):
    /// a send-blocked process had work to do and was flow-controlled,
    /// not waiting for input.
    pub send_blocked: usize,
    /// Longest streak of consecutive rounds the process spent blocked on
    /// a full channel — the backpressure analogue of
    /// [`max_starved_rounds`](ProcessReport::max_starved_rounds).
    pub max_blocked_rounds: usize,
}

/// Telemetry for one channel over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// The channel.
    pub chan: Chan,
    /// Messages sent on the channel (including faulty duplicates).
    pub sends: usize,
    /// Messages consumed from the channel via [`pop`](crate::StepCtx::pop).
    pub receives: usize,
    /// Highest queue depth observed immediately after a send or preload.
    pub high_water: usize,
    /// Messages still queued when the run ended (sent or preloaded but
    /// never consumed).
    pub residual: usize,
    /// Name of the first process that read (popped or peeked) the
    /// channel, if any.
    pub consumer: Option<String>,
    /// Capacity bound enforced on the channel, if the run was bounded and
    /// the channel was managed (declared as some process's input).
    /// `high_water` never exceeds this.
    pub capacity: Option<usize>,
    /// Send attempts refused because the channel was at capacity (the
    /// sender's step was rolled back and retried later).
    pub blocked_sends: usize,
    /// Messages discarded at capacity under
    /// [`OverflowPolicy::Shed`](crate::OverflowPolicy).
    pub shed: usize,
}

/// A runtime single-consumer violation: two distinct processes read the
/// same channel. Kahn determinism is void once this happens — the second
/// reader steals messages the first one's history depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerViolation {
    /// The channel read by two processes.
    pub chan: Chan,
    /// Name of the first reader.
    pub first: String,
    /// Name of the offending second reader.
    pub second: String,
}

impl fmt::Display for ConsumerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} consumed by both `{}` and `{}`",
            self.chan, self.first, self.second
        )
    }
}

/// The full structured result of a network run: the [`RunResult`] fields
/// plus per-process and per-channel telemetry, injected faults, and
/// recoveries.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced — the boolean view of
    /// [`status`](RunReport::status), kept for ergonomic checks.
    pub quiescent: bool,
    /// How the run ended.
    pub status: RunStatus,
    /// Progress-making steps performed.
    pub steps: usize,
    /// Scheduler rounds completed.
    pub rounds: usize,
    /// Per-process telemetry, in network insertion order.
    pub processes: Vec<ProcessReport>,
    /// Per-channel telemetry, ordered by channel id.
    pub channels: Vec<ChannelReport>,
    /// Runtime single-consumer violations, in detection order (at most
    /// one per ordered reader pair per channel).
    pub consumer_violations: Vec<ConsumerViolation>,
    /// Every injected fault event, in injection order, attributed to its
    /// source.
    pub faults: Vec<FaultRecord>,
    /// Every completed supervisor recovery, in completion order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Mergeable telemetry sketches accumulated inline during the run
    /// (queue-depth and latency quantiles, heavy-hitter channels,
    /// distinct-value cardinality). `None` iff sketch capture was
    /// disabled via [`RunOptions::sketches`](crate::RunOptions).
    /// Summaries from separate runs, shards, or resumed segments merge
    /// exactly ([`TelemetrySketches::merge`]).
    pub sketches: Option<TelemetrySketches>,
}

impl RunReport {
    /// Collapses the report into the minimal [`RunResult`].
    pub fn into_result(self) -> RunResult {
        RunResult {
            trace: self.trace,
            quiescent: self.quiescent,
            status: self.status,
            steps: self.steps,
        }
    }

    /// The minimal [`RunResult`] view (cloning the trace).
    pub fn result(&self) -> RunResult {
        RunResult {
            trace: self.trace.clone(),
            quiescent: self.quiescent,
            status: self.status.clone(),
            steps: self.steps,
        }
    }

    /// Telemetry for channel `c`, if it ever carried or queued a message.
    pub fn channel(&self, c: Chan) -> Option<&ChannelReport> {
        self.channels.iter().find(|r| r.chan == c)
    }

    /// Processes starved for at least `rounds` consecutive rounds.
    pub fn starved(&self, rounds: usize) -> Vec<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds >= rounds)
            .collect()
    }

    /// Every injected fault event, in injection order — a convicting run
    /// names the exact perturbations alongside the violated equation.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// The bottleneck: among processes that idled with input waiting
    /// (starved) or were refused sends on a full channel (send-blocked),
    /// crashed ones first (a dead process with queued input *is* the
    /// blockage), then the longest starvation-or-blocked streak, ties
    /// broken towards more idle steps. `None` when no process was ever
    /// starved or flow-controlled — an idle process without waiting input
    /// is merely done, not stuck. A flow-controlled producer is reported
    /// as *send-blocked*, never misfiled as idle/starved.
    pub fn bottleneck(&self) -> Option<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds > 0 || p.max_blocked_rounds > 0)
            .max_by_key(|p| {
                (
                    p.crashed,
                    p.max_starved_rounds.max(p.max_blocked_rounds),
                    p.idle,
                )
            })
    }

    /// True iff no runtime single-consumer violation was observed.
    pub fn single_consumer_ok(&self) -> bool {
        self.consumer_violations.is_empty()
    }

    /// Sketch-derived summary statistics (p50/p99 queue depth and
    /// latency, heavy-hitter channels, distinct-value estimate), if
    /// sketch capture was enabled and observed at least one event.
    /// Complements the exact per-channel meters: the meters give exact
    /// totals and high-water marks, the sketches give the distribution
    /// between those extremes — and, unlike the meters, merge exactly
    /// across shards, resumed segments, and fleet members.
    pub fn sketch_stats(&self) -> Option<SketchStats> {
        self.sketches
            .as_ref()
            .filter(|s| !s.is_empty())
            .map(TelemetrySketches::stats)
    }

    /// The heaviest-traffic channels according to the heavy-hitter
    /// sketch, as `(Chan, approximate send count)` pairs, heaviest first.
    /// Empty when sketches are disabled or nothing was sent.
    pub fn top_channels(&self, k: usize) -> Vec<(Chan, u64)> {
        self.sketches
            .as_ref()
            .map(|s| {
                s.channel_traffic
                    .top(k)
                    .into_iter()
                    .filter_map(|(key, cnt)| u32::try_from(key).ok().map(|i| (Chan::new(i), cnt)))
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} after {} steps in {} rounds",
            self.status, self.steps, self.rounds
        )?;
        for p in &self.processes {
            write!(
                f,
                "  process `{}`: {} progress / {} idle",
                p.name, p.progress, p.idle
            )?;
            if p.max_starved_rounds > 0 {
                write!(f, " (starved ≤ {} rounds)", p.max_starved_rounds)?;
            }
            if p.send_blocked > 0 {
                write!(
                    f,
                    " (send-blocked {}× ≤ {} rounds)",
                    p.send_blocked, p.max_blocked_rounds
                )?;
            }
            if p.restarts > 0 {
                write!(f, " (restarted {}×)", p.restarts)?;
            }
            if p.crashed {
                write!(f, " [CRASHED]")?;
            }
            writeln!(f)?;
        }
        for c in &self.channels {
            write!(
                f,
                "  channel {}: {} sent / {} received, high-water {}, residual {}",
                c.chan, c.sends, c.receives, c.high_water, c.residual
            )?;
            if let Some(cap) = c.capacity {
                write!(f, ", capacity {cap}")?;
            }
            if c.blocked_sends > 0 {
                write!(f, ", {} blocked sends", c.blocked_sends)?;
            }
            if c.shed > 0 {
                write!(f, ", {} shed", c.shed)?;
            }
            match &c.consumer {
                Some(name) => writeln!(f, ", consumer `{name}`")?,
                None => writeln!(f, ", no consumer")?,
            }
        }
        if let Some(stats) = self.sketch_stats() {
            writeln!(
                f,
                "  sketches: depth p50 {} / p99 {}, latency p50 {} / p99 {} rounds, ~{} distinct values over {} events",
                stats.depth_p50,
                stats.depth_p99,
                stats.latency_p50,
                stats.latency_p99,
                stats.distinct_values,
                stats.events
            )?;
            let top = self.top_channels(3);
            if !top.is_empty() {
                write!(f, "  heavy hitters:")?;
                for (i, (c, cnt)) in top.iter().enumerate() {
                    let sep = if i == 0 { " " } else { ", " };
                    write!(f, "{sep}{c} (~{cnt} sends)")?;
                }
                writeln!(f)?;
            }
        }
        match self.bottleneck() {
            Some(p) if p.crashed => writeln!(
                f,
                "  bottleneck: `{}` crashed with input waiting ({} rounds)",
                p.name, p.max_starved_rounds
            )?,
            Some(p) if p.max_blocked_rounds > p.max_starved_rounds => writeln!(
                f,
                "  bottleneck: `{}` send-blocked for {} consecutive rounds (backpressure, not idleness)",
                p.name, p.max_blocked_rounds
            )?,
            Some(p) => writeln!(
                f,
                "  bottleneck: `{}` starved for {} consecutive rounds with input waiting",
                p.name, p.max_starved_rounds
            )?,
            None => writeln!(f, "  bottleneck: none")?,
        }
        for r in &self.recoveries {
            writeln!(f, "  recovery: {r}")?;
        }
        for rec in &self.faults {
            writeln!(f, "  fault: {rec}")?;
        }
        for v in &self.consumer_violations {
            writeln!(f, "  WARNING: {v}")?;
        }
        Ok(())
    }
}

/// Per-channel counters accumulated during a run (crate-internal; folded
/// into [`ChannelReport`]s when the run ends).
#[derive(Debug, Default, Clone)]
pub(crate) struct ChannelCounters {
    pub(crate) sends: usize,
    pub(crate) receives: usize,
    pub(crate) high_water: usize,
    /// Index of the first process that read the channel.
    pub(crate) consumer: Option<usize>,
    /// Send attempts refused because the channel was at capacity.
    pub(crate) blocked: usize,
    /// Messages shed at capacity under `OverflowPolicy::Shed`.
    pub(crate) shed: usize,
    /// Scheduler-round stamps of the *sampled* messages currently
    /// queued (enqueue index ≡ 1 mod `2^QUANTILE_SAMPLE_LOG2`, see
    /// [`Telemetry::note_send`]),
    /// run-length encoded as `(round, count)` in queue order — sketch
    /// capture only, empty when sketches are disabled. A sampled
    /// send/preload pushes the current round, a sampled pop removes one
    /// from the head; the popped stamp yields the message's queue-wait
    /// latency. Sampling keeps stamp maintenance off the capture hot
    /// path, and the RLE keeps a deep preloaded queue to a handful of
    /// runs instead of one word per message (checkpoint image size).
    /// Staged capture defers every stamp mutation to
    /// [`Telemetry::commit_staged`], which runs only after a flow
    /// transaction resolves — so bounded-mode rollback never needs to
    /// snapshot this queue (see [`CounterSnap`]).
    pub(crate) stamps: VecDeque<(u64, u64)>,
}

impl ChannelCounters {
    /// Stamps `n` just-queued messages with `round`.
    #[inline]
    pub(crate) fn push_stamps(&mut self, round: u64, n: u64) {
        if n == 0 {
            return;
        }
        match self.stamps.back_mut() {
            Some(run) if run.0 == round => run.1 += n,
            _ => self.stamps.push_back((round, n)),
        }
    }

    /// Removes and returns the head-of-queue stamp, if any.
    #[inline]
    pub(crate) fn pop_stamp(&mut self) -> Option<u64> {
        let run = self.stamps.front_mut()?;
        let round = run.0;
        run.1 -= 1;
        if run.1 == 0 {
            self.stamps.pop_front();
        }
        Some(round)
    }

    /// Captures the meter image a flow transaction saves on first touch.
    #[inline]
    pub(crate) fn snap(&self) -> CounterSnap {
        CounterSnap {
            sends: self.sends,
            receives: self.receives,
            high_water: self.high_water,
            consumer: self.consumer,
            blocked: self.blocked,
            shed: self.shed,
        }
    }

    /// Restores the meters from a rollback snapshot, leaving `stamps`
    /// alone — staged capture guarantees the queue was never touched
    /// inside the transaction.
    #[inline]
    pub(crate) fn restore(&mut self, s: CounterSnap) {
        self.sends = s.sends;
        self.receives = s.receives;
        self.high_water = s.high_water;
        self.consumer = s.consumer;
        self.blocked = s.blocked;
        self.shed = s.shed;
    }
}

/// The meter image a flow transaction snapshots per touched channel —
/// everything in [`ChannelCounters`] except `stamps`. Staged sketch
/// capture defers all stamp mutations to [`Telemetry::commit_staged`],
/// which runs only after the transaction resolves, so rollback restores
/// the meters and leaves the stamp queue alone. Keeping the snapshot
/// `Copy` keeps the bounded-mode save path allocation-free whether or
/// not sketches are enabled.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CounterSnap {
    sends: usize,
    receives: usize,
    high_water: usize,
    consumer: Option<usize>,
    blocked: usize,
    shed: usize,
}

/// Who injected a fault event (resolved to a name when the report is
/// built).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultSource {
    /// The process at this index (a [`FaultyLink`](crate::FaultyLink) or
    /// custom fault process calling
    /// [`StepCtx::note_fault`](crate::StepCtx::note_fault)).
    Proc(usize),
    /// An engine-interposed link on this channel.
    Link(Chan),
}

/// A sketch observation staged by the step in flight. Bounded-mode steps
/// can roll back, and sketch inserts cannot be undone — so observations
/// queue here until the step commits ([`Telemetry::commit_staged`]) or
/// rolls back ([`Telemetry::discard_staged`]). Stamp-queue maintenance
/// rides the same deferral: a staged `Send` pushes its round stamp and a
/// staged `Recv` pops one only at commit, which keeps every stamp
/// mutation outside the flow transaction (rollback discards the staged
/// list and the stamps need no undo at all).
#[derive(Debug, Clone)]
pub(crate) enum SketchObs {
    /// A quantile-sampled send: the post-send queue depth, plus the
    /// channel whose stamp queue receives the round stamp at commit.
    /// (Channel traffic is *not* staged per event — the heavy-hitter
    /// sketch is synthesized from the exact per-channel send meters at
    /// report build, see [`Telemetry::finish_sketches`].)
    Send { chan: Chan, depth: u64 },
    /// A value-sampled send (see [`value_sampled`]): the full value hash
    /// for the HLL. Independent of the quantile sampling — a send may
    /// stage both observations.
    Distinct { vhash: u64 },
    /// A quantile-sampled pop: commit pops the channel's head stamp and
    /// turns it into a queue-wait latency observation.
    Recv { chan: Chan },
}

/// Run-wide telemetry accumulator threaded through [`crate::StepCtx`].
/// `Clone` so a [`Checkpoint`](crate::snapshot::Checkpoint) can carry the
/// meters mid-run — the sketch block, queue stamps, and round clock ride
/// along, which is exactly what makes resumed-segment roll-up exact.
#[derive(Default, Clone)]
pub(crate) struct Telemetry {
    pub(crate) channels: BTreeMap<Chan, ChannelCounters>,
    /// `(chan, first reader index, second reader index)` — deduplicated.
    pub(crate) violations: Vec<(Chan, usize, usize)>,
    /// Injected fault events, in injection order.
    pub(crate) faults: Vec<(FaultSource, FaultEvent)>,
    /// The scheduler-round clock for latency stamps. The engines keep it
    /// in lockstep with their round counters (incremented at round
    /// boundaries, re-synchronized on resume).
    pub(crate) round: u64,
    /// Streaming sketches, `None` when disabled by
    /// [`RunOptions::sketches`](crate::RunOptions). Boxed: the sketch
    /// block is several KiB of fixed-footprint state and `Telemetry` is
    /// cloned into every checkpoint.
    pub(crate) sketches: Option<Box<TelemetrySketches>>,
    /// Observations staged by the step in flight (always empty at
    /// capture, commit, and report boundaries).
    pub(crate) staged: Vec<SketchObs>,
    /// When set, observations insert into the sketches directly instead
    /// of staging. Everything except bounded-mode runs qualifies: the
    /// plain engine with flow control disarmed has no rollback, and the
    /// sharded coordinator already applies slot results (and thus its
    /// telemetry notes) in canonical plan order with no rollback either.
    /// Only the plain engine with `channel_capacity` set must stage,
    /// because a blocked step rolls back and sketch inserts cannot be
    /// undone. Purely an execution-mode flag: excluded from `Debug` (and
    /// thus from checkpoint fingerprints), reset by every resume path.
    pub(crate) direct: bool,
}

/// Manual impl so `direct` — an execution-mode flag, not run state —
/// stays out of checkpoint fingerprints and report-identity comparisons.
impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("channels", &self.channels)
            .field("violations", &self.violations)
            .field("faults", &self.faults)
            .field("round", &self.round)
            .field("sketches", &self.sketches)
            .field("staged", &self.staged)
            .finish()
    }
}

impl Telemetry {
    /// Records that process `reader` read (popped or peeked) channel `c`.
    pub(crate) fn note_consumer(&mut self, c: Chan, reader: usize) {
        let counters = self.channels.entry(c).or_default();
        match counters.consumer {
            None => counters.consumer = Some(reader),
            Some(first) if first != reader => {
                if !self
                    .violations
                    .iter()
                    .any(|&(vc, _, second)| vc == c && second == reader)
                {
                    self.violations.push((c, first, reader));
                }
            }
            Some(_) => {}
        }
    }

    /// Records a send of `v` on `c` that left the queue at depth `depth`.
    pub(crate) fn note_send(&mut self, c: Chan, depth: usize, v: Value) {
        let round = self.round;
        let sketching = self.sketches.is_some();
        let counters = self.channels.entry(c).or_default();
        counters.sends += 1;
        counters.high_water = counters.high_water.max(depth);
        if sketching {
            // Deterministic 1-in-2^QUANTILE_SAMPLE_LOG2 sampling for the
            // queue-depth and latency quantile sketches, keyed off the
            // message's per-channel *enqueue index* — `depth + receives`
            // counts preloads, sends, and pops alike, and every backend
            // (and every resumed segment) advances those meters
            // identically, so all of them sample the same messages.
            // FIFO order means the receive side recognizes a sampled
            // message by its pop index alone, so only sampled messages
            // need a queue stamp at all (the RLE degenerates to one run
            // per message in round-per-send workloads — sampling keeps
            // that off the hot path). The HLL is independently
            // value-sampled, see [`value_sampled`].
            let sampled = (depth as u64 + counters.receives as u64) & QUANTILE_SAMPLE_MASK == 1;
            let vsamp = value_sampled(v);
            if sampled || vsamp {
                self.sketch_send(c, depth as u64, v, sampled, vsamp, round);
            }
        }
    }

    /// The rarely-taken sampled-send path, outlined so the per-send hot
    /// path in [`Telemetry::note_send`] stays a pair of cheap tests.
    #[cold]
    #[inline(never)]
    fn sketch_send(
        &mut self,
        c: Chan,
        depth: u64,
        v: Value,
        sampled: bool,
        vsamp: bool,
        round: u64,
    ) {
        if sampled {
            if self.direct {
                if let Some(k) = self.channels.get_mut(&c) {
                    k.push_stamps(round, 1);
                }
                self.sketches
                    .as_deref_mut()
                    .expect("sketching checked")
                    .queue_depth
                    .insert(depth);
            } else {
                // stamp push deferred to commit: no stamp mutation may
                // happen inside a flow transaction
                self.staged.push(SketchObs::Send { chan: c, depth });
            }
        }
        if vsamp {
            let vhash = value_hash(v);
            if self.direct {
                self.sketches
                    .as_deref_mut()
                    .expect("sketching checked")
                    .distinct_values
                    .insert(vhash);
            } else {
                self.staged.push(SketchObs::Distinct { vhash });
            }
        }
    }

    /// Records a successful pop from `c`.
    pub(crate) fn note_receive(&mut self, c: Chan) {
        let round = self.round;
        let sketching = self.sketches.is_some();
        let counters = self.channels.entry(c).or_default();
        counters.receives += 1;
        if sketching && counters.receives as u64 & QUANTILE_SAMPLE_MASK == 1 {
            self.sketch_recv(c, round);
        }
    }

    /// The rarely-taken sampled-pop path, outlined like
    /// [`Telemetry::sketch_send`]. This pop's index matches a sampled
    /// enqueue index (see [`Telemetry::note_send`]), so its stamp — if
    /// any — is at the head of the sampled-stamp queue. A missing stamp
    /// means the message predates this run's stamping (e.g. re-queued
    /// during a supervised replay window) — skip the latency observation
    /// rather than invent one.
    #[cold]
    #[inline(never)]
    fn sketch_recv(&mut self, c: Chan, round: u64) {
        if self.direct {
            if let Some(stamp) = self
                .channels
                .get_mut(&c)
                .and_then(ChannelCounters::pop_stamp)
            {
                let wait = round.saturating_sub(stamp);
                self.sketches
                    .as_deref_mut()
                    .expect("sketching checked")
                    .latency
                    .insert(wait);
            }
        } else {
            // stamp pop deferred to commit, mirroring the push side
            self.staged.push(SketchObs::Recv { chan: c });
        }
    }

    /// Records preloaded messages on `c` (count towards high-water but
    /// not towards sends — preloads are environment input outside the
    /// trace).
    pub(crate) fn note_preload(&mut self, c: Chan, depth: usize) {
        let round = self.round;
        let sketching = self.sketches.is_some();
        let counters = self.channels.entry(c).or_default();
        counters.high_water = counters.high_water.max(depth);
        if sketching {
            // Stamp the *sampled* preloaded messages (enqueue indices
            // ≡ 1 mod 2^QUANTILE_SAMPLE_LOG2 — the same key the send
            // and receive sides use, see `note_send`). Preloads land
            // once, at engine construction, before any traffic, so a
            // message's enqueue index is just its queue position.
            debug_assert_eq!(
                counters.sends + counters.receives,
                0,
                "preloads precede channel traffic"
            );
            let sampled = (depth as u64 + QUANTILE_SAMPLE_MASK) >> QUANTILE_SAMPLE_LOG2;
            counters.stamps.clear();
            counters.push_stamps(round, sampled);
        }
    }

    /// Flushes the step-in-flight's staged observations into the
    /// sketches. Call once the step (or pump, or preload) has committed;
    /// observation order is the staging order, so every backend that
    /// commits in canonical plan order accumulates identical sketches.
    pub(crate) fn commit_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        // Taken (not drained in place) so the loop can touch the
        // per-channel stamp queues; the Vec goes back afterwards to keep
        // its capacity.
        let mut staged = std::mem::take(&mut self.staged);
        let round = self.round;
        if let Some(s) = self.sketches.as_deref_mut() {
            for obs in staged.drain(..) {
                match obs {
                    SketchObs::Send { chan, depth } => {
                        if let Some(k) = self.channels.get_mut(&chan) {
                            k.push_stamps(round, 1);
                        }
                        s.queue_depth.insert(depth);
                    }
                    SketchObs::Distinct { vhash } => {
                        s.distinct_values.insert(vhash);
                    }
                    SketchObs::Recv { chan } => {
                        if let Some(stamp) = self
                            .channels
                            .get_mut(&chan)
                            .and_then(ChannelCounters::pop_stamp)
                        {
                            s.latency.insert(round.saturating_sub(stamp));
                        }
                    }
                }
            }
        } else {
            staged.clear();
        }
        self.staged = staged;
    }

    /// Finalizes the run's sketch block for its report: takes the
    /// accumulated in-run sketches and synthesizes the heavy-hitter
    /// channel-traffic sketch from the exact per-channel send meters.
    /// Updating the heavy hitters per event would be redundant work in
    /// the engine hot loop — the exact counts already exist in
    /// `channels`, are byte-identical across backends, and one bulk
    /// insert per channel in canonical (sorted) channel order produces
    /// the same mergeable block. Mid-run checkpoints deliberately carry
    /// the *unsynthesized* state: the meters ride along and the resumed
    /// run's final report synthesizes from the cumulative counts,
    /// exactly as the uninterrupted run would.
    pub(crate) fn finish_sketches(&mut self) -> Option<TelemetrySketches> {
        let mut s = self.sketches.take().map(|b| *b)?;
        for (c, k) in &self.channels {
            s.channel_traffic
                .insert(u64::from(c.index()), k.sends as u64);
        }
        Some(s)
    }

    /// Drops the step-in-flight's staged observations (bounded-mode
    /// rollback: the step never happened). Stamp-queue maintenance is
    /// deferred to commit, so there is nothing to undo there.
    pub(crate) fn discard_staged(&mut self) {
        self.staged.clear();
    }

    /// Records a fault injected by the process at index `who`.
    pub(crate) fn note_proc_fault(&mut self, who: usize, event: FaultEvent) {
        self.faults.push((FaultSource::Proc(who), event));
    }

    /// Records a fault injected by the engine-interposed link on `c`.
    pub(crate) fn note_link_fault(&mut self, c: Chan, event: FaultEvent) {
        self.faults.push((FaultSource::Link(c), event));
    }

    /// Records a send refused because `c` was at capacity.
    pub(crate) fn note_blocked_send(&mut self, c: Chan) {
        self.channels.entry(c).or_default().blocked += 1;
    }

    /// Records a message shed at capacity on `c`; returns the running
    /// shed count (used as the fault-event sequence number).
    pub(crate) fn note_shed(&mut self, c: Chan) -> usize {
        let counters = self.channels.entry(c).or_default();
        counters.shed += 1;
        counters.shed
    }
}
