//! Structured run telemetry: what each process and channel did during a
//! run, who the bottleneck was, whether the single-consumer discipline
//! held at runtime, which faults were injected, and how crashed
//! processes were recovered.
//!
//! [`RunReport`] extends the minimal [`RunResult`]
//! (trace + status + step count) with per-process progress/idle
//! counters, starvation streaks (a process repeatedly offered a step
//! while input waits on one of its declared channels, yet reporting
//! idle), crash flags and restart counts, per-channel send/receive
//! counts and queue-depth high-water marks, runtime-detected
//! single-consumer violations, the [`fault_log`](RunReport::fault_log)
//! of injected perturbations, and the supervisor's
//! [`recoveries`](RunReport::recoveries) — the operational observability
//! layer the paper's quiescent-trace semantics leaves implicit.

use crate::faults::FaultEvent;
use crate::network::RunResult;
use crate::supervisor::RecoveryRecord;
use eqp_trace::{Chan, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The network quiesced: no process could make further progress (the
    /// step bound is probed, so a network that quiesces in exactly
    /// `max_steps` steps still counts).
    Quiescent,
    /// The step bound cut the run short.
    BudgetExhausted,
    /// The step bound fired while at least one crashed process was still
    /// awaiting or performing recovery — the run is *not* a truncated
    /// quiescent prefix of the original network (part of its history is
    /// simply missing), so conformance prefix checks against it would be
    /// misleading.
    BudgetExhaustedDuringRecovery,
    /// A crash escalated: the policy forbids restarts, the process
    /// exceeded its restart budget, or its state could not be restored.
    Escalated {
        /// Name of the process whose crash escalated.
        process: String,
    },
    /// A reliable link ([`crate::reliable`]) exhausted its retransmission
    /// budget and degraded: the undelivered tail on the named link was
    /// abandoned, so the run terminated cleanly but its history is a
    /// *prefix* of the masked network's, not a complete solution. The
    /// conformance bridge maps this status to
    /// [`Verdict::Degraded`](crate::Verdict).
    ReliabilityExhausted {
        /// Diagnostic name of the exhausted link (`arq@<chan>`).
        link: String,
    },
    /// Flow-control deadlock under bounded channels
    /// ([`RunOptions::channel_capacity`](crate::RunOptions)): a full
    /// round passed in which no process progressed but at least one was
    /// blocked trying to send on a full channel — the network can never
    /// drain itself.
    Backpressured {
        /// Name of a blocked process (the first observed in the final
        /// round).
        process: String,
        /// The full channel it was blocked on.
        chan: Chan,
    },
    /// The round deadline
    /// ([`RunOptions::deadline_rounds`](crate::RunOptions)) expired
    /// before quiescence — the overload-run exit for networks throttled
    /// below their offered load.
    DeadlineExpired,
    /// The online [`SmoothnessMonitor`](crate::monitor::SmoothnessMonitor)
    /// observed a smoothness violation under
    /// [`MonitorPolicy::AbortOnViolation`](crate::monitor::MonitorPolicy)
    /// and halted the run at the offending step — no point running to the
    /// step bound once the trace is convicted.
    MonitorAborted {
        /// Index of the convicted component equation.
        component: usize,
    },
}

impl RunStatus {
    /// True iff the run quiesced.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunStatus::Quiescent)
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Quiescent => f.write_str("quiescent"),
            RunStatus::BudgetExhausted => f.write_str("step bound hit"),
            RunStatus::BudgetExhaustedDuringRecovery => f.write_str("step bound hit mid-recovery"),
            RunStatus::Escalated { process } => {
                write!(f, "escalated (`{process}` crashed and was not recovered)")
            }
            RunStatus::ReliabilityExhausted { link } => {
                write!(f, "degraded (`{link}` exhausted its retry budget)")
            }
            RunStatus::Backpressured { process, chan } => {
                write!(
                    f,
                    "backpressured (`{process}` blocked on full channel {chan})"
                )
            }
            RunStatus::DeadlineExpired => f.write_str("round deadline expired"),
            RunStatus::MonitorAborted { component } => {
                write!(
                    f,
                    "monitor aborted (smoothness violation in component {component})"
                )
            }
        }
    }
}

/// One injected fault event attributed to its source — a
/// [`FaultyLink`](crate::FaultyLink) process by name, or an
/// engine-interposed link from a chaos
/// [`FaultSchedule`](crate::faults::FaultSchedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Diagnostic name of the injector (process name, or `link@<chan>`
    /// for engine-interposed links).
    pub source: String,
    /// What was injected.
    pub event: FaultEvent,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by `{}`", self.event, self.source)
    }
}

/// Telemetry for one process over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessReport {
    /// The process's diagnostic name.
    pub name: String,
    /// Steps in which the process made progress.
    pub progress: usize,
    /// Steps in which the process was offered a turn but stayed idle.
    pub idle: usize,
    /// Longest streak of consecutive rounds the process stayed idle
    /// *while at least one of its declared input channels had messages
    /// waiting* — the operational signature of starvation. Processes
    /// that declare no [`inputs`](crate::Process::inputs) always report
    /// zero.
    pub max_starved_rounds: usize,
    /// True iff the process ended the run crashed (reported by
    /// [`Process::crashed`](crate::Process::crashed) or killed by an
    /// engine [`CrashPoint`](crate::faults::CrashPoint) and never
    /// restarted) — distinguishing a dead process from a merely starved
    /// or finished one.
    pub crashed: bool,
    /// Times the supervisor restarted this process.
    pub restarts: usize,
    /// Steps refused (and rolled back) because the process tried to send
    /// on a channel that was at capacity
    /// ([`RunOptions::channel_capacity`](crate::RunOptions)). Always zero
    /// in unbounded runs. Distinct from [`idle`](ProcessReport::idle):
    /// a send-blocked process had work to do and was flow-controlled,
    /// not waiting for input.
    pub send_blocked: usize,
    /// Longest streak of consecutive rounds the process spent blocked on
    /// a full channel — the backpressure analogue of
    /// [`max_starved_rounds`](ProcessReport::max_starved_rounds).
    pub max_blocked_rounds: usize,
}

/// Telemetry for one channel over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// The channel.
    pub chan: Chan,
    /// Messages sent on the channel (including faulty duplicates).
    pub sends: usize,
    /// Messages consumed from the channel via [`pop`](crate::StepCtx::pop).
    pub receives: usize,
    /// Highest queue depth observed immediately after a send or preload.
    pub high_water: usize,
    /// Messages still queued when the run ended (sent or preloaded but
    /// never consumed).
    pub residual: usize,
    /// Name of the first process that read (popped or peeked) the
    /// channel, if any.
    pub consumer: Option<String>,
    /// Capacity bound enforced on the channel, if the run was bounded and
    /// the channel was managed (declared as some process's input).
    /// `high_water` never exceeds this.
    pub capacity: Option<usize>,
    /// Send attempts refused because the channel was at capacity (the
    /// sender's step was rolled back and retried later).
    pub blocked_sends: usize,
    /// Messages discarded at capacity under
    /// [`OverflowPolicy::Shed`](crate::OverflowPolicy).
    pub shed: usize,
}

/// A runtime single-consumer violation: two distinct processes read the
/// same channel. Kahn determinism is void once this happens — the second
/// reader steals messages the first one's history depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerViolation {
    /// The channel read by two processes.
    pub chan: Chan,
    /// Name of the first reader.
    pub first: String,
    /// Name of the offending second reader.
    pub second: String,
}

impl fmt::Display for ConsumerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} consumed by both `{}` and `{}`",
            self.chan, self.first, self.second
        )
    }
}

/// The full structured result of a network run: the [`RunResult`] fields
/// plus per-process and per-channel telemetry, injected faults, and
/// recoveries.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced — the boolean view of
    /// [`status`](RunReport::status), kept for ergonomic checks.
    pub quiescent: bool,
    /// How the run ended.
    pub status: RunStatus,
    /// Progress-making steps performed.
    pub steps: usize,
    /// Scheduler rounds completed.
    pub rounds: usize,
    /// Per-process telemetry, in network insertion order.
    pub processes: Vec<ProcessReport>,
    /// Per-channel telemetry, ordered by channel id.
    pub channels: Vec<ChannelReport>,
    /// Runtime single-consumer violations, in detection order (at most
    /// one per ordered reader pair per channel).
    pub consumer_violations: Vec<ConsumerViolation>,
    /// Every injected fault event, in injection order, attributed to its
    /// source.
    pub faults: Vec<FaultRecord>,
    /// Every completed supervisor recovery, in completion order.
    pub recoveries: Vec<RecoveryRecord>,
}

impl RunReport {
    /// Collapses the report into the minimal [`RunResult`].
    pub fn into_result(self) -> RunResult {
        RunResult {
            trace: self.trace,
            quiescent: self.quiescent,
            status: self.status,
            steps: self.steps,
        }
    }

    /// The minimal [`RunResult`] view (cloning the trace).
    pub fn result(&self) -> RunResult {
        RunResult {
            trace: self.trace.clone(),
            quiescent: self.quiescent,
            status: self.status.clone(),
            steps: self.steps,
        }
    }

    /// Telemetry for channel `c`, if it ever carried or queued a message.
    pub fn channel(&self, c: Chan) -> Option<&ChannelReport> {
        self.channels.iter().find(|r| r.chan == c)
    }

    /// Processes starved for at least `rounds` consecutive rounds.
    pub fn starved(&self, rounds: usize) -> Vec<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds >= rounds)
            .collect()
    }

    /// Every injected fault event, in injection order — a convicting run
    /// names the exact perturbations alongside the violated equation.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// The bottleneck: among processes that idled with input waiting
    /// (starved) or were refused sends on a full channel (send-blocked),
    /// crashed ones first (a dead process with queued input *is* the
    /// blockage), then the longest starvation-or-blocked streak, ties
    /// broken towards more idle steps. `None` when no process was ever
    /// starved or flow-controlled — an idle process without waiting input
    /// is merely done, not stuck. A flow-controlled producer is reported
    /// as *send-blocked*, never misfiled as idle/starved.
    pub fn bottleneck(&self) -> Option<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds > 0 || p.max_blocked_rounds > 0)
            .max_by_key(|p| {
                (
                    p.crashed,
                    p.max_starved_rounds.max(p.max_blocked_rounds),
                    p.idle,
                )
            })
    }

    /// True iff no runtime single-consumer violation was observed.
    pub fn single_consumer_ok(&self) -> bool {
        self.consumer_violations.is_empty()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} after {} steps in {} rounds",
            self.status, self.steps, self.rounds
        )?;
        for p in &self.processes {
            write!(
                f,
                "  process `{}`: {} progress / {} idle",
                p.name, p.progress, p.idle
            )?;
            if p.max_starved_rounds > 0 {
                write!(f, " (starved ≤ {} rounds)", p.max_starved_rounds)?;
            }
            if p.send_blocked > 0 {
                write!(
                    f,
                    " (send-blocked {}× ≤ {} rounds)",
                    p.send_blocked, p.max_blocked_rounds
                )?;
            }
            if p.restarts > 0 {
                write!(f, " (restarted {}×)", p.restarts)?;
            }
            if p.crashed {
                write!(f, " [CRASHED]")?;
            }
            writeln!(f)?;
        }
        for c in &self.channels {
            write!(
                f,
                "  channel {}: {} sent / {} received, high-water {}, residual {}",
                c.chan, c.sends, c.receives, c.high_water, c.residual
            )?;
            if let Some(cap) = c.capacity {
                write!(f, ", capacity {cap}")?;
            }
            if c.blocked_sends > 0 {
                write!(f, ", {} blocked sends", c.blocked_sends)?;
            }
            if c.shed > 0 {
                write!(f, ", {} shed", c.shed)?;
            }
            match &c.consumer {
                Some(name) => writeln!(f, ", consumer `{name}`")?,
                None => writeln!(f, ", no consumer")?,
            }
        }
        match self.bottleneck() {
            Some(p) if p.crashed => writeln!(
                f,
                "  bottleneck: `{}` crashed with input waiting ({} rounds)",
                p.name, p.max_starved_rounds
            )?,
            Some(p) if p.max_blocked_rounds > p.max_starved_rounds => writeln!(
                f,
                "  bottleneck: `{}` send-blocked for {} consecutive rounds (backpressure, not idleness)",
                p.name, p.max_blocked_rounds
            )?,
            Some(p) => writeln!(
                f,
                "  bottleneck: `{}` starved for {} consecutive rounds with input waiting",
                p.name, p.max_starved_rounds
            )?,
            None => writeln!(f, "  bottleneck: none")?,
        }
        for r in &self.recoveries {
            writeln!(f, "  recovery: {r}")?;
        }
        for rec in &self.faults {
            writeln!(f, "  fault: {rec}")?;
        }
        for v in &self.consumer_violations {
            writeln!(f, "  WARNING: {v}")?;
        }
        Ok(())
    }
}

/// Per-channel counters accumulated during a run (crate-internal; folded
/// into [`ChannelReport`]s when the run ends).
#[derive(Debug, Default, Clone)]
pub(crate) struct ChannelCounters {
    pub(crate) sends: usize,
    pub(crate) receives: usize,
    pub(crate) high_water: usize,
    /// Index of the first process that read the channel.
    pub(crate) consumer: Option<usize>,
    /// Send attempts refused because the channel was at capacity.
    pub(crate) blocked: usize,
    /// Messages shed at capacity under `OverflowPolicy::Shed`.
    pub(crate) shed: usize,
}

/// Who injected a fault event (resolved to a name when the report is
/// built).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultSource {
    /// The process at this index (a [`FaultyLink`](crate::FaultyLink) or
    /// custom fault process calling
    /// [`StepCtx::note_fault`](crate::StepCtx::note_fault)).
    Proc(usize),
    /// An engine-interposed link on this channel.
    Link(Chan),
}

/// Run-wide telemetry accumulator threaded through [`crate::StepCtx`].
/// `Clone` so a [`Checkpoint`](crate::snapshot::Checkpoint) can carry the
/// meters mid-run.
#[derive(Debug, Default, Clone)]
pub(crate) struct Telemetry {
    pub(crate) channels: BTreeMap<Chan, ChannelCounters>,
    /// `(chan, first reader index, second reader index)` — deduplicated.
    pub(crate) violations: Vec<(Chan, usize, usize)>,
    /// Injected fault events, in injection order.
    pub(crate) faults: Vec<(FaultSource, FaultEvent)>,
}

impl Telemetry {
    /// Records that process `reader` read (popped or peeked) channel `c`.
    pub(crate) fn note_consumer(&mut self, c: Chan, reader: usize) {
        let counters = self.channels.entry(c).or_default();
        match counters.consumer {
            None => counters.consumer = Some(reader),
            Some(first) if first != reader => {
                if !self
                    .violations
                    .iter()
                    .any(|&(vc, _, second)| vc == c && second == reader)
                {
                    self.violations.push((c, first, reader));
                }
            }
            Some(_) => {}
        }
    }

    /// Records a send on `c` that left the queue at depth `depth`.
    pub(crate) fn note_send(&mut self, c: Chan, depth: usize) {
        let counters = self.channels.entry(c).or_default();
        counters.sends += 1;
        counters.high_water = counters.high_water.max(depth);
    }

    /// Records a successful pop from `c`.
    pub(crate) fn note_receive(&mut self, c: Chan) {
        self.channels.entry(c).or_default().receives += 1;
    }

    /// Records preloaded messages on `c` (count towards high-water but
    /// not towards sends — preloads are environment input outside the
    /// trace).
    pub(crate) fn note_preload(&mut self, c: Chan, depth: usize) {
        let counters = self.channels.entry(c).or_default();
        counters.high_water = counters.high_water.max(depth);
    }

    /// Records a fault injected by the process at index `who`.
    pub(crate) fn note_proc_fault(&mut self, who: usize, event: FaultEvent) {
        self.faults.push((FaultSource::Proc(who), event));
    }

    /// Records a fault injected by the engine-interposed link on `c`.
    pub(crate) fn note_link_fault(&mut self, c: Chan, event: FaultEvent) {
        self.faults.push((FaultSource::Link(c), event));
    }

    /// Records a send refused because `c` was at capacity.
    pub(crate) fn note_blocked_send(&mut self, c: Chan) {
        self.channels.entry(c).or_default().blocked += 1;
    }

    /// Records a message shed at capacity on `c`; returns the running
    /// shed count (used as the fault-event sequence number).
    pub(crate) fn note_shed(&mut self, c: Chan) -> usize {
        let counters = self.channels.entry(c).or_default();
        counters.shed += 1;
        counters.shed
    }
}
