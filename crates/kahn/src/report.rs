//! Structured run telemetry: what each process and channel did during a
//! run, who the bottleneck was, and whether the single-consumer
//! discipline held at runtime.
//!
//! [`RunReport`] extends the minimal [`RunResult`]
//! (trace + quiescence + step count) with per-process progress/idle
//! counters, starvation streaks (a process repeatedly offered a step
//! while input waits on one of its declared channels, yet reporting
//! idle), per-channel send/receive counts and queue-depth high-water
//! marks, and runtime-detected single-consumer violations — the
//! operational observability layer the paper's quiescent-trace semantics
//! leaves implicit.

use crate::network::RunResult;
use eqp_trace::{Chan, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Telemetry for one process over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessReport {
    /// The process's diagnostic name.
    pub name: String,
    /// Steps in which the process made progress.
    pub progress: usize,
    /// Steps in which the process was offered a turn but stayed idle.
    pub idle: usize,
    /// Longest streak of consecutive rounds the process stayed idle
    /// *while at least one of its declared input channels had messages
    /// waiting* — the operational signature of starvation. Processes
    /// that declare no [`inputs`](crate::Process::inputs) always report
    /// zero.
    pub max_starved_rounds: usize,
}

/// Telemetry for one channel over a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// The channel.
    pub chan: Chan,
    /// Messages sent on the channel (including faulty duplicates).
    pub sends: usize,
    /// Messages consumed from the channel via [`pop`](crate::StepCtx::pop).
    pub receives: usize,
    /// Highest queue depth observed immediately after a send or preload.
    pub high_water: usize,
    /// Messages still queued when the run ended (sent or preloaded but
    /// never consumed).
    pub residual: usize,
    /// Name of the first process that read (popped or peeked) the
    /// channel, if any.
    pub consumer: Option<String>,
}

/// A runtime single-consumer violation: two distinct processes read the
/// same channel. Kahn determinism is void once this happens — the second
/// reader steals messages the first one's history depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerViolation {
    /// The channel read by two processes.
    pub chan: Chan,
    /// Name of the first reader.
    pub first: String,
    /// Name of the offending second reader.
    pub second: String,
}

impl fmt::Display for ConsumerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} consumed by both `{}` and `{}`",
            self.chan, self.first, self.second
        )
    }
}

/// The full structured result of a network run: the [`RunResult`] fields
/// plus per-process and per-channel telemetry.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced — no process could make further
    /// progress (the step bound is probed, so a network that quiesces in
    /// exactly `max_steps` steps still reports `true`).
    pub quiescent: bool,
    /// Progress-making steps performed.
    pub steps: usize,
    /// Scheduler rounds completed.
    pub rounds: usize,
    /// Per-process telemetry, in network insertion order.
    pub processes: Vec<ProcessReport>,
    /// Per-channel telemetry, ordered by channel id.
    pub channels: Vec<ChannelReport>,
    /// Runtime single-consumer violations, in detection order (at most
    /// one per ordered reader pair per channel).
    pub consumer_violations: Vec<ConsumerViolation>,
}

impl RunReport {
    /// Collapses the report into the minimal [`RunResult`].
    pub fn into_result(self) -> RunResult {
        RunResult {
            trace: self.trace,
            quiescent: self.quiescent,
            steps: self.steps,
        }
    }

    /// The minimal [`RunResult`] view (cloning the trace).
    pub fn result(&self) -> RunResult {
        RunResult {
            trace: self.trace.clone(),
            quiescent: self.quiescent,
            steps: self.steps,
        }
    }

    /// Telemetry for channel `c`, if it ever carried or queued a message.
    pub fn channel(&self, c: Chan) -> Option<&ChannelReport> {
        self.channels.iter().find(|r| r.chan == c)
    }

    /// Processes starved for at least `rounds` consecutive rounds.
    pub fn starved(&self, rounds: usize) -> Vec<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds >= rounds)
            .collect()
    }

    /// The bottleneck: the process with the longest starvation streak
    /// (ties broken towards more idle steps). `None` when no process was
    /// ever starved — an idle process without waiting input is merely
    /// done, not stuck.
    pub fn bottleneck(&self) -> Option<&ProcessReport> {
        self.processes
            .iter()
            .filter(|p| p.max_starved_rounds > 0)
            .max_by_key(|p| (p.max_starved_rounds, p.idle))
    }

    /// True iff no runtime single-consumer violation was observed.
    pub fn single_consumer_ok(&self) -> bool {
        self.consumer_violations.is_empty()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} after {} steps in {} rounds",
            if self.quiescent {
                "quiescent"
            } else {
                "step bound hit"
            },
            self.steps,
            self.rounds
        )?;
        for p in &self.processes {
            write!(
                f,
                "  process `{}`: {} progress / {} idle",
                p.name, p.progress, p.idle
            )?;
            if p.max_starved_rounds > 0 {
                write!(f, " (starved ≤ {} rounds)", p.max_starved_rounds)?;
            }
            writeln!(f)?;
        }
        for c in &self.channels {
            write!(
                f,
                "  channel {}: {} sent / {} received, high-water {}, residual {}",
                c.chan, c.sends, c.receives, c.high_water, c.residual
            )?;
            match &c.consumer {
                Some(name) => writeln!(f, ", consumer `{name}`")?,
                None => writeln!(f, ", no consumer")?,
            }
        }
        match self.bottleneck() {
            Some(p) => writeln!(
                f,
                "  bottleneck: `{}` starved for {} consecutive rounds with input waiting",
                p.name, p.max_starved_rounds
            )?,
            None => writeln!(f, "  bottleneck: none")?,
        }
        for v in &self.consumer_violations {
            writeln!(f, "  WARNING: {v}")?;
        }
        Ok(())
    }
}

/// Per-channel counters accumulated during a run (crate-internal; folded
/// into [`ChannelReport`]s when the run ends).
#[derive(Debug, Default, Clone)]
pub(crate) struct ChannelCounters {
    pub(crate) sends: usize,
    pub(crate) receives: usize,
    pub(crate) high_water: usize,
    /// Index of the first process that read the channel.
    pub(crate) consumer: Option<usize>,
}

/// Run-wide telemetry accumulator threaded through [`crate::StepCtx`].
#[derive(Debug, Default)]
pub(crate) struct Telemetry {
    pub(crate) channels: BTreeMap<Chan, ChannelCounters>,
    /// `(chan, first reader index, second reader index)` — deduplicated.
    pub(crate) violations: Vec<(Chan, usize, usize)>,
}

impl Telemetry {
    /// Records that process `reader` read (popped or peeked) channel `c`.
    pub(crate) fn note_consumer(&mut self, c: Chan, reader: usize) {
        let counters = self.channels.entry(c).or_default();
        match counters.consumer {
            None => counters.consumer = Some(reader),
            Some(first) if first != reader => {
                if !self
                    .violations
                    .iter()
                    .any(|&(vc, _, second)| vc == c && second == reader)
                {
                    self.violations.push((c, first, reader));
                }
            }
            Some(_) => {}
        }
    }

    /// Records a send on `c` that left the queue at depth `depth`.
    pub(crate) fn note_send(&mut self, c: Chan, depth: usize) {
        let counters = self.channels.entry(c).or_default();
        counters.sends += 1;
        counters.high_water = counters.high_water.max(depth);
    }

    /// Records a successful pop from `c`.
    pub(crate) fn note_receive(&mut self, c: Chan) {
        self.channels.entry(c).or_default().receives += 1;
    }

    /// Records preloaded messages on `c` (count towards high-water but
    /// not towards sends — preloads are environment input outside the
    /// trace).
    pub(crate) fn note_preload(&mut self, c: Chan, depth: usize) {
        let counters = self.channels.entry(c).or_default();
        counters.high_water = counters.high_water.max(depth);
    }
}
