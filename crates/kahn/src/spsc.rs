//! Bounded lock-free single-producer/single-consumer rings — the
//! cross-shard edges of the sharded runtime ([`crate::shard`]).
//!
//! Each worker thread is connected to the coordinator by exactly two
//! rings: a command ring (coordinator → worker: epoch plans with their
//! cross-shard deliveries, snapshot requests, shutdown) and a result ring
//! (worker → coordinator: per-slot step results streamed back as they
//! complete). One producer, one consumer, fixed capacity — so a single
//! release/acquire pair per operation suffices and neither side ever
//! takes a lock.
//!
//! # Algorithm
//!
//! The classic Lamport SPSC queue with monotonically increasing indices:
//! `tail` counts items ever pushed, `head` items ever popped, and slot
//! `i % capacity` holds item `i`. The producer owns `tail` (it is the
//! only writer), the consumer owns `head`; each side keeps a cached copy
//! of the other's index and refreshes it (Acquire) only when the cache
//! says full/empty. A push writes the slot *then* publishes `tail`
//! (Release), so the matching Acquire load on the consumer side orders
//! the slot write before the read — the only unsafe reasoning in the
//! crate, spelled out at each site.
//!
//! The exhaustive-interleaving model check in `tests/shard_model.rs`
//! enumerates every schedule of the algorithm's atomic micro-steps and
//! proves FIFO delivery with no loss, duplication, or slot collision;
//! real-thread stress tests cover the compiled artifact.

// The one module allowed to drop below the crate's `#![deny(unsafe_code)]`
// line: the ring's slot accesses cannot be expressed safely without
// `UnsafeCell`, and every unsafe block carries its SAFETY argument.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An index on its own cache line, so the producer's `tail` stores never
/// invalidate the line the consumer's `head` lives on (and vice versa).
#[repr(align(64))]
struct Padded(AtomicUsize);

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Items ever popped; slot of the next pop is `head % capacity`.
    head: Padded,
    /// Items ever pushed; slot of the next push is `tail % capacity`.
    tail: Padded,
}

// SAFETY: `Inner` is shared between exactly one producer and one consumer
// (the only way to obtain handles is `ring`, and neither handle is Clone).
// The producer writes only slots in `head..tail` ∉ use by the consumer
// (it checks `tail - head < capacity` against an Acquire-loaded `head`
// before writing), and the consumer reads a slot only after the
// producer's Release store of `tail` published it. With `T: Send` the
// value itself may cross the thread boundary.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner now (both handles gone): drop the in-flight items.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let cap = self.buf.len();
        for i in head..tail {
            // SAFETY: slots in `head..tail` were written by a push and
            // not yet consumed by a pop, so each holds an initialized T.
            unsafe { (*self.buf[i % cap].get()).assume_init_drop() };
        }
    }
}

/// The sending half of a ring (exactly one exists per ring).
pub struct Spsc<T> {
    inner: Arc<Inner<T>>,
    /// Producer-local copy of `tail` (authoritative — only we write it).
    tail: usize,
    /// Cached view of the consumer's `head`; refreshed on apparent full.
    head_cache: usize,
}

/// The receiving half of a ring (exactly one exists per ring).
pub struct SpscReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Consumer-local copy of `head` (authoritative — only we write it).
    head: usize,
    /// Cached view of the producer's `tail`; refreshed on apparent empty.
    tail_cache: usize,
}

/// Creates a bounded SPSC ring with room for `capacity` in-flight items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T: Send>(capacity: usize) -> (Spsc<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "ring capacity must be at least 1");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        head: Padded(AtomicUsize::new(0)),
        tail: Padded(AtomicUsize::new(0)),
    });
    (
        Spsc {
            inner: Arc::clone(&inner),
            tail: 0,
            head_cache: 0,
        },
        SpscReceiver {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T: Send> Spsc<T> {
    /// Attempts a push; returns the value back if the ring is full.
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        let cap = self.inner.buf.len();
        if self.tail - self.head_cache == cap {
            self.head_cache = self.inner.head.0.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(v);
            }
        }
        // SAFETY: `tail - head < capacity` (checked against an Acquire
        // load of `head`, which the consumer only advances past slots it
        // has finished reading), so slot `tail % cap` is not aliased by
        // the consumer. We are the only producer, so no other writer.
        unsafe { (*self.inner.buf[self.tail % cap].get()).write(v) };
        self.tail += 1;
        // Release: publishes the slot write *before* the new tail becomes
        // visible to the consumer's Acquire load.
        self.inner.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Pushes, spinning (with yields) while the ring is full. The
    /// coordinator drains every result it asked for, so the wait is
    /// always bounded by the in-flight epoch.
    pub fn push(&mut self, v: T) {
        let mut v = v;
        let mut spins = 0u32;
        loop {
            match self.try_push(v) {
                Ok(()) => return,
                Err(back) => {
                    v = back;
                    backoff(&mut spins);
                }
            }
        }
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Attempts a pop; `None` if the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let cap = self.inner.buf.len();
        // SAFETY: `head < tail` where `tail` was Acquire-loaded, so the
        // producer's Release store ordered the slot write of item `head`
        // before our load — the slot holds an initialized T that the
        // producer will not touch again until we advance `head` past it.
        let v = unsafe { (*self.inner.buf[self.head % cap].get()).assume_init_read() };
        self.head += 1;
        // Release: the producer may reuse the slot only after seeing this.
        self.inner.head.0.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Pops, spinning (with yields) while the ring is empty.
    pub fn pop(&mut self) -> T {
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.try_pop() {
                return v;
            }
            backoff(&mut spins);
        }
    }
}

/// Spin a little, then start yielding the time slice — the rings carry
/// epoch-granular traffic, so waits are short but not nanosecond-short.
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert!(rx.try_pop().is_none());
        for i in 0..4 {
            tx.try_push(i).expect("room");
        }
        assert!(tx.try_push(99).is_err(), "full at capacity");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.try_pop().is_none());
        // wrap-around reuses slots correctly
        for round in 0..10u32 {
            tx.try_push(round).expect("room after drain");
            assert_eq!(rx.try_pop(), Some(round));
        }
    }

    #[test]
    fn cross_thread_fifo_stress() {
        let (mut tx, mut rx) = ring::<u64>(8);
        const N: u64 = 100_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    tx.push(i);
                }
            });
            for i in 0..N {
                assert_eq!(rx.pop(), i, "FIFO order violated");
            }
        });
    }

    #[test]
    fn drop_reclaims_in_flight_items() {
        // leak-checked indirectly: Arc payloads dropped exactly once
        let payload = std::sync::Arc::new(());
        {
            let (mut tx, rx) = ring::<std::sync::Arc<()>>(4);
            tx.try_push(Arc::clone(&payload)).expect("room");
            tx.try_push(Arc::clone(&payload)).expect("room");
            drop(tx);
            drop(rx);
        }
        assert_eq!(std::sync::Arc::strong_count(&payload), 1);
    }
}
