//! A [`HashMap`] keyed by [`Chan`] with a trivial multiplicative hasher.
//!
//! Channel queues are the engine's hottest data structure: every step
//! pays several `Chan → queue` lookups, and the sharded runtime's
//! commit protocol multiplies that (local queues, the canonical mirror,
//! consumer routing). `Chan` is a dense application-chosen `u32`, so
//! SipHash's DoS resistance buys nothing here and costs ~15ns per
//! lookup; a Fibonacci multiply-and-fold spreads sequential ids across
//! buckets just as well for ~1ns.
//!
//! The map stays a `std::collections::HashMap`, only the `BuildHasher`
//! changes — nothing may depend on iteration order in either case (the
//! default `RandomState` already randomizes it per map).

use eqp_trace::Chan;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// `HashMap<Chan, V>` with the cheap deterministic hasher. Construct
/// with `ChanMap::default()` (`HashMap::new` is `RandomState`-only).
pub(crate) type ChanMap<V> = HashMap<Chan, V, BuildChanHash>;

/// [`BuildHasher`] for [`ChanHash`]; stateless, so hashes are identical
/// across maps and runs.
#[derive(Clone, Copy, Default)]
pub(crate) struct BuildChanHash;

impl BuildHasher for BuildChanHash {
    type Hasher = ChanHash;

    fn build_hasher(&self) -> ChanHash {
        ChanHash(0)
    }
}

/// Multiply-and-fold over the key's words (Fibonacci constant, golden
/// ratio of 2^64). `Chan`'s derived `Hash` emits one `write_u32`; the
/// byte-stream fallback exists only for completeness.
pub(crate) struct ChanHash(u64);

impl Hasher for ChanHash {
    fn finish(&self) -> u64 {
        // fold the high bits down: hashbrown derives the bucket index
        // from the low bits and its control tag from the high bits, so
        // both must vary with the key
        self.0 ^ (self.0 >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_spread_and_lookups_roundtrip() {
        let mut m: ChanMap<usize> = ChanMap::default();
        for i in 0..1000u32 {
            m.insert(Chan::new(i), i as usize);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&Chan::new(i)), Some(&(i as usize)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic_across_builders() {
        let h = |c: Chan| BuildChanHash.hash_one(c);
        assert_eq!(h(Chan::new(7)), h(Chan::new(7)));
        assert_ne!(h(Chan::new(7)), h(Chan::new(8)));
    }
}
