//! The operational ⇄ denotational conformance bridge.
//!
//! The paper's Theorems 2 and 4 say that the quiescent traces of a
//! network are exactly the smooth solutions of its description `f ⟸ g`,
//! and that every finite computation is a smooth *prefix* on the way to
//! one. This module makes that claim executable: feed any run result and
//! the network's [`Description`] to [`check`], and the trace is projected
//! onto the description's channels and pushed through
//! [`eqp_core::diagnose`]:
//!
//! * a **quiescent** run must satisfy both the smoothness condition
//!   (every step's output justified by prior input: `f(v) ⊑ g(u)` for
//!   all `u pre v`) *and* the limit condition `f(t) = g(t)` — verdict
//!   [`Verdict::SmoothSolution`];
//! * a run cut by the step bound must satisfy smoothness but is excused
//!   from the limit — verdict [`Verdict::SmoothPrefix`];
//! * anything else is a violation with the failing component equation
//!   named — the bridge is exactly how the fault injection tests
//!   ([`crate::faults`]) detect dropped or duplicated messages.

use crate::network::RunResult;
use crate::report::RunReport;
use eqp_core::diagnose::{diagnose, SmoothReport};
use eqp_core::smooth::default_certificate_depth;
use eqp_core::Description;
use eqp_trace::lasso::Length;
use eqp_trace::{ChanSet, Trace};
use std::fmt;

/// Options for a conformance check.
#[derive(Debug, Clone, Default)]
pub struct ConformanceOptions {
    /// Project the trace onto these channels before checking; `None`
    /// projects onto the description's own channels (the common case —
    /// auxiliary wiring channels are invisible to the description).
    pub visible: Option<ChanSet>,
}

/// Outcome of checking one run against one description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Quiescent and both smooth-solution conditions hold: the trace *is*
    /// a smooth solution (Theorem 2's forward direction, observed).
    SmoothSolution,
    /// The run was cut by the step bound; the trace satisfies smoothness,
    /// so it lies on the way to a smooth solution (Theorem 4).
    SmoothPrefix,
    /// Some step emitted output its inputs did not justify: `f(v) ⋢ g(u)`
    /// in the named component equation.
    SmoothnessViolation {
        /// Index of the violating component equation.
        component: usize,
    },
    /// The run quiesced but the limit condition `f(t) = g(t)` fails in
    /// the named component equations — messages went missing or appeared
    /// from nowhere (drops, duplicates, crashes).
    LimitViolation {
        /// Indices of the failing component equations.
        components: Vec<usize>,
    },
    /// A reliable link ([`crate::reliable`]) exhausted its retry budget
    /// and the run degraded: it terminated cleanly and the delivered
    /// history is still smooth, but the abandoned tail means the trace is
    /// a *prefix*, not a complete solution. Named after the exhausted
    /// link so overload triage starts at the right channel.
    Degraded {
        /// Diagnostic name of the exhausted link (`arq@<chan>`).
        link: String,
    },
}

/// The result of a conformance check: the verdict plus the underlying
/// diagnostic report and enough context to display an actionable message.
#[derive(Debug, Clone)]
pub struct Conformance {
    /// The description's name.
    pub description: String,
    /// The verdict.
    pub verdict: Verdict,
    /// The full smooth-solution diagnostic underlying the verdict.
    pub report: SmoothReport,
    /// Whether the checked run was quiescent.
    pub quiescent: bool,
    /// The projected trace that was actually checked.
    pub checked: Trace,
    /// Rendered component equations, aligned with component indices.
    pub(crate) equations: Vec<String>,
}

impl Conformance {
    /// True iff the run conforms: a certified smooth solution, or a
    /// certified smooth prefix of one.
    pub fn is_conformant(&self) -> bool {
        matches!(
            self.verdict,
            Verdict::SmoothSolution | Verdict::SmoothPrefix
        )
    }

    /// True iff the run is a certified *complete* smooth solution.
    pub fn is_solution(&self) -> bool {
        self.verdict == Verdict::SmoothSolution
    }

    /// The first failing component equation's index, if any.
    pub fn failing_component(&self) -> Option<usize> {
        match &self.verdict {
            Verdict::SmoothnessViolation { component } => Some(*component),
            Verdict::LimitViolation { components } => components.first().copied(),
            _ => None,
        }
    }

    /// The rendered `f_k ⟸ g_k` text of component `k`.
    pub fn component_equation(&self, k: usize) -> Option<&str> {
        self.equations.get(k).map(String::as_str)
    }
}

impl fmt::Display for Conformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::SmoothSolution => write!(
                f,
                "conformance(`{}`): certified smooth solution (quiescent trace {})",
                self.description, self.checked
            ),
            Verdict::SmoothPrefix => write!(
                f,
                "conformance(`{}`): certified smooth prefix (step bound hit before quiescence; trace {})",
                self.description, self.checked
            ),
            Verdict::SmoothnessViolation { component } => {
                writeln!(
                    f,
                    "conformance(`{}`): SMOOTHNESS VIOLATION in component {} (`{}`)",
                    self.description,
                    component,
                    self.equations
                        .get(*component)
                        .map_or("?", String::as_str)
                )?;
                write!(f, "{}", self.report)
            }
            Verdict::LimitViolation { components } => {
                let named: Vec<String> = components
                    .iter()
                    .map(|k| {
                        format!(
                            "{} (`{}`)",
                            k,
                            self.equations.get(*k).map_or("?", String::as_str)
                        )
                    })
                    .collect();
                writeln!(
                    f,
                    "conformance(`{}`): LIMIT VIOLATION at quiescence in component(s) {}",
                    self.description,
                    named.join(", ")
                )?;
                write!(f, "{}", self.report)
            }
            Verdict::Degraded { link } => write!(
                f,
                "conformance(`{}`): DEGRADED — reliable link `{}` exhausted its retry \
                 budget; the delivered history is a certified smooth prefix (trace {})",
                self.description, link, self.checked
            ),
        }
    }
}

/// Derives the verdict from a diagnostic report and the quiescence flag —
/// the single derivation shared by the post-hoc checkers and the online
/// [`SmoothnessMonitor`](crate::monitor::SmoothnessMonitor), so the two
/// paths agree by construction.
pub(crate) fn verdict_from_report(report: &SmoothReport, quiescent: bool) -> Verdict {
    if let Some(v) = &report.violation {
        return Verdict::SmoothnessViolation {
            component: v.component,
        };
    }
    if quiescent {
        let failing: Vec<usize> = report
            .limits
            .iter()
            .filter(|l| !l.holds)
            .map(|l| l.component)
            .collect();
        if failing.is_empty() {
            Verdict::SmoothSolution
        } else {
            Verdict::LimitViolation {
                components: failing,
            }
        }
    } else {
        Verdict::SmoothPrefix
    }
}

/// Renders the component equations `f_k ⟸ g_k`, aligned with component
/// indices — shared with the online monitor.
pub(crate) fn render_equations(desc: &Description) -> Vec<String> {
    desc.equations_rendered().to_vec()
}

/// Checks a raw trace (with its quiescence flag) against a description.
///
/// The trace is projected onto `opts.visible` (default: the
/// description's channels), smoothness is checked through every prefix
/// pair of the finite projection, and — for quiescent runs — the limit
/// condition is evaluated.
///
/// Fast path: when no explicit `visible` set is given and every channel
/// the trace carries is already one of the description's, the projection
/// is the identity and the clone-per-event rebuild is skipped.
pub fn check_trace(
    desc: &Description,
    trace: &Trace,
    quiescent: bool,
    opts: &ConformanceOptions,
) -> Conformance {
    let keep = opts.visible.clone().unwrap_or_else(|| desc.channels());
    let projected = if opts.visible.is_none() && trace.channels().is_subset(&keep) {
        None
    } else {
        Some(trace.project(&keep))
    };
    let t = projected.as_ref().unwrap_or(trace);
    let depth = match t.len() {
        Length::Finite(n) => n,
        Length::Infinite => default_certificate_depth(desc, t),
    };
    let report = diagnose(desc, t, depth);
    let verdict = verdict_from_report(&report, quiescent);
    Conformance {
        description: desc.name().to_owned(),
        verdict,
        report,
        quiescent,
        checked: projected.unwrap_or_else(|| trace.clone()),
        equations: render_equations(desc),
    }
}

/// Checks a [`RunResult`] against a description.
pub fn check(desc: &Description, run: &RunResult, opts: &ConformanceOptions) -> Conformance {
    check_trace(desc, &run.trace, run.quiescent, opts)
}

/// Checks a telemetry [`RunReport`] against a description.
///
/// Status-aware: a run that ended in
/// [`RunStatus::ReliabilityExhausted`](crate::RunStatus) terminated
/// cleanly but abandoned an undelivered tail, so its history is checked
/// as a *prefix* (not against the limit condition) and a passing check is
/// reported as [`Verdict::Degraded`] naming the exhausted link — smooth
/// violations still convict as usual.
pub fn check_report(desc: &Description, run: &RunReport, opts: &ConformanceOptions) -> Conformance {
    if let crate::report::RunStatus::ReliabilityExhausted { link } = &run.status {
        let mut conf = check_trace(desc, &run.trace, false, opts);
        if conf.verdict == Verdict::SmoothPrefix {
            conf.verdict = Verdict::Degraded { link: link.clone() };
        }
        return conf;
    }
    check_trace(desc, &run.trace, run.quiescent, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqp_seqfn::paper::{ch, even, odd};
    use eqp_trace::{Chan, Event};

    fn b() -> Chan {
        Chan::new(0)
    }
    fn c() -> Chan {
        Chan::new(1)
    }
    fn d() -> Chan {
        Chan::new(2)
    }

    fn dfm() -> Description {
        Description::new("dfm")
            .equation(even(ch(d())), ch(b()))
            .equation(odd(ch(d())), ch(c()))
    }

    fn good_trace() -> Trace {
        Trace::finite(vec![
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
            Event::int(d(), 21),
        ])
    }

    #[test]
    fn quiescent_solution_certified() {
        let conf = check_trace(&dfm(), &good_trace(), true, &ConformanceOptions::default());
        assert_eq!(conf.verdict, Verdict::SmoothSolution);
        assert!(conf.is_conformant() && conf.is_solution());
        assert!(conf.to_string().contains("certified smooth solution"));
    }

    #[test]
    fn cut_run_certified_as_prefix() {
        let t = Trace::finite(vec![
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
        ]);
        let conf = check_trace(&dfm(), &t, false, &ConformanceOptions::default());
        assert_eq!(conf.verdict, Verdict::SmoothPrefix);
        assert!(conf.is_conformant() && !conf.is_solution());
    }

    #[test]
    fn missing_output_is_limit_violation_with_named_component() {
        // quiescent but d never echoed c's message: odd-equation limit fails
        let t = Trace::finite(vec![
            Event::int(b(), 10),
            Event::int(c(), 21),
            Event::int(d(), 10),
        ]);
        let conf = check_trace(&dfm(), &t, true, &ConformanceOptions::default());
        assert_eq!(
            conf.verdict,
            Verdict::LimitViolation {
                components: vec![1]
            }
        );
        assert_eq!(conf.failing_component(), Some(1));
        let shown = conf.to_string();
        assert!(shown.contains("LIMIT VIOLATION"));
        assert!(shown.contains("odd"), "names the failing equation: {shown}");
    }

    #[test]
    fn unjustified_output_is_smoothness_violation() {
        // d speaks before any input justified it
        let t = Trace::finite(vec![Event::int(d(), 10), Event::int(b(), 10)]);
        let conf = check_trace(&dfm(), &t, false, &ConformanceOptions::default());
        assert!(matches!(
            conf.verdict,
            Verdict::SmoothnessViolation { component: 0 }
        ));
        assert!(!conf.is_conformant());
        assert!(conf.to_string().contains("SMOOTHNESS VIOLATION"));
    }

    #[test]
    fn projection_hides_auxiliary_channels() {
        // an extra wiring channel outside the description must not affect
        // the verdict
        let mut events = good_trace().events().unwrap().to_vec();
        events.insert(1, Event::int(Chan::new(99), 7));
        let t = Trace::finite(events);
        let conf = check_trace(&dfm(), &t, true, &ConformanceOptions::default());
        assert_eq!(conf.verdict, Verdict::SmoothSolution);
    }
}
