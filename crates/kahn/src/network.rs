//! Networks: processes wired by FIFO channels, run to quiescence.

use crate::process::{Process, StepCtx, StepResult};
use crate::report::{ChannelReport, ConsumerViolation, ProcessReport, RunReport, Telemetry};
use crate::scheduler::Scheduler;
use eqp_trace::{Chan, Event, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Options bounding a network run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Maximum total process steps (guards non-quiescing networks like
    /// Ticks).
    pub max_steps: usize,
    /// Seed for the in-process nondeterminism RNG ([`StepCtx::flip`]).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 10_000,
            seed: 0,
        }
    }
}

/// Result of a network run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced (no process can make further
    /// progress); false iff the step bound cut the run short. On hitting
    /// the bound the runner probes one extra zero-cost round, so a
    /// network that quiesces in exactly `max_steps` steps still reports
    /// `true`.
    pub quiescent: bool,
    /// Progress-making steps performed.
    pub steps: usize,
}

/// A dataflow network: a bag of processes communicating over unbounded
/// FIFO channels. Channels are implicit — any channel a process sends on
/// is queued for whoever reads it. Single-reader discipline is validated
/// statically at [`Network::add`] for processes that declare their
/// [`Process::inputs`], and dynamically by run telemetry (see
/// [`RunReport::consumer_violations`]).
#[derive(Default)]
pub struct Network {
    processes: Vec<Box<dyn Process>>,
    /// Set once `preload` converts this network into a
    /// [`PreloadedNetwork`]; guards against silently running the drained
    /// husk.
    drained: bool,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Adds a process.
    ///
    /// # Panics
    ///
    /// Panics if the process declares an input channel already consumed by
    /// a previously added process — Kahn networks require a single
    /// consumer per channel, and a second reader would silently steal
    /// messages.
    pub fn add<P: Process + 'static>(&mut self, p: P) -> &mut Network {
        for c in p.inputs() {
            for q in &self.processes {
                assert!(
                    !q.inputs().contains(&c),
                    "channel {c} already consumed by process `{}`; `{}` cannot also read it",
                    q.name(),
                    p.name()
                );
            }
        }
        self.processes.push(Box::new(p));
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True iff the network has no processes.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Pre-loads messages on a channel (environment input that is *not*
    /// recorded in the trace — prefer a `Source` process when the sends
    /// should appear in the history, as the paper's traces include them).
    ///
    /// Moves the processes into the returned [`PreloadedNetwork`]; load
    /// further channels by chaining [`PreloadedNetwork::preload`].
    ///
    /// # Panics
    ///
    /// Panics if this network was already converted by a previous
    /// `preload` call — the processes have moved, and running the
    /// leftover empty network would silently do nothing.
    pub fn preload<I: IntoIterator<Item = Value>>(
        &mut self,
        chan: Chan,
        values: I,
    ) -> PreloadedNetwork {
        self.preload_all([(chan, values.into_iter().collect::<Vec<Value>>())])
    }

    /// Pre-loads several channels at once from `(channel, values)` pairs.
    ///
    /// # Panics
    ///
    /// Panics under the same already-drained condition as
    /// [`Network::preload`].
    pub fn preload_all<I>(&mut self, pairs: I) -> PreloadedNetwork
    where
        I: IntoIterator<Item = (Chan, Vec<Value>)>,
    {
        assert!(
            !self.drained,
            "this Network was already converted by `preload`; chain `.preload(..)` \
             calls on the returned PreloadedNetwork instead"
        );
        self.drained = true;
        let mut pre = PreloadedNetwork {
            net: Network {
                processes: std::mem::take(&mut self.processes),
                drained: false,
            },
            queues: HashMap::new(),
        };
        for (chan, values) in pairs {
            pre.load(chan, values);
        }
        pre
    }

    /// Runs the network under `sched` until quiescence or the step bound.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        self.run_report(sched, opts).into_result()
    }

    /// Runs the network and returns the full telemetry [`RunReport`].
    pub fn run_report<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunReport {
        assert!(
            !self.drained,
            "this Network was drained by `preload`; run the PreloadedNetwork it returned"
        );
        run_with_queues(&mut self.processes, HashMap::new(), sched, opts)
    }
}

/// A network with pre-loaded channel contents (see [`Network::preload`]).
pub struct PreloadedNetwork {
    net: Network,
    queues: HashMap<Chan, VecDeque<Value>>,
}

impl PreloadedNetwork {
    /// Pre-loads further messages on another channel (or appends to an
    /// already-loaded one), consuming and returning `self` so loads
    /// chain: `net.preload(a, ..).preload(b, ..)`.
    #[must_use]
    pub fn preload<I: IntoIterator<Item = Value>>(
        mut self,
        chan: Chan,
        values: I,
    ) -> PreloadedNetwork {
        self.load(chan, values);
        self
    }

    fn load<I: IntoIterator<Item = Value>>(&mut self, chan: Chan, values: I) {
        self.queues.entry(chan).or_default().extend(values);
    }

    /// Runs the preloaded network.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        self.run_report(sched, opts).into_result()
    }

    /// Runs the preloaded network and returns the full [`RunReport`].
    pub fn run_report<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunReport {
        run_with_queues(
            &mut self.net.processes,
            std::mem::take(&mut self.queues),
            sched,
            opts,
        )
    }
}

/// Per-process counters tracked during a run.
#[derive(Default, Clone, Copy)]
struct ProcCounters {
    progress: usize,
    idle: usize,
    starve_streak: usize,
    max_starved: usize,
}

fn run_with_queues(
    processes: &mut [Box<dyn Process>],
    mut queues: HashMap<Chan, VecDeque<Value>>,
    sched: &mut dyn Scheduler,
    opts: RunOptions,
) -> RunReport {
    let n = processes.len();
    let mut trace: Vec<Event> = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut telemetry = Telemetry::default();
    let mut counters = vec![ProcCounters::default(); n];
    let declared: Vec<Vec<Chan>> = processes.iter().map(|p| p.inputs()).collect();
    for (c, q) in &queues {
        telemetry.note_preload(*c, q.len());
    }
    let mut steps = 0usize;
    let mut rounds = 0usize;
    loop {
        let mut progressed = false;
        for i in sched.round(n) {
            if steps >= opts.max_steps {
                let quiescent = probe_quiescent(processes, &mut queues, &mut trace, &mut rng);
                return build_report(
                    processes, trace, queues, telemetry, counters, quiescent, steps, rounds,
                );
            }
            let input_waiting = declared[i]
                .iter()
                .any(|c| queues.get(c).is_some_and(|q| !q.is_empty()));
            let mut ctx = StepCtx {
                queues: &mut queues,
                trace: &mut trace,
                rng: &mut rng,
                telemetry: Some(&mut telemetry),
                current: i,
            };
            match processes[i].step(&mut ctx) {
                StepResult::Progress => {
                    progressed = true;
                    steps += 1;
                    counters[i].progress += 1;
                    counters[i].starve_streak = 0;
                }
                StepResult::Idle => {
                    counters[i].idle += 1;
                    if input_waiting {
                        counters[i].starve_streak += 1;
                        counters[i].max_starved =
                            counters[i].max_starved.max(counters[i].starve_streak);
                    } else {
                        counters[i].starve_streak = 0;
                    }
                }
            }
        }
        rounds += 1;
        if !progressed {
            return build_report(
                processes, trace, queues, telemetry, counters, true, steps, rounds,
            );
        }
    }
}

/// Zero-cost quiescence probe at the step bound: offer every process one
/// step with telemetry off, then roll the channel state and trace back.
/// Returns true iff no process could make progress — i.e. the network had
/// already quiesced when the bound fired.
///
/// The rollback restores queues and trace exactly; a process that *did*
/// progress during the probe may have advanced internal state, which is
/// harmless because the run is over either way (the network must not be
/// re-run after hitting the bound).
fn probe_quiescent(
    processes: &mut [Box<dyn Process>],
    queues: &mut HashMap<Chan, VecDeque<Value>>,
    trace: &mut Vec<Event>,
    rng: &mut StdRng,
) -> bool {
    let saved_queues = queues.clone();
    let saved_len = trace.len();
    for (i, p) in processes.iter_mut().enumerate() {
        let mut ctx = StepCtx {
            queues,
            trace,
            rng,
            telemetry: None,
            current: i,
        };
        if p.step(&mut ctx) == StepResult::Progress {
            *queues = saved_queues;
            trace.truncate(saved_len);
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    processes: &[Box<dyn Process>],
    trace: Vec<Event>,
    queues: HashMap<Chan, VecDeque<Value>>,
    telemetry: Telemetry,
    counters: Vec<ProcCounters>,
    quiescent: bool,
    steps: usize,
    rounds: usize,
) -> RunReport {
    let name_of = |i: usize| processes[i].name().to_owned();
    let process_reports = processes
        .iter()
        .zip(&counters)
        .map(|(p, c)| ProcessReport {
            name: p.name().to_owned(),
            progress: c.progress,
            idle: c.idle,
            max_starved_rounds: c.max_starved,
        })
        .collect();
    let channel_reports = telemetry
        .channels
        .iter()
        .map(|(c, k)| ChannelReport {
            chan: *c,
            sends: k.sends,
            receives: k.receives,
            high_water: k.high_water,
            residual: queues.get(c).map_or(0, VecDeque::len),
            consumer: k.consumer.map(name_of),
        })
        .collect();
    let consumer_violations = telemetry
        .violations
        .iter()
        .map(|&(chan, first, second)| ConsumerViolation {
            chan,
            first: name_of(first),
            second: name_of(second),
        })
        .collect();
    RunReport {
        trace: Trace::finite(trace),
        quiescent,
        steps,
        rounds,
        processes: process_reports,
        channels: channel_reports,
        consumer_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs::{Apply, Source, Zip2};
    use crate::scheduler::{Adversarial, RandomSched, RoundRobin};

    fn c() -> Chan {
        Chan::new(0)
    }
    fn d() -> Chan {
        Chan::new(1)
    }

    fn pipeline() -> Network {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            c(),
            [Value::Int(1), Value::Int(2), Value::Int(3)],
        ));
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        net
    }

    #[test]
    fn pipeline_quiesces_with_expected_history() {
        let run = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(
            run.trace.seq_on(d()).take(10),
            vec![Value::Int(2), Value::Int(4), Value::Int(6)]
        );
        assert_eq!(
            run.trace.seq_on(c()).take(10),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn kahn_determinism_across_schedulers() {
        // per-channel histories agree under all schedulers (Kahn's
        // determinism theorem for deterministic processes).
        let a = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        let b = pipeline().run(&mut RandomSched::new(9), RunOptions::default());
        let cc = pipeline().run(&mut Adversarial::new(5), RunOptions::default());
        for run in [&b, &cc] {
            assert!(run.quiescent);
            assert_eq!(run.trace.seq_on(c()), a.trace.seq_on(c()));
            assert_eq!(run.trace.seq_on(d()), a.trace.seq_on(d()));
        }
    }

    #[test]
    fn step_bound_halts_runaway() {
        // a source with an infinite lasso never quiesces
        let mut net = Network::new();
        net.add(Source::lasso(
            "ticks",
            c(),
            eqp_trace::Lasso::repeat(vec![Value::tt()]),
        ));
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 25,
                seed: 0,
            },
        );
        assert!(!run.quiescent);
        assert_eq!(run.steps, 25);
        assert_eq!(run.trace.seq_on(c()).take(100).len(), 25);
    }

    #[test]
    fn quiescence_in_exactly_max_steps_is_reported() {
        // Regression: the pipeline quiesces after exactly 6 progress
        // steps (3 source sends + 3 doubles). With max_steps == 6 the
        // bound fires before the engine observes a no-progress round; the
        // probe must still report quiescence (and leave the trace exact).
        let run = pipeline().run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 6,
                seed: 0,
            },
        );
        assert!(
            run.quiescent,
            "network quiescing in exactly max_steps must report quiescent"
        );
        assert_eq!(run.steps, 6);
        assert_eq!(
            run.trace.seq_on(d()).take(10),
            vec![Value::Int(2), Value::Int(4), Value::Int(6)]
        );
    }

    #[test]
    fn bound_cut_mid_stream_still_reports_nonquiescent() {
        // the same pipeline cut after 4 of its 6 steps: genuinely cut.
        let run = pipeline().run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 4,
                seed: 0,
            },
        );
        assert!(!run.quiescent);
        assert_eq!(run.steps, 4);
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn double_consumer_rejected() {
        let mut net = Network::new();
        net.add(Apply::int_affine("w1", c(), d(), 1, 0));
        net.add(Apply::int_affine("w2", c(), Chan::new(9), 1, 0));
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let mut net = Network::new();
        assert!(net.is_empty());
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.steps, 0);
        assert!(run.trace.is_empty());
    }

    #[test]
    fn preloaded_input_consumed_but_unrecorded() {
        let mut net = Network::new();
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        let mut pre = net.preload(c(), [Value::Int(5)]);
        let run = pre.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.trace.seq_on(d()).take(4), vec![Value::Int(10)]);
        // the preloaded input itself is not in the trace
        assert_eq!(run.trace.seq_on(c()).take(4), Vec::<Value>::new());
    }

    #[test]
    fn preload_two_channels_chained() {
        // Regression: preloading a second channel used to operate on the
        // drained husk and silently run zero processes.
        let (l, r, o) = (Chan::new(10), Chan::new(11), Chan::new(12));
        let mut net = Network::new();
        net.add(Zip2::add("sum", l, r, o));
        let run = net
            .preload(l, [Value::Int(1), Value::Int(2)])
            .preload(r, [Value::Int(10), Value::Int(20)])
            .run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(
            run.trace.seq_on(o).take(4),
            vec![Value::Int(11), Value::Int(22)]
        );
    }

    #[test]
    fn preload_all_pairs() {
        let (l, r, o) = (Chan::new(10), Chan::new(11), Chan::new(12));
        let mut net = Network::new();
        net.add(Zip2::add("sum", l, r, o));
        let run = net
            .preload_all([(l, vec![Value::Int(3)]), (r, vec![Value::Int(4)])])
            .run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.trace.seq_on(o).take(4), vec![Value::Int(7)]);
    }

    #[test]
    #[should_panic(expected = "already converted by `preload`")]
    fn second_preload_on_drained_network_fails_fast() {
        let mut net = Network::new();
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        let _first = net.preload(c(), [Value::Int(1)]);
        let _second = net.preload(d(), [Value::Int(2)]);
    }

    #[test]
    fn report_counts_progress_idle_and_channels() {
        let mut net = pipeline();
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        assert!(report.quiescent);
        assert_eq!(report.steps, 6);
        let env = &report.processes[0];
        let dbl = &report.processes[1];
        assert_eq!((env.name.as_str(), env.progress), ("env", 3));
        assert_eq!((dbl.name.as_str(), dbl.progress), ("double", 3));
        let on_c = report.channel(c()).expect("channel c metered");
        assert_eq!(on_c.sends, 3);
        assert_eq!(on_c.receives, 3);
        assert_eq!(on_c.residual, 0);
        assert_eq!(on_c.consumer.as_deref(), Some("double"));
        assert!(report.single_consumer_ok());
        assert!(report.to_string().contains("process `double`"));
    }
}
