//! Networks: processes wired by FIFO channels, run to quiescence — with
//! optional checkpointing, supervision, and engine-level fault injection.

use crate::chanmap::ChanMap;
use crate::conformance::Conformance;
use crate::faults::{CrashPoint, EngineLink, FaultSchedule};
use crate::monitor::{MonitorPolicy, SmoothnessMonitor};
use crate::process::{raw_send, FlowControl, FlowTxn, Process, StepCtx, StepResult};
use crate::reliable::{ReliableConfig, ReliableLink};
use crate::report::{
    ChannelReport, ConsumerViolation, FaultRecord, FaultSource, ProcessReport, RunReport,
    RunStatus, Telemetry,
};
use crate::scheduler::Scheduler;
use crate::snapshot::{Checkpoint, SnapshotError, StateCell};
use crate::supervisor::{Journal, RecoveryRecord, Replay, RestoreMethod, SupervisorOptions};
use crate::wire::CheckpointView;
use eqp_core::Description;
use eqp_trace::{Chan, Event, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, VecDeque};

/// What a bounded run does with a send on a channel already at capacity
/// (see [`RunOptions::channel_capacity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Roll the whole step back and retry it once the consumer frees
    /// credit — classic credit-based backpressure. The blocked step
    /// *never happened*: its pops, sends, and telemetry are undone, so
    /// backpressure is purely a scheduler restriction and every quiescent
    /// bounded run certifies identically to the unbounded run.
    #[default]
    Block,
    /// Silently discard the overflowing message (load shedding). The shed
    /// count is metered per channel in
    /// [`ChannelReport::shed`](crate::ChannelReport); note that shedding
    /// — unlike blocking — *does* change the history, so a shed run is
    /// compared against a deadline or overload budget, not against the
    /// unbounded trace.
    Shed,
}

/// Options bounding a network run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Maximum total process steps (guards non-quiescing networks like
    /// Ticks).
    pub max_steps: usize,
    /// Seed for the in-process nondeterminism RNG ([`StepCtx::flip`]).
    pub seed: u64,
    /// Queue capacity applied to every *managed* channel — a channel some
    /// process declares as an input. `None` (the default) is the classic
    /// Kahn model: unbounded FIFO queues. Terminal channels nobody reads
    /// stay unbounded either way (they model the observable history, not
    /// a buffer).
    pub channel_capacity: Option<usize>,
    /// What to do when a send hits a full channel (bounded runs only).
    pub overflow: OverflowPolicy,
    /// Ends the run with [`RunStatus::DeadlineExpired`] once this many
    /// scheduler rounds have completed without quiescence — the overload
    /// exit for throttled runs that would otherwise grind to the step
    /// bound.
    pub deadline_rounds: Option<usize>,
    /// Violation policy for the online smoothness monitor, used by the
    /// `*_monitored` run methods ([`Network::run_report_monitored`] and
    /// friends). [`MonitorPolicy::Observe`] (the default) certifies
    /// without perturbing the run; [`MonitorPolicy::AbortOnViolation`]
    /// halts at the convicting step with [`RunStatus::MonitorAborted`].
    /// Ignored by unmonitored runs.
    pub monitor: MonitorPolicy,
    /// Worker shards for the sharded runtime ([`crate::shard`]), used by
    /// the `*_sharded` run methods ([`Network::run_report_sharded`] and
    /// friends). The run is byte-identical for every value; `1` (the
    /// default) runs inline without spawning threads. Clamped to the
    /// process count. Ignored by the single-threaded run methods.
    pub shards: usize,
    /// Accumulate mergeable telemetry sketches inline during the run
    /// (queue-depth/latency quantiles, heavy-hitter channels,
    /// distinct-value cardinality — see
    /// [`RunReport::sketches`](crate::RunReport)). On by default; the
    /// capture cost is a few arithmetic ops per event against a fixed
    /// memory footprint. Disable for the leanest possible hot loop.
    pub sketches: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 10_000,
            seed: 0,
            channel_capacity: None,
            overflow: OverflowPolicy::Block,
            deadline_rounds: None,
            monitor: MonitorPolicy::Observe,
            shards: 1,
            sketches: true,
        }
    }
}

impl RunOptions {
    /// Default options with every managed channel bounded to `capacity`
    /// messages under [`OverflowPolicy::Block`].
    pub fn bounded(capacity: usize) -> RunOptions {
        RunOptions::default().with_capacity(capacity)
    }

    /// Sets the managed-channel capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> RunOptions {
        self.channel_capacity = Some(capacity);
        self
    }

    /// Sets the overflow policy for bounded runs.
    #[must_use]
    pub fn with_overflow(mut self, policy: OverflowPolicy) -> RunOptions {
        self.overflow = policy;
        self
    }

    /// Sets the round deadline for overload runs.
    #[must_use]
    pub fn with_deadline(mut self, rounds: usize) -> RunOptions {
        self.deadline_rounds = Some(rounds);
        self
    }

    /// Sets the online monitor's violation policy (used by the
    /// `*_monitored` run methods).
    #[must_use]
    pub fn with_monitor(mut self, policy: MonitorPolicy) -> RunOptions {
        self.monitor = policy;
        self
    }

    /// Sets the worker-shard count for the `*_sharded` run methods.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_shards(mut self, n: usize) -> RunOptions {
        assert!(n >= 1, "a run needs at least one shard");
        self.shards = n;
        self
    }

    /// Enables or disables inline sketch telemetry capture.
    #[must_use]
    pub fn with_sketches(mut self, on: bool) -> RunOptions {
        self.sketches = on;
        self
    }
}

/// Result of a network run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced (no process can make further
    /// progress); false iff the step bound cut the run short. On hitting
    /// the bound the runner probes one extra zero-cost round, so a
    /// network that quiesces in exactly `max_steps` steps still reports
    /// `true`.
    pub quiescent: bool,
    /// How the run ended — distinguishes a genuine step-bound cut from
    /// one that fired mid-recovery, and surfaces supervisor escalation.
    pub status: RunStatus,
    /// Progress-making steps performed.
    pub steps: usize,
}

/// The network was already converted into a [`PreloadedNetwork`] by a
/// previous `preload` call — its processes have moved, and running the
/// leftover husk would silently do nothing. Returned by
/// [`Network::try_preload_all`]; the panicking `preload`/`preload_all`
/// wrappers turn it into an assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainedError;

impl std::fmt::Display for DrainedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "network already drained by a previous `preload`; \
             chain `.preload(..)` on the returned PreloadedNetwork instead",
        )
    }
}

impl std::error::Error for DrainedError {}

/// A dataflow network: a bag of processes communicating over unbounded
/// FIFO channels. Channels are implicit — any channel a process sends on
/// is queued for whoever reads it. Single-reader discipline is validated
/// statically at [`Network::add`] for processes that declare their
/// [`Process::inputs`], and dynamically by run telemetry (see
/// [`RunReport::consumer_violations`]).
#[derive(Default)]
pub struct Network {
    processes: Vec<Box<dyn Process>>,
    /// Set once `preload` converts this network into a
    /// [`PreloadedNetwork`]; guards against silently running the drained
    /// husk.
    drained: bool,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Adds a process.
    ///
    /// # Panics
    ///
    /// Panics if the process declares an input channel already consumed by
    /// a previously added process — Kahn networks require a single
    /// consumer per channel, and a second reader would silently steal
    /// messages.
    pub fn add<P: Process + 'static>(&mut self, p: P) -> &mut Network {
        for c in p.inputs() {
            for q in &self.processes {
                assert!(
                    !q.inputs().contains(&c),
                    "channel {c} already consumed by process `{}`; `{}` cannot also read it",
                    q.name(),
                    p.name()
                );
            }
        }
        self.processes.push(Box::new(p));
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True iff the network has no processes.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Diagnostic names of the processes, in insertion order.
    pub fn process_names(&self) -> Vec<String> {
        self.processes.iter().map(|p| p.name().to_owned()).collect()
    }

    /// Every channel any process declares (inputs and outputs), sorted
    /// and deduplicated — the chaos harness samples link faults from
    /// this set.
    pub fn channels(&self) -> Vec<Chan> {
        let mut cs: Vec<Chan> = self
            .processes
            .iter()
            .flat_map(|p| {
                let mut v = p.inputs();
                v.extend(p.outputs());
                v
            })
            .collect();
        cs.sort();
        cs.dedup();
        cs
    }

    /// Wraps the process at index `i` in a [`CrashAt`](crate::CrashAt)
    /// fuse that fires after `at_step` of *its* progress steps — the way
    /// to crash-test an opaque, already built network (the zoo builders).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn wrap_crash_at(&mut self, i: usize, at_step: usize) -> &mut Network {
        assert!(i < self.processes.len(), "no process at index {i}");
        let inner = std::mem::replace(&mut self.processes[i], Box::new(Tombstone));
        self.processes[i] = Box::new(crate::faults::CrashAt::new(inner, at_step));
        self
    }

    /// Pre-loads messages on a channel (environment input that is *not*
    /// recorded in the trace — prefer a `Source` process when the sends
    /// should appear in the history, as the paper's traces include them).
    ///
    /// Moves the processes into the returned [`PreloadedNetwork`]; load
    /// further channels by chaining [`PreloadedNetwork::preload`].
    ///
    /// # Panics
    ///
    /// Panics if this network was already converted by a previous
    /// `preload` call — the processes have moved, and running the
    /// leftover empty network would silently do nothing.
    pub fn preload<I: IntoIterator<Item = Value>>(
        &mut self,
        chan: Chan,
        values: I,
    ) -> PreloadedNetwork {
        self.preload_all([(chan, values.into_iter().collect::<Vec<Value>>())])
    }

    /// Pre-loads several channels at once from `(channel, values)` pairs.
    ///
    /// # Panics
    ///
    /// Panics under the same already-drained condition as
    /// [`Network::preload`].
    pub fn preload_all<I>(&mut self, pairs: I) -> PreloadedNetwork
    where
        I: IntoIterator<Item = (Chan, Vec<Value>)>,
    {
        self.try_preload_all(pairs)
            .expect("this Network was already converted by `preload`; chain `.preload(..)` calls on the returned PreloadedNetwork instead")
    }

    /// Non-panicking [`preload_all`](Network::preload_all): returns a
    /// typed [`DrainedError`] instead of panicking when the network was
    /// already drained by a previous `preload`. The form server-side
    /// code (the `eqpd` daemon) uses, where a tenant-driven misuse must
    /// degrade to an error response rather than a process abort.
    pub fn try_preload_all<I>(&mut self, pairs: I) -> Result<PreloadedNetwork, DrainedError>
    where
        I: IntoIterator<Item = (Chan, Vec<Value>)>,
    {
        if self.drained {
            return Err(DrainedError);
        }
        self.drained = true;
        let mut pre = PreloadedNetwork {
            net: Network {
                processes: std::mem::take(&mut self.processes),
                drained: false,
            },
            queues: ChanMap::default(),
        };
        for (chan, values) in pairs {
            pre.load(chan, values);
        }
        Ok(pre)
    }

    fn assert_live(&self) {
        assert!(
            !self.drained,
            "this Network was drained by `preload`; run the PreloadedNetwork it returned"
        );
    }

    /// Runs the network under `sched` until quiescence or the step bound.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        self.run_report(sched, opts).into_result()
    }

    /// Runs the network and returns the full telemetry [`RunReport`].
    pub fn run_report<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunReport {
        self.assert_live();
        Engine::new(&mut self.processes, ChanMap::default(), opts).run(sched)
    }

    /// Runs the network, capturing a whole-run [`Checkpoint`] when the
    /// global progress-step count reaches exactly `at_step` (0 captures
    /// the genesis state before any step). The returned checkpoint is
    /// `None` if the run ended before reaching `at_step`.
    ///
    /// The run itself is byte-identical to
    /// [`run_report`](Network::run_report) — capture is pure
    /// observation. Feed the
    /// checkpoint to [`resume_report`](Network::resume_report) on a
    /// freshly built identical network to continue it.
    pub fn run_report_checkpointed<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        at_step: usize,
    ) -> (RunReport, Option<Checkpoint>) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.checkpoint_at = Some(at_step);
        let report = engine.run(sched);
        let captured = engine.captured.take();
        (report, captured)
    }

    /// Restores `ckpt` into this (identically built) network and `sched`
    /// (identically constructed scheduler) and continues the run to its
    /// end. The resumed run is byte-identical — trace and report meters —
    /// to the uninterrupted one.
    ///
    /// `opts.max_steps` still bounds the total step count;  `opts.seed`
    /// is ignored (the RNG resumes mid-stream from the checkpoint).
    pub fn resume_report<S: Scheduler>(
        &mut self,
        ckpt: &Checkpoint,
        sched: &mut S,
        opts: RunOptions,
    ) -> Result<RunReport, SnapshotError> {
        self.assert_live();
        if ckpt.processes.len() != self.processes.len() {
            return Err(SnapshotError::ArityMismatch {
                expected: ckpt.processes.len(),
                found: self.processes.len(),
            });
        }
        for (i, cell) in ckpt.processes.iter().enumerate() {
            let cell = cell
                .as_ref()
                .ok_or_else(|| SnapshotError::UnsupportedProcess {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                })?;
            if !self.processes[i].restore(cell) {
                return Err(SnapshotError::RestoreRejected {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                });
            }
        }
        ckpt.restore_scheduler(sched)?;
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.resume_from(ckpt);
        Ok(engine.run(sched))
    }

    /// Resumes from a validated zero-copy [`CheckpointView`] — the
    /// durable fast path. The view already structure-validated the whole
    /// image at construction, so materialization cannot fail; the
    /// materialized checkpoint is then *moved* into the engine (queues,
    /// trace, telemetry, counters), skipping the second deep copy
    /// [`resume_report`](Network::resume_report) pays when resuming from
    /// a borrowed checkpoint. The resumed run is byte-identical to the
    /// decode-then-resume path — same trace, same report, same verdict.
    pub fn resume_report_view<S: Scheduler>(
        &mut self,
        view: &CheckpointView<'_>,
        sched: &mut S,
        opts: RunOptions,
    ) -> Result<RunReport, SnapshotError> {
        self.assert_live();
        let ckpt = view.to_checkpoint();
        if ckpt.processes.len() != self.processes.len() {
            return Err(SnapshotError::ArityMismatch {
                expected: ckpt.processes.len(),
                found: self.processes.len(),
            });
        }
        for (i, cell) in ckpt.processes.iter().enumerate() {
            let cell = cell
                .as_ref()
                .ok_or_else(|| SnapshotError::UnsupportedProcess {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                })?;
            if !self.processes[i].restore(cell) {
                return Err(SnapshotError::RestoreRejected {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                });
            }
        }
        ckpt.restore_scheduler(sched)?;
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.resume_from_owned(ckpt);
        Ok(engine.run(sched))
    }

    /// [`resume_report`](Network::resume_report) that *also* captures a
    /// fresh whole-run [`Checkpoint`] when the global step count reaches
    /// `at_step` — the chunked-execution primitive: run `k` steps, park
    /// the checkpoint (in memory or on disk via [`crate::wire`]), resume
    /// for another `k`, and so on, with the concatenated run proven
    /// byte-identical to the uninterrupted one. `at_step` counts from
    /// run genesis, not from the resume point, and must exceed
    /// `ckpt.steps()` to capture.
    pub fn resume_report_checkpointed<S: Scheduler>(
        &mut self,
        ckpt: &Checkpoint,
        sched: &mut S,
        opts: RunOptions,
        at_step: usize,
    ) -> Result<(RunReport, Option<Checkpoint>), SnapshotError> {
        self.assert_live();
        if ckpt.processes.len() != self.processes.len() {
            return Err(SnapshotError::ArityMismatch {
                expected: ckpt.processes.len(),
                found: self.processes.len(),
            });
        }
        for (i, cell) in ckpt.processes.iter().enumerate() {
            let cell = cell
                .as_ref()
                .ok_or_else(|| SnapshotError::UnsupportedProcess {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                })?;
            if !self.processes[i].restore(cell) {
                return Err(SnapshotError::RestoreRejected {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                });
            }
        }
        ckpt.restore_scheduler(sched)?;
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.resume_from(ckpt);
        engine.checkpoint_at = Some(at_step);
        let report = engine.run(sched);
        let captured = engine.captured.take();
        Ok((report, captured))
    }

    /// Runs the network under supervision: crashed processes (reported by
    /// [`Process::crashed`]) are restored from the latest periodic
    /// checkpoint (or reset and replayed from genesis) per the restart
    /// policy in `sup`. A recovered quiescent run still certifies as a
    /// smooth solution of the original description — recovery preserves
    /// the trace.
    pub fn run_supervised<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        sup: SupervisorOptions,
    ) -> RunReport {
        self.run_supervised_faulted(sched, opts, sup, &FaultSchedule::none())
    }

    /// [`run_supervised`](Network::run_supervised) plus an engine-level
    /// [`FaultSchedule`]: crash points kill processes at global step
    /// counts and link faults intercept sends in flight — no rewiring of
    /// the network required. This is the chaos harness's entry point.
    pub fn run_supervised_faulted<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        sup: SupervisorOptions,
        schedule: &FaultSchedule,
    ) -> RunReport {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.supervise(sup);
        engine.inject(schedule);
        engine.run(sched)
    }

    /// Runs the network under an engine-level [`FaultSchedule`] *without*
    /// supervision: crashed processes stay dead, dropped messages stay
    /// dropped — the conviction-producing configuration.
    pub fn run_report_faulted<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        schedule: &FaultSchedule,
    ) -> RunReport {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.inject(schedule);
        engine.run(sched)
    }

    /// Runs the network with the channels named in `cfg` wrapped in
    /// reliable (ARQ) links masking the link faults in `schedule`: a
    /// drop/duplicate/reorder fault scheduled on a protected channel
    /// becomes the link's lossy medium, and retransmission +
    /// dedup/reorder recovery makes the composite behave as the identity
    /// — the run certifies exactly like the fault-free one. On retry
    /// budget exhaustion the run degrades to
    /// [`RunStatus::ReliabilityExhausted`] instead of hanging.
    pub fn run_report_reliable<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        schedule: &FaultSchedule,
        cfg: &ReliableConfig,
    ) -> RunReport {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.inject_protected(schedule, cfg);
        engine.run(sched)
    }

    /// [`run_report_reliable`](Network::run_report_reliable) under
    /// supervision — the chaos harness's entry point for storms over
    /// reliable-wrapped links (crash points recover per `sup`, link
    /// faults on protected channels are masked by ARQ).
    pub fn run_supervised_reliable<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        sup: SupervisorOptions,
        schedule: &FaultSchedule,
        cfg: &ReliableConfig,
    ) -> RunReport {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.supervise(sup);
        engine.inject_protected(schedule, cfg);
        engine.run(sched)
    }

    /// Runs the network with an online [`SmoothnessMonitor`] certifying
    /// the trace against `desc` *as events commit* — amortized O(1) per
    /// event, so the returned [`Conformance`] costs O(n) total instead of
    /// the post-hoc checker's O(n²) prefix re-walk. The verdict is
    /// identical to `check_report(desc, &report, &Default::default())` on
    /// the same run (the differential suite pins this); under
    /// [`MonitorPolicy::AbortOnViolation`] (see
    /// [`RunOptions::monitor`]) the run additionally halts at the
    /// convicting step with [`RunStatus::MonitorAborted`].
    pub fn run_report_monitored<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.arm_monitor(desc, opts.monitor);
        engine.run_monitored(sched)
    }

    /// [`run_report_monitored`](Network::run_report_monitored) under an
    /// engine-level [`FaultSchedule`] without supervision — the
    /// conviction-producing configuration, now convicted online.
    pub fn run_report_monitored_faulted<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
        schedule: &FaultSchedule,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.inject(schedule);
        engine.arm_monitor(desc, opts.monitor);
        engine.run_monitored(sched)
    }

    /// [`run_report_monitored`](Network::run_report_monitored) with the
    /// channels in `cfg` wrapped in reliable (ARQ) links masking the
    /// faults in `schedule`. Retry-budget exhaustion maps to
    /// [`Verdict::Degraded`](crate::Verdict) exactly as the post-hoc
    /// [`check_report`](crate::conformance::check_report) does.
    pub fn run_report_monitored_reliable<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
        schedule: &FaultSchedule,
        cfg: &ReliableConfig,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.inject_protected(schedule, cfg);
        engine.arm_monitor(desc, opts.monitor);
        engine.run_monitored(sched)
    }

    /// [`run_supervised_faulted`](Network::run_supervised_faulted) with
    /// online certification — the chaos harness's monitored entry point.
    pub fn run_supervised_monitored_faulted<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
        sup: SupervisorOptions,
        schedule: &FaultSchedule,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.supervise(sup);
        engine.inject(schedule);
        engine.arm_monitor(desc, opts.monitor);
        engine.run_monitored(sched)
    }

    /// [`run_supervised_reliable`](Network::run_supervised_reliable) with
    /// online certification.
    pub fn run_supervised_monitored_reliable<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
        sup: SupervisorOptions,
        schedule: &FaultSchedule,
        cfg: &ReliableConfig,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.supervise(sup);
        engine.inject_protected(schedule, cfg);
        engine.arm_monitor(desc, opts.monitor);
        engine.run_monitored(sched)
    }

    /// [`run_report_checkpointed`](Network::run_report_checkpointed) with
    /// online certification. The captured [`Checkpoint`] carries the
    /// monitor's evaluator state, so
    /// [`resume_report_monitored`](Network::resume_report_monitored)
    /// continues certification without re-feeding the prefix.
    pub fn run_report_checkpointed_monitored<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
        at_step: usize,
    ) -> (RunReport, Conformance, Option<Checkpoint>) {
        self.assert_live();
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.checkpoint_at = Some(at_step);
        engine.arm_monitor(desc, opts.monitor);
        let (report, conf) = engine.run_monitored(sched);
        let captured = engine.captured.take();
        (report, conf, captured)
    }

    /// [`resume_report`](Network::resume_report) for a checkpoint taken
    /// by a monitored run: certification resumes from the checkpointed
    /// monitor state (no description parameter — the monitor carries its
    /// equations). Fails with [`SnapshotError::NoMonitor`] if the
    /// checkpoint came from an unmonitored run.
    pub fn resume_report_monitored<S: Scheduler>(
        &mut self,
        ckpt: &Checkpoint,
        sched: &mut S,
        opts: RunOptions,
    ) -> Result<(RunReport, Conformance), SnapshotError> {
        self.assert_live();
        if ckpt.monitor.is_none() {
            return Err(SnapshotError::NoMonitor);
        }
        if ckpt.processes.len() != self.processes.len() {
            return Err(SnapshotError::ArityMismatch {
                expected: ckpt.processes.len(),
                found: self.processes.len(),
            });
        }
        for (i, cell) in ckpt.processes.iter().enumerate() {
            let cell = cell
                .as_ref()
                .ok_or_else(|| SnapshotError::UnsupportedProcess {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                })?;
            if !self.processes[i].restore(cell) {
                return Err(SnapshotError::RestoreRejected {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                });
            }
        }
        ckpt.restore_scheduler(sched)?;
        let mut engine = Engine::new(&mut self.processes, ChanMap::default(), opts);
        engine.resume_from(ckpt);
        Ok(engine.run_monitored(sched))
    }

    /// Runs the network on the sharded multicore runtime
    /// ([`crate::shard`]): processes are partitioned across
    /// [`opts.shards`](RunOptions::shards) worker threads, stepped in
    /// parallel epochs, and every observable effect commits in one
    /// canonical order — the returned [`RunReport`] (trace, telemetry,
    /// counters) is **byte-identical for every shard count**, including
    /// the threadless 1-shard run.
    ///
    /// Requirements and caveats:
    ///
    /// * Every consuming process must declare its
    ///   [`Process::inputs`] — sharded delivery routes sends by the
    ///   declared consumer. An undeclared reader sees an empty channel.
    /// * Bounded channels, fault injection, supervision, and reliable
    ///   links are not supported (the single-threaded runner is).
    /// * Per-step RNGs derive from `(seed, process, offer)`, so
    ///   nondeterministic processes draw a different — equally
    ///   reproducible — stream than under [`run_report`](Network::run_report);
    ///   deterministic networks produce the same per-channel histories
    ///   either way.
    ///
    /// # Panics
    ///
    /// Panics if `opts.channel_capacity` is set.
    pub fn run_report_sharded<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
    ) -> RunReport {
        self.assert_live();
        crate::shard::run_sharded(
            &mut self.processes,
            sched,
            opts,
            crate::shard::ShardJob::default(),
        )
        .report
    }

    /// [`run_report_sharded`](Network::run_report_sharded) with an online
    /// [`SmoothnessMonitor`] certifying the canonical trace against
    /// `desc` as epochs commit. The verdict — like the report — is
    /// byte-identical for every shard count. Under
    /// [`MonitorPolicy::AbortOnViolation`] the run halts at the end of
    /// the convicting *epoch* (the epoch boundary is canonical, so the
    /// abort point is too).
    pub fn run_report_sharded_monitored<S: Scheduler>(
        &mut self,
        desc: &Description,
        sched: &mut S,
        opts: RunOptions,
    ) -> (RunReport, Conformance) {
        self.assert_live();
        let out = crate::shard::run_sharded(
            &mut self.processes,
            sched,
            opts,
            crate::shard::ShardJob {
                monitor: Some((desc, opts.monitor)),
                ..Default::default()
            },
        );
        let conf = out
            .conformance
            .expect("a monitored sharded run yields a conformance");
        (out.report, conf)
    }

    /// [`run_report_sharded`](Network::run_report_sharded) capturing a
    /// whole-run [`Checkpoint`] at the first scheduler-round boundary
    /// where the progress-step count has reached `at_step` (unlike the
    /// single-threaded engine's exact mid-round capture: at a round
    /// boundary every committed send is canonically queued, so arming a
    /// checkpoint cannot perturb the run and the capture stays pure
    /// observation). `None` if the run ends before such a boundary. The
    /// checkpoint, too, is byte-identical for every shard count — resume
    /// it with [`resume_report_sharded`](Network::resume_report_sharded)
    /// on any shard count.
    pub fn run_report_sharded_checkpointed<S: Scheduler>(
        &mut self,
        sched: &mut S,
        opts: RunOptions,
        at_step: usize,
    ) -> (RunReport, Option<Checkpoint>) {
        self.assert_live();
        let out = crate::shard::run_sharded(
            &mut self.processes,
            sched,
            opts,
            crate::shard::ShardJob {
                checkpoint_at: Some(at_step),
                ..Default::default()
            },
        );
        (out.report, out.captured)
    }

    /// Restores a checkpoint captured by
    /// [`run_report_sharded_checkpointed`](Network::run_report_sharded_checkpointed)
    /// into this (identically built) network and scheduler and continues
    /// the run sharded. The resumed run — on *any* shard count — is
    /// byte-identical to the uninterrupted sharded run. `opts.seed` is
    /// ignored (per-step seeds reconstruct from the checkpointed RNG).
    pub fn resume_report_sharded<S: Scheduler>(
        &mut self,
        ckpt: &Checkpoint,
        sched: &mut S,
        opts: RunOptions,
    ) -> Result<RunReport, SnapshotError> {
        self.assert_live();
        if ckpt.processes.len() != self.processes.len() {
            return Err(SnapshotError::ArityMismatch {
                expected: ckpt.processes.len(),
                found: self.processes.len(),
            });
        }
        for (i, cell) in ckpt.processes.iter().enumerate() {
            let cell = cell
                .as_ref()
                .ok_or_else(|| SnapshotError::UnsupportedProcess {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                })?;
            if !self.processes[i].restore(cell) {
                return Err(SnapshotError::RestoreRejected {
                    index: i,
                    name: self.processes[i].name().to_owned(),
                });
            }
        }
        ckpt.restore_scheduler(sched)?;
        Ok(crate::shard::run_sharded(
            &mut self.processes,
            sched,
            opts,
            crate::shard::ShardJob {
                resume: Some(ckpt),
                ..Default::default()
            },
        )
        .report)
    }
}

/// Placeholder swapped in momentarily by [`Network::wrap_crash_at`].
struct Tombstone;

impl Process for Tombstone {
    fn name(&self) -> &str {
        "<tombstone>"
    }
    fn step(&mut self, _: &mut StepCtx<'_>) -> StepResult {
        StepResult::Idle
    }
}

/// A network with pre-loaded channel contents (see [`Network::preload`]).
pub struct PreloadedNetwork {
    net: Network,
    queues: ChanMap<VecDeque<Value>>,
}

impl PreloadedNetwork {
    /// Pre-loads further messages on another channel (or appends to an
    /// already-loaded one), consuming and returning `self` so loads
    /// chain: `net.preload(a, ..).preload(b, ..)`.
    #[must_use]
    pub fn preload<I: IntoIterator<Item = Value>>(
        mut self,
        chan: Chan,
        values: I,
    ) -> PreloadedNetwork {
        self.load(chan, values);
        self
    }

    fn load<I: IntoIterator<Item = Value>>(&mut self, chan: Chan, values: I) {
        self.queues.entry(chan).or_default().extend(values);
    }

    /// Runs the preloaded network.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        self.run_report(sched, opts).into_result()
    }

    /// Runs the preloaded network and returns the full [`RunReport`].
    pub fn run_report<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunReport {
        Engine::new(
            &mut self.net.processes,
            std::mem::take(&mut self.queues),
            opts,
        )
        .run(sched)
    }
}

/// Per-process counters tracked during a run.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ProcCounters {
    pub(crate) progress: usize,
    pub(crate) idle: usize,
    pub(crate) starve_streak: usize,
    pub(crate) max_starved: usize,
    /// Steps rolled back because a send hit a full channel.
    pub(crate) send_blocked: usize,
    /// Consecutive rounds blocked (cleared by any committed step).
    pub(crate) blocked_streak: usize,
    pub(crate) max_blocked: usize,
}

/// The run engine: the bare quiescence loop plus (all optional, all
/// zero-cost when unused) checkpointing, supervision with journaled
/// replay, and engine-interposed fault injection.
struct Engine<'a> {
    procs: &'a mut [Box<dyn Process>],
    declared: Vec<Vec<Chan>>,
    /// Declared output channels, for the hookless-process capacity
    /// pre-check under flow control.
    declared_out: Vec<Vec<Chan>>,
    queues: ChanMap<VecDeque<Value>>,
    trace: Vec<Event>,
    rng: StdRng,
    telemetry: Telemetry,
    counters: Vec<ProcCounters>,
    steps: usize,
    rounds: usize,
    max_steps: usize,
    /// Engine-interposed faulty links (chaos schedules).
    links: Vec<EngineLink>,
    /// Engine-level ARQ links protecting channels (reliable transport).
    reliables: Vec<ReliableLink>,
    /// Bounded-channel flow control (`RunOptions::channel_capacity`).
    flow: Option<FlowControl>,
    /// First `(process, channel)` blocked on a full send this round.
    round_blocked: Option<(usize, Chan)>,
    /// Round deadline for overload runs.
    deadline_rounds: Option<usize>,
    /// Unfired engine crash points.
    crash_points: Vec<CrashPoint>,
    /// Engine view of which processes are currently dead.
    crashed: Vec<bool>,
    /// Step count at which each currently-dead process crashed.
    crash_steps: Vec<usize>,
    /// Completed restarts per process.
    restarts: Vec<usize>,
    /// Rounds remaining until a pending restart (`None` = no restart
    /// pending).
    backoff: Vec<Option<usize>>,
    /// Per-process observation journals (supervised runs only).
    journals: Option<Vec<Journal>>,
    /// Armed replays for restored processes.
    replays: Vec<Option<Replay>>,
    supervision: Option<SupervisorOptions>,
    /// Latest periodic whole-network checkpoint (supervised runs).
    last_checkpoint: Option<Checkpoint>,
    recoveries: Vec<RecoveryRecord>,
    /// Set when a crash escalates; the run fails at the next check.
    escalated: Option<String>,
    /// Step count at which to capture `captured` (whole-run
    /// checkpointing).
    checkpoint_at: Option<usize>,
    captured: Option<Checkpoint>,
    /// Process indices not yet offered a step this round.
    pending: VecDeque<usize>,
    /// Whether anything progressed in the round in flight.
    round_progressed: bool,
    /// Online smoothness monitor (monitored runs only).
    monitor: Option<SmoothnessMonitor>,
    /// Cached `monitor armed with AbortOnViolation` — probed twice per
    /// step in the run loop, so the Option+enum walk is hoisted here.
    abort_armed: bool,
    /// Trace index up to which committed sends have been fed to the
    /// monitor. Invariant: `fed == trace.len()` at every drain point —
    /// in particular before every checkpoint capture, so a captured
    /// monitor has observed exactly the captured trace.
    fed: usize,
}

impl<'a> Engine<'a> {
    fn new(
        processes: &'a mut [Box<dyn Process>],
        queues: ChanMap<VecDeque<Value>>,
        opts: RunOptions,
    ) -> Engine<'a> {
        let n = processes.len();
        let declared: Vec<Vec<Chan>> = processes.iter().map(|p| p.inputs()).collect();
        let declared_out: Vec<Vec<Chan>> = processes.iter().map(|p| p.outputs()).collect();
        let mut telemetry = Telemetry::default();
        if opts.sketches {
            telemetry.sketches = Some(crate::report::capture_sketches());
            // Without flow control no transaction can roll a step back,
            // so observations may skip the staging buffer entirely.
            telemetry.direct = opts.channel_capacity.is_none();
        }
        for (c, q) in &queues {
            telemetry.note_preload(*c, q.len());
        }
        let flow = opts.channel_capacity.map(|capacity| {
            assert!(capacity >= 1, "channel_capacity must be at least 1");
            // managed = every channel some process consumes; terminal
            // channels nobody reads model the observable history, not a
            // buffer, and stay unbounded
            let managed: BTreeSet<Chan> = declared.iter().flatten().copied().collect();
            FlowControl {
                capacity,
                policy: opts.overflow,
                managed,
                txn: FlowTxn::default(),
            }
        });
        Engine {
            procs: processes,
            declared,
            declared_out,
            queues,
            trace: Vec::new(),
            rng: StdRng::seed_from_u64(opts.seed),
            telemetry,
            counters: vec![ProcCounters::default(); n],
            steps: 0,
            rounds: 0,
            max_steps: opts.max_steps,
            links: Vec::new(),
            reliables: Vec::new(),
            flow,
            round_blocked: None,
            deadline_rounds: opts.deadline_rounds,
            crash_points: Vec::new(),
            crashed: vec![false; n],
            crash_steps: vec![0; n],
            restarts: vec![0; n],
            backoff: vec![None; n],
            journals: None,
            replays: (0..n).map(|_| None).collect(),
            supervision: None,
            last_checkpoint: None,
            recoveries: Vec::new(),
            escalated: None,
            checkpoint_at: None,
            captured: None,
            pending: VecDeque::new(),
            round_progressed: false,
            monitor: None,
            abort_armed: false,
            fed: 0,
        }
    }

    /// Installs an online smoothness monitor over `desc`.
    fn arm_monitor(&mut self, desc: &Description, policy: MonitorPolicy) {
        self.monitor = Some(SmoothnessMonitor::new(desc, None, policy));
        self.abort_armed = policy == MonitorPolicy::AbortOnViolation;
    }

    /// Runs to completion and derives the final [`Conformance`] from the
    /// monitor's evaluator states — no post-hoc trace re-walk.
    fn run_monitored(&mut self, sched: &mut dyn Scheduler) -> (RunReport, Conformance) {
        let report = self.run(sched);
        let conf = self
            .monitor
            .as_ref()
            .expect("run_monitored requires an armed monitor")
            .finish(&report.status);
        (report, conf)
    }

    fn supervise(&mut self, sup: SupervisorOptions) {
        self.journals = Some(vec![Journal::default(); self.procs.len()]);
        self.supervision = Some(sup);
    }

    fn inject(&mut self, schedule: &FaultSchedule) {
        self.links = schedule.links.iter().map(EngineLink::new).collect();
        self.crash_points = schedule.crashes.clone();
    }

    /// Injects `schedule` with the channels in `cfg` wrapped in reliable
    /// (ARQ) links: a scheduled fault on a protected channel becomes that
    /// link's lossy medium (masked by retransmission) instead of a bare
    /// [`EngineLink`]; protected channels without a scheduled fault (and
    /// no ack fault) get a pass-through link — over clean media the
    /// protocol is provably the identity, so it costs nothing. Faults on
    /// unprotected channels and crash points inject exactly as
    /// [`Engine::inject`].
    fn inject_protected(&mut self, schedule: &FaultSchedule, cfg: &ReliableConfig) {
        let mut protected: Vec<Chan> = cfg.channels.clone();
        protected.sort();
        protected.dedup();
        self.reliables = protected
            .iter()
            .map(|&c| {
                let fault = schedule
                    .links
                    .iter()
                    .find(|l| l.chan == c)
                    .map(|l| &l.fault);
                ReliableLink::new(c, fault, cfg.ack_fault.as_ref(), cfg.arq)
            })
            // identity links never frame, retransmit, or buffer — keeping
            // them around would tax every send and every round for nothing
            .filter(|l| !l.is_passthrough())
            .collect();
        self.links = schedule
            .links
            .iter()
            .filter(|l| !protected.contains(&l.chan))
            .map(EngineLink::new)
            .collect();
        self.crash_points = schedule.crashes.clone();
    }

    fn resume_from(&mut self, ckpt: &Checkpoint) {
        self.queues = ckpt.queues.clone();
        self.trace = ckpt.trace.clone();
        self.rng = ckpt.rng.clone();
        self.telemetry = ckpt.telemetry.clone();
        self.counters = ckpt.counters.clone();
        self.steps = ckpt.steps;
        self.rounds = ckpt.rounds;
        self.pending = ckpt.pending_round.clone();
        self.round_progressed = ckpt.round_progressed;
        // the captured monitor observed exactly the captured trace (the
        // engine drains before every capture), so certification resumes
        // without re-feeding the prefix
        self.monitor = ckpt.monitor.clone();
        self.abort_armed = self
            .monitor
            .as_ref()
            .is_some_and(|m| m.policy() == MonitorPolicy::AbortOnViolation);
        self.fed = self.trace.len();
        // `capture` advances `rounds` past a just-finished round but the
        // telemetry clone predates that adjustment — re-sync so resumed
        // latency stamps use the same round clock the uninterrupted run
        // would.
        self.telemetry.round = self.rounds as u64;
        // execution-mode flag, not run state: recompute for *this*
        // engine's flow configuration, whatever the capturer's was
        self.telemetry.direct = self.telemetry.sketches.is_some() && self.flow.is_none();
    }

    /// [`resume_from`](Engine::resume_from) that consumes its checkpoint,
    /// *moving* the queues, trace, telemetry, and counters into the
    /// engine instead of deep-cloning them — the zero-copy resume path
    /// fed by [`CheckpointView::to_checkpoint`], whose materialization is
    /// already the run's single owned copy.
    fn resume_from_owned(&mut self, ckpt: Checkpoint) {
        self.queues = ckpt.queues;
        self.trace = ckpt.trace;
        self.rng = ckpt.rng;
        self.telemetry = ckpt.telemetry;
        self.counters = ckpt.counters;
        self.steps = ckpt.steps;
        self.rounds = ckpt.rounds;
        self.pending = ckpt.pending_round;
        self.round_progressed = ckpt.round_progressed;
        self.monitor = ckpt.monitor;
        self.abort_armed = self
            .monitor
            .as_ref()
            .is_some_and(|m| m.policy() == MonitorPolicy::AbortOnViolation);
        self.fed = self.trace.len();
        // same round-clock re-sync and mode recompute as the borrowing
        // path above
        self.telemetry.round = self.rounds as u64;
        self.telemetry.direct = self.telemetry.sketches.is_some() && self.flow.is_none();
    }

    fn run(&mut self, sched: &mut dyn Scheduler) -> RunReport {
        let n = self.procs.len();
        self.maybe_capture(&*sched);
        loop {
            if self.pending.is_empty() {
                self.pending = sched.round(n).into_iter().collect();
                self.round_progressed = false;
                self.round_blocked = None;
            }
            while let Some(i) = self.pending.pop_front() {
                if self.steps >= self.max_steps {
                    return self.finish_at_bound();
                }
                if !self.crash_points.is_empty() {
                    self.fire_due_crashes();
                }
                if let Some(p) = self.escalated.take() {
                    return self.build(RunStatus::Escalated { process: p });
                }
                if self.crashed[i] {
                    self.account_idle(i);
                    continue;
                }
                let progressed = self.step_slot(i);
                // under Observe the monitor is drained lazily (in batches
                // at capture points and at run end — cheaper than
                // interleaving a feed into every step); only an aborting
                // monitor needs the per-step drain
                if self.abort_armed {
                    if let Some(k) = self.drain_monitor() {
                        return self.build(RunStatus::MonitorAborted { component: k });
                    }
                }
                if progressed {
                    self.maybe_capture(&*sched);
                }
                if self.supervision.is_some() && !self.crashed[i] && self.procs[i].crashed() {
                    self.handle_crash(i);
                }
                if let Some(p) = self.escalated.take() {
                    return self.build(RunStatus::Escalated { process: p });
                }
            }
            self.rounds += 1;
            self.telemetry.round = self.rounds as u64;
            // both pumps see the same pre-pump progress picture: `force`
            // makes buffering media release even in no-progress rounds,
            // so link buffers drain (or ARQ timers tick) before
            // quiescence can be declared
            let force = !self.round_progressed;
            let mut pumped = false;
            if !self.links.is_empty() && self.pump_links(force) {
                pumped = true;
            }
            if !self.reliables.is_empty() && self.pump_reliables(force) {
                pumped = true;
            }
            // pump deliveries commit outside step_slot and never roll
            // back — flush their sketch observations immediately
            self.telemetry.commit_staged();
            if pumped {
                self.round_progressed = true;
            }
            // link/ARQ pumps commit sends outside step_slot — feed those
            // too before any abort decision
            if self.abort_armed {
                if let Some(k) = self.drain_monitor() {
                    return self.build(RunStatus::MonitorAborted { component: k });
                }
            }
            self.tick_backoffs();
            if let Some(p) = self.escalated.take() {
                return self.build(RunStatus::Escalated { process: p });
            }
            if !self.round_progressed
                && !self.recovery_pending()
                && self.links_drained()
                && self.reliables_drained()
            {
                return match self.round_blocked.take() {
                    // a full no-progress round with a send still blocked:
                    // the bounded network is flow-control deadlocked
                    Some((i, c)) => {
                        let process = self.procs[i].name().to_owned();
                        self.build(RunStatus::Backpressured { process, chan: c })
                    }
                    None => self.build(RunStatus::Quiescent),
                };
            }
            if let Some(deadline) = self.deadline_rounds {
                if self.rounds >= deadline {
                    return self.build(RunStatus::DeadlineExpired);
                }
            }
        }
    }

    /// Feeds every not-yet-observed committed send to the online monitor.
    /// Amortized O(1) per event. Returns the convicted component index
    /// exactly when the monitor observed the *first* smoothness violation
    /// under [`MonitorPolicy::AbortOnViolation`]; all trailing events are
    /// still fed (the monitor keeps its evaluator states complete) so the
    /// final report covers everything committed.
    ///
    /// Safe against bounded-mode rollback: a rolled-back step truncates
    /// the trace to its pre-step length, and `fed` always equals the
    /// trace length when a step begins, so `fed` never points past the
    /// truncation.
    fn drain_monitor(&mut self) -> Option<usize> {
        let m = self.monitor.as_mut()?;
        if self.fed >= self.trace.len() {
            return None;
        }
        let convicted = m.feed_batch(&self.trace[self.fed..]);
        self.fed = self.trace.len();
        convicted
    }

    /// Offers process `i` one step; returns true on progress.
    fn step_slot(&mut self, i: usize) -> bool {
        let replay_active = self.replays[i].is_some();
        let input_waiting = self.declared[i]
            .iter()
            .any(|c| self.queues.get(c).is_some_and(|q| !q.is_empty()));
        // Bounded mode wraps the step in a transaction: snapshot the
        // process, arm the flow-control undo log, and roll everything
        // back if the step blocked on a full channel — so a blocked step
        // *never happened* and backpressure is purely a scheduler
        // restriction. Replayed steps re-consume journaled observations
        // and run unflowed (their sends are suppressed anyway).
        let mut guard: Option<(StateCell, StdRng, usize, usize)> = None;
        if self.flow.is_some() && !replay_active {
            match self.procs[i].snapshot() {
                Some(cell) => {
                    let journal_mark = self.journals.as_ref().map_or(0, |j| j[i].ops.len());
                    guard = Some((cell, self.rng.clone(), self.trace.len(), journal_mark));
                    self.flow.as_mut().expect("flow armed").txn.begin();
                }
                None => {
                    // a hookless process cannot be rolled back, so apply a
                    // conservative pre-check: with a declared output
                    // already at capacity, count the slot as blocked
                    // without stepping at all
                    let full = {
                        let f = self.flow.as_ref().expect("flow armed");
                        self.declared_out[i]
                            .iter()
                            .find(|c| {
                                f.managed.contains(c)
                                    && self.queues.get(c).map_or(0, VecDeque::len) >= f.capacity
                            })
                            .copied()
                    };
                    if let Some(c) = full {
                        self.account_blocked(i, c);
                        return false;
                    }
                    // no managed output is full (or none is declared):
                    // step unguarded — the step may overshoot capacity by
                    // one step's worth of sends, which the high-water
                    // meter reports
                }
            }
        }
        let flow_armed = guard.is_some();
        let Engine {
            procs,
            queues,
            trace,
            rng,
            telemetry,
            journals,
            replays,
            links,
            reliables,
            flow,
            ..
        } = self;
        let mut ctx = StepCtx {
            queues,
            trace,
            rng,
            telemetry: Some(telemetry),
            current: i,
            journal: journals.as_mut().map(|j| &mut j[i]),
            replay: replays[i].as_mut(),
            links: if links.is_empty() {
                None
            } else {
                Some(links.as_mut_slice())
            },
            reliables: if reliables.is_empty() {
                None
            } else {
                Some(reliables.as_mut_slice())
            },
            flow: if flow_armed { flow.as_mut() } else { None },
            shard_out: None,
            visible: None,
        };
        let r = procs[i].step(&mut ctx);
        // a diverging replay abandons itself (ops cleared) and records
        // why; capture the reason before the empty-replay cleanup below
        // discards the marker
        let diverged = replays[i].as_mut().and_then(|rp| rp.diverged.take());
        if replays[i].as_ref().is_some_and(|rp| rp.ops.is_empty()) {
            // the restored process has fully re-reached its pre-crash
            // state; subsequent observations are live (and journaled)
            replays[i] = None;
        }
        let blocked = if flow_armed {
            flow.as_ref().and_then(|f| f.txn.blocked)
        } else {
            None
        };
        // consuming replay ops is progress toward recovery even when the
        // replayed observation was an idle one — the network must keep
        // rounding until the revived process is fully live again
        if replay_active {
            self.round_progressed = true;
        }
        if let Some(why) = diverged {
            // the restored process is not deterministic given its
            // observations — its recovery is invalid. Escalate this
            // process (the run ends with RunStatus::Escalated naming it)
            // instead of panicking the whole runtime.
            self.escalated = Some(format!("{} ({why})", self.procs[i].name()));
        }
        if let Some(chan) = blocked {
            let (cell, rng_save, trace_mark, journal_mark) =
                guard.take().expect("guard saved before the step");
            self.rollback_step(i, &cell, rng_save, trace_mark, journal_mark);
            self.account_blocked(i, chan);
            return false;
        }
        // the step committed: fold its staged sketch observations in
        self.telemetry.commit_staged();
        self.counters[i].blocked_streak = 0;
        match r {
            StepResult::Progress => {
                self.round_progressed = true;
                self.steps += 1;
                self.counters[i].progress += 1;
                self.counters[i].starve_streak = 0;
                true
            }
            StepResult::Idle => {
                self.note_idle(i, input_waiting);
                false
            }
        }
    }

    /// Undoes a blocked step: re-queues its pops, removes its sends,
    /// truncates the trace and journal, restores the channel telemetry it
    /// touched, restores the process snapshot, and rewinds the RNG — the
    /// step leaves no observable footprint.
    fn rollback_step(
        &mut self,
        i: usize,
        cell: &StateCell,
        rng_save: StdRng,
        trace_mark: usize,
        journal_mark: usize,
    ) {
        // sketch observations staged by the undone step never happened
        self.telemetry.discard_staged();
        let mut txn = std::mem::take(&mut self.flow.as_mut().expect("flow armed").txn);
        for c in txn.sends.iter().rev() {
            let undone = self.queues.get_mut(c).and_then(VecDeque::pop_back);
            debug_assert!(undone.is_some(), "rolled-back send must still be queued");
        }
        for (c, v) in txn.pops.drain(..).rev() {
            self.queues.entry(c).or_default().push_front(v);
        }
        self.trace.truncate(trace_mark);
        for (c, saved) in txn.saved.drain(..) {
            match saved {
                // restore the meters in place; the stamp queue was not
                // touched inside the transaction (stamp maintenance is
                // deferred to commit) and survives as-is
                Some(snap) => {
                    self.telemetry.channels.entry(c).or_default().restore(snap);
                }
                None => {
                    self.telemetry.channels.remove(&c);
                }
            }
        }
        if let Some(journals) = self.journals.as_mut() {
            journals[i].ops.truncate(journal_mark);
        }
        assert!(
            self.procs[i].restore(cell),
            "backpressure rollback: `{}` rejected its own snapshot",
            self.procs[i].name()
        );
        self.rng = rng_save;
    }

    /// Accounts process `i` as blocked on a full send to `c` this round.
    /// Blocked is neither progress nor idleness: the step was rolled back
    /// (or skipped) and will be retried once the consumer frees credit.
    fn account_blocked(&mut self, i: usize, c: Chan) {
        self.counters[i].send_blocked += 1;
        self.counters[i].blocked_streak += 1;
        self.counters[i].max_blocked = self.counters[i]
            .max_blocked
            .max(self.counters[i].blocked_streak);
        self.telemetry.note_blocked_send(c);
        if self.round_blocked.is_none() {
            self.round_blocked = Some((i, c));
        }
    }

    fn account_idle(&mut self, i: usize) {
        let input_waiting = self.declared[i]
            .iter()
            .any(|c| self.queues.get(c).is_some_and(|q| !q.is_empty()));
        self.note_idle(i, input_waiting);
    }

    fn note_idle(&mut self, i: usize, input_waiting: bool) {
        self.counters[i].idle += 1;
        if input_waiting {
            self.counters[i].starve_streak += 1;
            self.counters[i].max_starved = self.counters[i]
                .max_starved
                .max(self.counters[i].starve_streak);
        } else {
            self.counters[i].starve_streak = 0;
        }
    }

    /// Fires every engine crash point whose step count has been reached.
    fn fire_due_crashes(&mut self) {
        let steps = self.steps;
        let (due, rest): (Vec<CrashPoint>, Vec<CrashPoint>) = self
            .crash_points
            .drain(..)
            .partition(|cp| steps >= cp.at_step);
        self.crash_points = rest;
        for cp in due {
            if cp.process < self.procs.len() {
                self.handle_crash(cp.process);
            }
        }
    }

    /// Marks process `i` crashed and decides its fate per the policy.
    fn handle_crash(&mut self, i: usize) {
        if self.crashed[i] {
            return;
        }
        self.crashed[i] = true;
        self.crash_steps[i] = self.steps;
        let Some(sup) = self.supervision else {
            // unsupervised: the process simply stays dead
            return;
        };
        // a crash mid-replay abandons the replay; drain the re-queued
        // values it had not yet re-consumed so the coming restart can
        // re-queue the full journal without duplication
        if let Some(r) = self.replays[i].take() {
            for (c, v) in r.pending_pops() {
                let front = self.queues.get_mut(&c).and_then(VecDeque::pop_front);
                debug_assert_eq!(front, Some(v), "re-queued value must still be at the front");
                let _ = (front, v);
            }
        }
        // model the state loss of a real crash (best-effort; restore or
        // genesis replay rebuilds the state either way)
        let _ = self.procs[i].reset();
        if self.restarts[i] >= sup.max_restarts {
            self.escalated = Some(self.procs[i].name().to_owned());
            return;
        }
        match sup.backoff_for(self.restarts[i]) {
            Some(b) => self.backoff[i] = Some(b),
            None => self.escalated = Some(self.procs[i].name().to_owned()),
        }
    }

    /// Counts down pending restarts at the end of each round, performing
    /// those that reach zero.
    fn tick_backoffs(&mut self) {
        for i in 0..self.backoff.len() {
            match self.backoff[i] {
                Some(0) => {
                    self.backoff[i] = None;
                    self.perform_restart(i);
                }
                Some(b) => self.backoff[i] = Some(b - 1),
                None => {}
            }
        }
    }

    /// Restores process `i` (snapshot or genesis reset), re-queues the
    /// values its journal shows it consumed, and arms the replay.
    fn perform_restart(&mut self, i: usize) {
        let name = self.procs[i].name().to_owned();
        let (method, from_step) = match self
            .last_checkpoint
            .as_ref()
            .and_then(|c| c.process_state(i))
        {
            Some(cell) => {
                let from = self.last_checkpoint.as_ref().map_or(0, Checkpoint::steps);
                let cell = cell.clone();
                if !self.procs[i].restore(&cell) {
                    self.escalated = Some(name);
                    return;
                }
                (RestoreMethod::Snapshot, from)
            }
            None => {
                if !self.procs[i].reset() {
                    // no snapshot hook and no reset hook: unrecoverable
                    self.escalated = Some(name);
                    return;
                }
                (RestoreMethod::ReplayFromGenesis, 0)
            }
        };
        if !self.procs[i].restart() {
            self.escalated = Some(name);
            return;
        }
        let journal = &self.journals.as_ref().expect("supervised")[i];
        for (c, v) in journal.popped().iter().rev() {
            self.queues.entry(*c).or_default().push_front(*v);
        }
        let replay = Replay::from_journal(journal);
        let replayed_ops = replay.ops.len();
        if replayed_ops > 0 {
            self.replays[i] = Some(replay);
        }
        self.crashed[i] = false;
        self.restarts[i] += 1;
        // a restart is progress: the revived process must be offered
        // steps before the network may quiesce
        self.round_progressed = true;
        self.recoveries.push(RecoveryRecord {
            process: name,
            crash_step: self.crash_steps[i],
            restart_step: self.steps,
            restored_from_step: from_step,
            replayed_ops,
            method,
        });
    }

    /// End-of-round release from engine-interposed links; returns true if
    /// anything was delivered. Forces one release per buffering link when
    /// the processes themselves made no progress, so link buffers drain
    /// before quiescence.
    fn pump_links(&mut self, force: bool) -> bool {
        let mut any = false;
        let Engine {
            links,
            queues,
            trace,
            telemetry,
            ..
        } = self;
        for link in links.iter_mut() {
            let c = link.chan();
            for (v, event) in link.pump(force) {
                if let Some(e) = event {
                    telemetry.note_link_fault(c, e);
                }
                raw_send(queues, trace, Some(telemetry), c, v);
                any = true;
            }
        }
        any
    }

    /// End-of-round tick for the reliable (ARQ) links: media deliver,
    /// acks advance windows, retransmit timers count down. Returns true
    /// if any link did observable work — retry timers ticking count, so a
    /// network waiting out a retransmission backoff cannot quiesce.
    fn pump_reliables(&mut self, force: bool) -> bool {
        let mut any = false;
        let Engine {
            reliables,
            queues,
            trace,
            telemetry,
            ..
        } = self;
        for link in reliables.iter_mut() {
            if link.pump(queues, trace, telemetry, force) {
                any = true;
            }
        }
        any
    }

    fn links_drained(&self) -> bool {
        self.links.iter().all(|l| l.pending() == 0)
    }

    fn reliables_drained(&self) -> bool {
        self.reliables.iter().all(|r| r.pending() == 0)
    }

    /// True while any crash is unhandled: a dead process, a pending
    /// backoff, or an armed replay. The network must not quiesce (and a
    /// step-bound cut is reported as mid-recovery) until this clears.
    fn recovery_pending(&self) -> bool {
        self.supervision.is_some()
            && (0..self.crashed.len())
                .any(|i| self.crashed[i] || self.backoff[i].is_some() || self.replays[i].is_some())
    }

    /// Captures the whole-run checkpoint at `checkpoint_at`, and the
    /// supervisor's periodic checkpoint when due. Pure observation: the
    /// run is unaffected.
    fn maybe_capture(&mut self, sched: &dyn Scheduler) {
        if self.checkpoint_at == Some(self.steps) && self.captured.is_none() {
            // a checkpointed monitor must have observed exactly the
            // checkpointed trace (any conviction here was already taken
            // by the per-step drain when aborting is armed)
            let _ = self.drain_monitor();
            self.captured = Some(self.capture(sched));
        }
        if let Some(sup) = self.supervision {
            let due = self.last_checkpoint.is_none()
                || (self.steps > 0 && self.steps.is_multiple_of(sup.checkpoint_every));
            // deferred while a recovery is in flight: a checkpoint taken
            // mid-replay would not cohere with the truncated journals
            if due && !self.recovery_pending() {
                let _ = self.drain_monitor();
                let ckpt = self.capture(sched);
                if let Some(journals) = self.journals.as_mut() {
                    for (j, cell) in journals.iter_mut().zip(&ckpt.processes) {
                        // hooked processes restart from the cell plus the
                        // journal since this point; hookless ones replay
                        // from genesis, so their journals never truncate
                        if cell.is_some() {
                            j.ops.clear();
                        }
                    }
                }
                self.last_checkpoint = Some(ckpt);
            }
        }
    }

    fn capture(&self, sched: &dyn Scheduler) -> Checkpoint {
        // A capture at the last slot of a round stores the end-of-round
        // state: resume refills a fresh round immediately, so the
        // in-flight round's counter increment would otherwise be lost.
        let round_done = self.steps > 0 && self.pending.is_empty();
        Checkpoint {
            steps: self.steps,
            rounds: if round_done {
                self.rounds + 1
            } else {
                self.rounds
            },
            queues: self.queues.clone(),
            trace: self.trace.clone(),
            rng: self.rng.clone(),
            telemetry: self.telemetry.clone(),
            counters: self.counters.clone(),
            processes: self.procs.iter().map(|p| p.snapshot()).collect(),
            scheduler: sched.snapshot(),
            pending_round: self.pending.clone(),
            round_progressed: if round_done {
                false
            } else {
                self.round_progressed
            },
            monitor: self.monitor.clone(),
        }
    }

    fn finish_at_bound(&mut self) -> RunReport {
        if self.recovery_pending() {
            // part of the history is missing, not merely truncated —
            // flag it so prefix checks don't mislead
            return self.build(RunStatus::BudgetExhaustedDuringRecovery);
        }
        let probe = probe_quiescent(
            self.procs,
            &self.crashed,
            &mut self.queues,
            &mut self.trace,
            &mut self.rng,
        );
        if probe && self.links_drained() && self.reliables_drained() {
            self.build(RunStatus::Quiescent)
        } else {
            self.build(RunStatus::BudgetExhausted)
        }
    }

    fn build(&mut self, status: RunStatus) -> RunReport {
        // final safety drain: whatever path ended the run, the monitor
        // must have observed every committed send before `finish` reads
        // its state (abort no longer applies — the run is over)
        let _ = self.drain_monitor();
        // a quiescent run through an exhausted reliable link terminated
        // cleanly but abandoned the undelivered tail — degrade the
        // status so the conformance bridge can name the link
        let status = if status.is_quiescent() {
            match self.reliables.iter().find(|r| r.exhausted()) {
                Some(r) => RunStatus::ReliabilityExhausted {
                    link: format!("arq@{}", r.chan()),
                },
                None => status,
            }
        } else {
            status
        };
        let quiescent = status.is_quiescent();
        let procs: &[Box<dyn Process>] = self.procs;
        let name_of = |i: usize| procs[i].name().to_owned();
        let process_reports = procs
            .iter()
            .enumerate()
            .zip(&self.counters)
            .map(|((i, p), c)| ProcessReport {
                name: p.name().to_owned(),
                progress: c.progress,
                idle: c.idle,
                max_starved_rounds: c.max_starved,
                crashed: self.crashed[i] || p.crashed(),
                restarts: self.restarts[i],
                send_blocked: c.send_blocked,
                max_blocked_rounds: c.max_blocked,
            })
            .collect();
        let flow = self.flow.as_ref();
        let channel_reports = self
            .telemetry
            .channels
            .iter()
            .map(|(c, k)| ChannelReport {
                chan: *c,
                sends: k.sends,
                receives: k.receives,
                high_water: k.high_water,
                residual: self.queues.get(c).map_or(0, VecDeque::len),
                consumer: k.consumer.map(name_of),
                capacity: flow.filter(|f| f.managed.contains(c)).map(|f| f.capacity),
                blocked_sends: k.blocked,
                shed: k.shed,
            })
            .collect();
        let consumer_violations = self
            .telemetry
            .violations
            .iter()
            .map(|&(chan, first, second)| ConsumerViolation {
                chan,
                first: name_of(first),
                second: name_of(second),
            })
            .collect();
        let faults = self
            .telemetry
            .faults
            .iter()
            .map(|(src, e)| FaultRecord {
                source: match src {
                    FaultSource::Proc(i) => name_of(*i),
                    FaultSource::Link(c) => format!("link@{c}"),
                },
                event: e.clone(),
            })
            .collect();
        debug_assert!(
            self.telemetry.staged.is_empty(),
            "sketch observations staged past their commit point"
        );
        RunReport {
            trace: Trace::finite(std::mem::take(&mut self.trace)),
            quiescent,
            status,
            steps: self.steps,
            rounds: self.rounds,
            processes: process_reports,
            channels: channel_reports,
            consumer_violations,
            faults,
            recoveries: std::mem::take(&mut self.recoveries),
            sketches: self.telemetry.finish_sketches(),
        }
    }
}

/// Zero-cost quiescence probe at the step bound: offer every live process
/// one step with telemetry off, then roll the channel state and trace
/// back. Returns true iff no process could make progress — i.e. the
/// network had already quiesced when the bound fired. Engine-crashed
/// processes are skipped (they are dead, not idle).
///
/// The rollback restores queues and trace exactly; a process that *did*
/// progress during the probe may have advanced internal state, which is
/// harmless because the run is over either way (the network must not be
/// re-run after hitting the bound).
pub(crate) fn probe_quiescent(
    processes: &mut [Box<dyn Process>],
    crashed: &[bool],
    queues: &mut ChanMap<VecDeque<Value>>,
    trace: &mut Vec<Event>,
    rng: &mut StdRng,
) -> bool {
    let saved_queues = queues.clone();
    let saved_len = trace.len();
    for (i, p) in processes.iter_mut().enumerate() {
        if crashed[i] {
            continue;
        }
        let mut ctx = StepCtx::bare(queues, trace, rng, None, i);
        if p.step(&mut ctx) == StepResult::Progress {
            *queues = saved_queues;
            trace.truncate(saved_len);
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{CrashPoint, Fault, LinkFaultSpec};
    use crate::procs::{Apply, Source, Zip2};
    use crate::scheduler::{Adversarial, RandomSched, RoundRobin};

    fn c() -> Chan {
        Chan::new(0)
    }
    fn d() -> Chan {
        Chan::new(1)
    }

    fn pipeline() -> Network {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            c(),
            [Value::Int(1), Value::Int(2), Value::Int(3)],
        ));
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        net
    }

    #[test]
    fn pipeline_quiesces_with_expected_history() {
        let run = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.status, RunStatus::Quiescent);
        assert_eq!(
            run.trace.seq_on(d()).take(10),
            vec![Value::Int(2), Value::Int(4), Value::Int(6)]
        );
        assert_eq!(
            run.trace.seq_on(c()).take(10),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn kahn_determinism_across_schedulers() {
        // per-channel histories agree under all schedulers (Kahn's
        // determinism theorem for deterministic processes).
        let a = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        let b = pipeline().run(&mut RandomSched::new(9), RunOptions::default());
        let cc = pipeline().run(&mut Adversarial::new(5), RunOptions::default());
        for run in [&b, &cc] {
            assert!(run.quiescent);
            assert_eq!(run.trace.seq_on(c()), a.trace.seq_on(c()));
            assert_eq!(run.trace.seq_on(d()), a.trace.seq_on(d()));
        }
    }

    #[test]
    fn step_bound_halts_runaway() {
        // a source with an infinite lasso never quiesces
        let mut net = Network::new();
        net.add(Source::lasso(
            "ticks",
            c(),
            eqp_trace::Lasso::repeat(vec![Value::tt()]),
        ));
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 25,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert!(!run.quiescent);
        assert_eq!(run.status, RunStatus::BudgetExhausted);
        assert_eq!(run.steps, 25);
        assert_eq!(run.trace.seq_on(c()).take(100).len(), 25);
    }

    #[test]
    fn quiescence_in_exactly_max_steps_is_reported() {
        // Regression: the pipeline quiesces after exactly 6 progress
        // steps (3 source sends + 3 doubles). With max_steps == 6 the
        // bound fires before the engine observes a no-progress round; the
        // probe must still report quiescence (and leave the trace exact).
        let run = pipeline().run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 6,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert!(
            run.quiescent,
            "network quiescing in exactly max_steps must report quiescent"
        );
        assert_eq!(run.steps, 6);
        assert_eq!(
            run.trace.seq_on(d()).take(10),
            vec![Value::Int(2), Value::Int(4), Value::Int(6)]
        );
    }

    #[test]
    fn bound_cut_mid_stream_still_reports_nonquiescent() {
        // the same pipeline cut after 4 of its 6 steps: genuinely cut.
        let run = pipeline().run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 4,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert!(!run.quiescent);
        assert_eq!(run.steps, 4);
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn double_consumer_rejected() {
        let mut net = Network::new();
        net.add(Apply::int_affine("w1", c(), d(), 1, 0));
        net.add(Apply::int_affine("w2", c(), Chan::new(9), 1, 0));
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let mut net = Network::new();
        assert!(net.is_empty());
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.steps, 0);
        assert!(run.trace.is_empty());
    }

    #[test]
    fn preloaded_input_consumed_but_unrecorded() {
        let mut net = Network::new();
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        let mut pre = net.preload(c(), [Value::Int(5)]);
        let run = pre.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.trace.seq_on(d()).take(4), vec![Value::Int(10)]);
        // the preloaded input itself is not in the trace
        assert_eq!(run.trace.seq_on(c()).take(4), Vec::<Value>::new());
    }

    #[test]
    fn preload_two_channels_chained() {
        // Regression: preloading a second channel used to operate on the
        // drained husk and silently run zero processes.
        let (l, r, o) = (Chan::new(10), Chan::new(11), Chan::new(12));
        let mut net = Network::new();
        net.add(Zip2::add("sum", l, r, o));
        let run = net
            .preload(l, [Value::Int(1), Value::Int(2)])
            .preload(r, [Value::Int(10), Value::Int(20)])
            .run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(
            run.trace.seq_on(o).take(4),
            vec![Value::Int(11), Value::Int(22)]
        );
    }

    #[test]
    fn preload_all_pairs() {
        let (l, r, o) = (Chan::new(10), Chan::new(11), Chan::new(12));
        let mut net = Network::new();
        net.add(Zip2::add("sum", l, r, o));
        let run = net
            .preload_all([(l, vec![Value::Int(3)]), (r, vec![Value::Int(4)])])
            .run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.trace.seq_on(o).take(4), vec![Value::Int(7)]);
    }

    #[test]
    #[should_panic(expected = "already converted by `preload`")]
    fn second_preload_on_drained_network_fails_fast() {
        let mut net = Network::new();
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        let _first = net.preload(c(), [Value::Int(1)]);
        let _second = net.preload(d(), [Value::Int(2)]);
    }

    #[test]
    fn report_counts_progress_idle_and_channels() {
        let mut net = pipeline();
        let report = net.run_report(&mut RoundRobin::new(), RunOptions::default());
        assert!(report.quiescent);
        assert_eq!(report.steps, 6);
        let env = &report.processes[0];
        let dbl = &report.processes[1];
        assert_eq!((env.name.as_str(), env.progress), ("env", 3));
        assert_eq!((dbl.name.as_str(), dbl.progress), ("double", 3));
        let on_c = report.channel(c()).expect("channel c metered");
        assert_eq!(on_c.sends, 3);
        assert_eq!(on_c.receives, 3);
        assert_eq!(on_c.residual, 0);
        assert_eq!(on_c.consumer.as_deref(), Some("double"));
        assert!(report.single_consumer_ok());
        assert!(report.to_string().contains("process `double`"));
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let full = pipeline().run_report(&mut RoundRobin::new(), RunOptions::default());
        let (partial, ckpt) =
            pipeline().run_report_checkpointed(&mut RoundRobin::new(), RunOptions::default(), 3);
        // capture is pure observation: the checkpointed run is unchanged
        assert_eq!(partial.trace, full.trace);
        assert_eq!(partial.steps, full.steps);
        let ckpt = ckpt.expect("captured at step 3");
        assert_eq!(ckpt.steps(), 3);
        assert!(ckpt.is_complete());
        let mut fresh = pipeline();
        let mut sched = RoundRobin::new();
        let resumed = fresh
            .resume_report(&ckpt, &mut sched, RunOptions::default())
            .expect("identically built network resumes");
        assert_eq!(resumed.trace, full.trace);
        assert_eq!(resumed.steps, full.steps);
        assert_eq!(resumed.rounds, full.rounds);
        assert_eq!(resumed.processes, full.processes);
        assert_eq!(resumed.channels, full.channels);
    }

    #[test]
    fn resume_rejects_mismatched_networks() {
        let (_, ckpt) =
            pipeline().run_report_checkpointed(&mut RoundRobin::new(), RunOptions::default(), 2);
        let ckpt = ckpt.expect("captured");
        let mut small = Network::new();
        small.add(Source::new("env", c(), [Value::Int(1)]));
        let err = small
            .resume_report(&ckpt, &mut RoundRobin::new(), RunOptions::default())
            .expect_err("arity mismatch");
        assert!(matches!(err, SnapshotError::ArityMismatch { .. }));
    }

    #[test]
    fn supervised_run_recovers_a_crashed_process() {
        let baseline = pipeline().run_report(&mut RoundRobin::new(), RunOptions::default());
        let mut net = pipeline();
        net.wrap_crash_at(1, 2);
        let report = net.run_supervised(
            &mut RoundRobin::new(),
            RunOptions::default(),
            SupervisorOptions::one_for_one(),
        );
        assert!(report.quiescent, "recovered run quiesces:\n{report}");
        assert_eq!(report.status, RunStatus::Quiescent);
        assert_eq!(report.trace.seq_on(c()), baseline.trace.seq_on(c()));
        assert_eq!(report.trace.seq_on(d()), baseline.trace.seq_on(d()));
        assert_eq!(report.recoveries.len(), 1);
        let dbl = &report.processes[1];
        assert_eq!(dbl.restarts, 1);
        assert!(!dbl.crashed, "recovered, not dead");
        assert!(report.to_string().contains("recovery:"));
    }

    #[test]
    fn supervised_recovery_with_backoff() {
        let baseline = pipeline().run_report(&mut RoundRobin::new(), RunOptions::default());
        let mut net = pipeline();
        net.wrap_crash_at(1, 1);
        let report = net.run_supervised(
            &mut RoundRobin::new(),
            RunOptions::default(),
            SupervisorOptions::with_backoff(2, 8),
        );
        assert!(report.quiescent);
        assert_eq!(report.trace.seq_on(d()), baseline.trace.seq_on(d()));
        let rec = &report.recoveries[0];
        assert!(
            rec.restart_step >= rec.crash_step,
            "backoff delays the restart"
        );
    }

    #[test]
    fn escalate_policy_fails_the_run_on_first_crash() {
        let mut net = pipeline();
        net.wrap_crash_at(1, 2);
        let report = net.run_supervised(
            &mut RoundRobin::new(),
            RunOptions::default(),
            SupervisorOptions::escalate(),
        );
        assert!(!report.quiescent);
        assert!(
            matches!(report.status, RunStatus::Escalated { ref process } if process.contains("double")),
            "unexpected status {:?}",
            report.status
        );
    }

    #[test]
    fn restart_budget_escalates_when_exceeded() {
        let mut net = pipeline();
        net.wrap_crash_at(1, 2);
        let report = net.run_supervised(
            &mut RoundRobin::new(),
            RunOptions::default(),
            SupervisorOptions::one_for_one().max_restarts(0),
        );
        assert!(matches!(report.status, RunStatus::Escalated { .. }));
    }

    #[test]
    fn budget_hit_mid_recovery_reports_distinct_status() {
        // the fuse fires on `double`'s 2nd progress step — the run's 5th —
        // so with max_steps == 5 the bound lands while the replay is
        // still armed
        let mut net = pipeline();
        net.wrap_crash_at(1, 2);
        let report = net.run_supervised(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 5,
                seed: 0,
                ..RunOptions::default()
            },
            SupervisorOptions::one_for_one(),
        );
        assert_eq!(report.status, RunStatus::BudgetExhaustedDuringRecovery);
        assert!(!report.quiescent);
        // the same bound without supervision is plain exhaustion
        let mut net = pipeline();
        net.wrap_crash_at(1, 2);
        let report = net.run_report(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 4,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert_eq!(report.status, RunStatus::BudgetExhausted);
    }

    #[test]
    fn engine_link_drop_convicts_with_named_fault() {
        let schedule = FaultSchedule {
            crashes: vec![],
            links: vec![LinkFaultSpec {
                chan: c(),
                fault: Fault::Drop { period: 2 },
            }],
        };
        let report =
            pipeline().run_report_faulted(&mut RoundRobin::new(), RunOptions::default(), &schedule);
        assert!(report.quiescent);
        // message #2 on c is swallowed before it ever reaches the trace
        assert_eq!(
            report.trace.seq_on(c()).take(8),
            vec![Value::Int(1), Value::Int(3)]
        );
        assert_eq!(
            report.trace.seq_on(d()).take(8),
            vec![Value::Int(2), Value::Int(6)]
        );
        let log = report.fault_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].source.starts_with("link@"));
        assert_eq!(log[0].event.value, Value::Int(2));
    }

    #[test]
    fn engine_link_delay_is_benign_and_drains() {
        let schedule = FaultSchedule {
            crashes: vec![],
            links: vec![LinkFaultSpec {
                chan: c(),
                fault: Fault::Delay { slack: 2 },
            }],
        };
        let baseline = pipeline().run_report(&mut RoundRobin::new(), RunOptions::default());
        let report =
            pipeline().run_report_faulted(&mut RoundRobin::new(), RunOptions::default(), &schedule);
        assert!(report.quiescent, "delayed links drain before quiescence");
        assert_eq!(report.trace.seq_on(c()), baseline.trace.seq_on(c()));
        assert_eq!(report.trace.seq_on(d()), baseline.trace.seq_on(d()));
        assert!(report.fault_log().is_empty());
    }

    #[test]
    fn engine_crash_point_recovers_under_supervision() {
        let baseline = pipeline().run_report(&mut RoundRobin::new(), RunOptions::default());
        let schedule = FaultSchedule {
            crashes: vec![CrashPoint {
                process: 1,
                at_step: 3,
            }],
            links: vec![],
        };
        let report = pipeline().run_supervised_faulted(
            &mut RoundRobin::new(),
            RunOptions::default(),
            SupervisorOptions::one_for_one(),
            &schedule,
        );
        assert!(report.quiescent, "recovered:\n{report}");
        assert_eq!(report.trace.seq_on(c()), baseline.trace.seq_on(c()));
        assert_eq!(report.trace.seq_on(d()), baseline.trace.seq_on(d()));
        assert_eq!(report.recoveries.len(), 1);
        // unsupervised, the same crash loses the tail of d's history
        let report =
            pipeline().run_report_faulted(&mut RoundRobin::new(), RunOptions::default(), &schedule);
        assert!(report.processes[1].crashed);
        assert!(report.trace.seq_on(d()).take(8).len() < 3);
    }

    #[test]
    fn wrap_crash_at_out_of_range_panics() {
        let mut net = pipeline();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.wrap_crash_at(9, 1);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn channels_and_names_enumerate_the_surface() {
        let net = pipeline();
        assert_eq!(net.channels(), vec![c(), d()]);
        assert_eq!(net.process_names(), vec!["env", "double"]);
    }
}
