//! Networks: processes wired by FIFO channels, run to quiescence.

use crate::process::{Process, StepCtx, StepResult};
use crate::scheduler::Scheduler;
use eqp_trace::{Chan, Event, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Options bounding a network run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Maximum total process steps (guards non-quiescing networks like
    /// Ticks).
    pub max_steps: usize,
    /// Seed for the in-process nondeterminism RNG ([`StepCtx::flip`]).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 10_000,
            seed: 0,
        }
    }
}

/// Result of a network run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The communication history: every send, in global order.
    pub trace: Trace,
    /// True iff the network quiesced (a full round with no progress);
    /// false iff the step bound was hit first.
    pub quiescent: bool,
    /// Progress-making steps performed.
    pub steps: usize,
}

/// A dataflow network: a bag of processes communicating over unbounded
/// FIFO channels. Channels are implicit — any channel a process sends on
/// is queued for whoever reads it. Single-reader discipline is validated
/// at [`Network::add`] for processes that declare their
/// [`Process::inputs`].
#[derive(Default)]
pub struct Network {
    processes: Vec<Box<dyn Process>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Adds a process.
    ///
    /// # Panics
    ///
    /// Panics if the process declares an input channel already consumed by
    /// a previously added process — Kahn networks require a single
    /// consumer per channel, and a second reader would silently steal
    /// messages.
    pub fn add<P: Process + 'static>(&mut self, p: P) -> &mut Network {
        for c in p.inputs() {
            for q in &self.processes {
                assert!(
                    !q.inputs().contains(&c),
                    "channel {c} already consumed by process `{}`; `{}` cannot also read it",
                    q.name(),
                    p.name()
                );
            }
        }
        self.processes.push(Box::new(p));
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True iff the network has no processes.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Pre-loads messages on a channel (environment input that is *not*
    /// recorded in the trace — prefer a `Source` process when the sends
    /// should appear in the history, as the paper's traces include them).
    pub fn preload<I: IntoIterator<Item = Value>>(
        &mut self,
        chan: Chan,
        values: I,
    ) -> PreloadedNetwork {
        let mut queues: HashMap<Chan, VecDeque<Value>> = HashMap::new();
        queues.entry(chan).or_default().extend(values);
        PreloadedNetwork {
            net: std::mem::take(self),
            queues,
        }
    }

    /// Runs the network under `sched` until quiescence or the step bound.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        run_with_queues(&mut self.processes, HashMap::new(), sched, opts)
    }
}

/// A network with pre-loaded channel contents (see [`Network::preload`]).
pub struct PreloadedNetwork {
    net: Network,
    queues: HashMap<Chan, VecDeque<Value>>,
}

impl PreloadedNetwork {
    /// Runs the preloaded network.
    pub fn run<S: Scheduler>(&mut self, sched: &mut S, opts: RunOptions) -> RunResult {
        run_with_queues(
            &mut self.net.processes,
            std::mem::take(&mut self.queues),
            sched,
            opts,
        )
    }
}

fn run_with_queues(
    processes: &mut [Box<dyn Process>],
    mut queues: HashMap<Chan, VecDeque<Value>>,
    sched: &mut dyn Scheduler,
    opts: RunOptions,
) -> RunResult {
    let mut trace: Vec<Event> = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut steps = 0usize;
    loop {
        let mut progressed = false;
        for i in sched.round(processes.len()) {
            if steps >= opts.max_steps {
                return RunResult {
                    trace: Trace::finite(trace),
                    quiescent: false,
                    steps,
                };
            }
            let mut ctx = StepCtx {
                queues: &mut queues,
                trace: &mut trace,
                rng: &mut rng,
            };
            if processes[i].step(&mut ctx) == StepResult::Progress {
                progressed = true;
                steps += 1;
            }
        }
        if !progressed {
            return RunResult {
                trace: Trace::finite(trace),
                quiescent: true,
                steps,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs::{Apply, Source};
    use crate::scheduler::{Adversarial, RandomSched, RoundRobin};

    fn c() -> Chan {
        Chan::new(0)
    }
    fn d() -> Chan {
        Chan::new(1)
    }

    fn pipeline() -> Network {
        let mut net = Network::new();
        net.add(Source::new(
            "env",
            c(),
            [Value::Int(1), Value::Int(2), Value::Int(3)],
        ));
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        net
    }

    #[test]
    fn pipeline_quiesces_with_expected_history() {
        let run = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(
            run.trace.seq_on(d()).take(10),
            vec![Value::Int(2), Value::Int(4), Value::Int(6)]
        );
        assert_eq!(
            run.trace.seq_on(c()).take(10),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn kahn_determinism_across_schedulers() {
        // per-channel histories agree under all schedulers (Kahn's
        // determinism theorem for deterministic processes).
        let a = pipeline().run(&mut RoundRobin::new(), RunOptions::default());
        let b = pipeline().run(&mut RandomSched::new(9), RunOptions::default());
        let cc = pipeline().run(&mut Adversarial::new(5), RunOptions::default());
        for run in [&b, &cc] {
            assert!(run.quiescent);
            assert_eq!(run.trace.seq_on(c()), a.trace.seq_on(c()));
            assert_eq!(run.trace.seq_on(d()), a.trace.seq_on(d()));
        }
    }

    #[test]
    fn step_bound_halts_runaway() {
        // a source with an infinite lasso never quiesces
        let mut net = Network::new();
        net.add(Source::lasso(
            "ticks",
            c(),
            eqp_trace::Lasso::repeat(vec![Value::tt()]),
        ));
        let run = net.run(
            &mut RoundRobin::new(),
            RunOptions {
                max_steps: 25,
                seed: 0,
            },
        );
        assert!(!run.quiescent);
        assert_eq!(run.steps, 25);
        assert_eq!(run.trace.seq_on(c()).take(100).len(), 25);
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn double_consumer_rejected() {
        let mut net = Network::new();
        net.add(Apply::int_affine("w1", c(), d(), 1, 0));
        net.add(Apply::int_affine("w2", c(), Chan::new(9), 1, 0));
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let mut net = Network::new();
        assert!(net.is_empty());
        let run = net.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.steps, 0);
        assert!(run.trace.is_empty());
    }

    #[test]
    fn preloaded_input_consumed_but_unrecorded() {
        let mut net = Network::new();
        net.add(Apply::int_affine("double", c(), d(), 2, 0));
        let mut pre = net.preload(c(), [Value::Int(5)]);
        let run = pre.run(&mut RoundRobin::new(), RunOptions::default());
        assert!(run.quiescent);
        assert_eq!(run.trace.seq_on(d()).take(4), vec![Value::Int(10)]);
        // the preloaded input itself is not in the trace
        assert_eq!(run.trace.seq_on(c()).take(4), Vec::<Value>::new());
    }
}
